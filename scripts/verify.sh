#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what a PR must keep green.
#
#   scripts/verify.sh          # build + tests + lints
#   scripts/verify.sh --quick  # skip the release build
#
# Everything runs offline against the vendored registry (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check 2>/dev/null || echo "    (rustfmt unavailable or diffs; non-fatal)"

echo "verify: OK"
