#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what a PR must keep green.
#
#   scripts/verify.sh          # build + tests + lints
#   scripts/verify.sh --quick  # skip the release build
#
# Everything runs offline against the vendored registry (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Copy-budget gate: the ablate_zero_copy smoke sweep exits nonzero if the
# large-message split path stages any bytes or the datapath stops beating
# the legacy copy-everything model by >= 2x (see DESIGN.md).
echo "==> datapath copy budget (ablate_zero_copy smoke sweep)"
NMAD_DATAPATH_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_zero_copy

# Recorder-overhead gate: the ablate_obs smoke sweep exits nonzero if
# recording costs > 5% aggregate wall-clock or takes any hot-path
# allocation (see DESIGN.md §8).
echo "==> flight-recorder overhead (ablate_obs smoke sweep)"
NMAD_OBS_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_obs

# Calibration gate: the ablate_calibration smoke sweep replays the
# mid-run bandwidth-degradation scenario and exits nonzero if online
# calibration ever loses to frozen tables or convergence blows the
# rebuild budget (see DESIGN.md §9).
echo "==> online recalibration under drift (ablate_calibration smoke sweep)"
NMAD_CALIBRATION_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_calibration

# Lock-contention gate: the ablate_parallel smoke sweep drives the same
# wire-paced workload through the single-lock discipline and the sharded
# parallel pipeline and exits nonzero unless the multi-rail speedup
# clears the 1.5x gate with every rail carrying frames (see DESIGN.md
# §10).
echo "==> parallel progress engine (ablate_parallel smoke sweep)"
NMAD_PARALLEL_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_parallel

# Chaos-soak gate: ~10 s of multi-tenant load over the parallel engine
# while a seeded schedule drives an outage, drop storms and bandwidth
# drift; exits nonzero on the SLO gates (p99/p999 ceilings, head->tail
# throughput decay, pool-ledger leaks, stuck requests after the heal —
# see DESIGN.md §11). The full minutes-long soak runs in the scheduled
# CI job; the seed in BENCH_soak.json replays either.
echo "==> chaos soak SLOs (ablate_soak smoke, ~15 s)"
NMAD_SOAK_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_soak

# Per-packet cycles gate: the ablate_cycles smoke sweep measures the
# checksum kernels (slice16 >= 3x scalar, SIMD >= 8x where detected),
# syscalls per packet under the batched parallel TCP fabric (< 0.5 TX),
# the pool-magazine hit rate (>= 90%) and the end-to-end scalar-vs-SIMD
# per-message CPU cost (see DESIGN.md §12).
echo "==> per-packet cycles (ablate_cycles smoke sweep)"
NMAD_CYCLES_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_cycles

# Reactor gate: the ablate_reactor smoke sweep serves a few hundred
# loopback echo connections from the fixed epoll worker pool and exits
# nonzero if the herd is shed, the event loop allocates on the hot path,
# the echo p99 blows its ceiling, or throughput per I/O thread drops
# below the thread-per-rail runtime at 2 rails (see DESIGN.md §14). The
# full 10k-connection run happens in the scheduled CI job.
echo "==> reactor event loop (ablate_reactor smoke sweep)"
NMAD_REACTOR_SMOKE=1 cargo bench -q -p nmad-bench --bench ablate_reactor

# Strategy-tournament gate: every StrategyKind across the six load
# regimes (uniform, heavy tail, MMPP bursts, drift, outage, small
# flood); exits nonzero if any cell drops a message or a zoo claim
# fails — SRPT holds the heavy tail, idle harvesting recovers measurable
# bandwidth on the asymmetric flood, the latency router cuts the
# small-message p99 (see DESIGN.md "Strategy zoo"). Writes
# BENCH_strategies.json; the full grid runs via the ablate_strategies
# bench in the scheduled CI job.
echo "==> strategy tournament (nmad tournament --smoke --check)"
cargo run -q -p nmad-cli -- tournament --smoke --check >/dev/null

# Calibrate round-trip: the CLI must run the drift scenario and report a
# converged split history (the degraded rail's share leaves the seed band).
echo "==> nmad calibrate round-trip"
cal_out="$(cargo run -q -p nmad-cli -- calibrate --messages 12)"
echo "$cal_out" | grep -q "split-ratio history" \
    || { echo "nmad calibrate printed no history"; exit 1; }
echo "$cal_out" | grep -q "live tables" \
    || { echo "nmad calibrate printed no tables"; exit 1; }

# Trace round-trip: `nmad trace` must emit a Chrome trace that its own
# validator accepts (parses, phase fields present, B/E balanced).
echo "==> nmad trace emit + validate"
trace_tmp="$(mktemp /tmp/nmad_trace.XXXXXX.json)"
wd_tmp="$(mktemp /tmp/nmad_verdict.XXXXXX.json)"
trap 'rm -f "$trace_tmp" "$wd_tmp"' EXIT
cargo run -q -p nmad-cli -- trace --size 1048576 --out "$trace_tmp"
cargo run -q -p nmad-cli -- trace --validate "$trace_tmp"

# Watchdog smoke: the detection contract from DESIGN.md §8. A seeded
# chaos soak (drop storm on rail 1 mid-run) must report a
# retransmit-storm alert in its machine verdict, and the same pipeline
# run clean must stay silent (the false-positive contract).
echo "==> watchdog smoke (chaos fires retransmit-storm, clean run stays silent)"
cargo run -q -p nmad-cli -- soak --seed 11 --duration 3 --window 125 \
    --out-verdict "$wd_tmp" >/dev/null
grep -q '"kind":"retransmit_storm"' "$wd_tmp" \
    || { echo "chaos soak verdict has no retransmit-storm alert:"; cat "$wd_tmp"; exit 1; }
cargo run -q -p nmad-cli -- soak --seed 11 --duration 2 --no-chaos --window 125 \
    --out-verdict "$wd_tmp" >/dev/null
grep -q '"clean":true' "$wd_tmp" \
    || { echo "clean soak verdict is not clean:"; cat "$wd_tmp"; exit 1; }

echo "==> cargo fmt --check"
cargo fmt --check 2>/dev/null || echo "    (rustfmt unavailable or diffs; non-fatal)"

echo "verify: OK"
