//! Integration tests asserting the paper's headline numbers end-to-end
//! through the public facade: §3.1 anchors, the §3.2 greedy plateau, and
//! the §3.4 splitting hierarchy.

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::{run_pingpong, sample_platform, PingPongSpec};

fn one_way_us(kind: StrategyKind, platform: newmadeleine::model::Platform, size: usize) -> f64 {
    run_pingpong(&PingPongSpec::new(
        platform,
        EngineConfig::with_strategy(kind),
        size,
    ))
    .one_way
    .as_us_f64()
}

fn bandwidth(kind: StrategyKind, platform: newmadeleine::model::Platform, size: usize) -> f64 {
    run_pingpong(&PingPongSpec::new(
        platform,
        EngineConfig::with_strategy(kind),
        size,
    ))
    .bandwidth_mbs
}

#[test]
fn myri_latency_2_8us() {
    let t = one_way_us(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::myri_10g()),
        4,
    );
    assert!(
        (t - 2.8).abs() < 0.5,
        "Myri-10G 4B one-way {t} us, paper: 2.8"
    );
}

#[test]
fn quadrics_latency_1_7us() {
    let t = one_way_us(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::quadrics_qm500()),
        4,
    );
    assert!(
        (t - 1.7).abs() < 0.5,
        "Quadrics 4B one-way {t} us, paper: 1.7"
    );
}

#[test]
fn myri_bandwidth_1200() {
    let bw = bandwidth(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::myri_10g()),
        8 << 20,
    );
    assert!(
        (bw - 1200.0).abs() < 50.0,
        "Myri 8MB {bw} MB/s, paper: ~1200"
    );
}

#[test]
fn quadrics_bandwidth_850() {
    let bw = bandwidth(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::quadrics_qm500()),
        8 << 20,
    );
    assert!(
        (bw - 850.0).abs() < 40.0,
        "Quadrics 8MB {bw} MB/s, paper: ~850"
    );
}

#[test]
fn greedy_plateau_near_1675() {
    // Paper §3.2: greedy balancing of a 2-segment message reaches
    // 1675 MB/s — higher than either single rail.
    let spec = PingPongSpec::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::Greedy),
        8 << 20,
    )
    .with_segments(2);
    let bw = run_pingpong(&spec).bandwidth_mbs;
    assert!(
        (1600.0..1720.0).contains(&bw),
        "greedy 2-seg 8MB plateau {bw} MB/s, paper: 1675"
    );
    assert!(bw > 1250.0, "must beat the best single rail");
}

#[test]
fn splitting_hierarchy_at_8mb() {
    // Fig 7: hetero-split > iso-split > Myri alone > Quadrics alone.
    let p = platform::paper_platform();
    let tables = sample_platform(&p);

    let hetero = run_pingpong(
        &PingPongSpec::new(
            p.clone(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
            8 << 20,
        )
        .with_tables(tables),
    )
    .bandwidth_mbs;
    let iso = run_pingpong(&PingPongSpec::new(
        p.clone(),
        EngineConfig::with_strategy(StrategyKind::IsoSplit),
        8 << 20,
    ))
    .bandwidth_mbs;
    let myri = bandwidth(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::myri_10g()),
        8 << 20,
    );
    let quad = bandwidth(
        StrategyKind::SingleRail(0),
        platform::single_rail_platform(platform::quadrics_qm500()),
        8 << 20,
    );
    assert!(
        hetero > iso && iso > myri && myri > quad,
        "hierarchy violated: hetero {hetero}, iso {iso}, myri {myri}, quad {quad}"
    );
    // Hetero-split is capped by the ~1950 MB/s bus, not the 2053 rail sum.
    assert!(
        hetero < 1960.0,
        "hetero-split {hetero} must respect the I/O bus ceiling"
    );
    // And it improves markedly over iso (the point of §3.4).
    assert!(
        hetero / iso > 1.05,
        "hetero ({hetero}) should beat iso ({iso}) by >5%"
    );
}

#[test]
fn aggregation_beats_separate_packets_for_4_segments() {
    // Fig 2a/3a: for small multi-segment messages, copying into one packet
    // wins; the copy overhead is "very low".
    let p = platform::single_rail_platform(platform::quadrics_qm500());
    let plain = run_pingpong(
        &PingPongSpec::new(
            p.clone(),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
            4096,
        )
        .with_segments(4),
    );
    let agg = run_pingpong(
        &PingPongSpec::new(
            p.clone(),
            EngineConfig::with_strategy(StrategyKind::SingleRailAggregating(0)),
            4096,
        )
        .with_segments(4),
    );
    let single = run_pingpong(&PingPongSpec::new(
        p,
        EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
        4096,
    ));
    let (tp, ta, ts) = (
        plain.one_way.as_us_f64(),
        agg.one_way.as_us_f64(),
        single.one_way.as_us_f64(),
    );
    assert!(
        ta < tp,
        "aggregated 4-seg ({ta}) must beat plain 4-seg ({tp})"
    );
    // Aggregation brings the 4-segment message within 25% of a regular one.
    assert!(
        ta < ts * 1.25,
        "aggregated ({ta}) must approach the regular message ({ts})"
    );
    assert_eq!(agg.sender_stats.aggregates_built, 4); // one per round trip
}

#[test]
fn fig6_poll_gap_is_small_constant() {
    // §3.3: the multi-rail aggregating strategy pays a small constant
    // penalty vs Quadrics-only: the mandatory poll of the Myri-10G NIC.
    let quad_only = one_way_us(
        StrategyKind::SingleRailAggregating(0),
        platform::single_rail_platform(platform::quadrics_qm500()),
        64,
    );
    let multi = one_way_us(StrategyKind::AggregateEager, platform::paper_platform(), 64);
    let gap = multi - quad_only;
    assert!(gap > 0.0, "multi-rail must pay the poll cost ({gap})");
    assert!(gap < 0.8, "poll gap should be sub-microsecond, got {gap}");
}

#[test]
fn small_message_overtakes_large_one_in_time() {
    // Paper §4: segments "can be reordered so as to group small segments,
    // or even sent out-of-order". A small message submitted *after* a
    // 1 MiB one is delivered first: the large segment is still in its
    // rendezvous handshake / bulk transfer while the small one goes out
    // eagerly on the latency rail.
    use newmadeleine::bytes::Bytes;
    use newmadeleine::core::request::{RecvId, SendId};
    use newmadeleine::runtime_sim::world::{AppLogic, NodeApi, SimWorld};
    use newmadeleine::sim::SimTime;
    use newmadeleine::wire::reassembly::MessageAssembly;

    struct Sender;
    impl AppLogic for Sender {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.submit_send(0, vec![Bytes::from(vec![1u8; 1 << 20])]);
            api.submit_send(0, vec![Bytes::from(vec![2u8; 64])]);
        }
        fn on_send_complete(&mut self, _s: SendId, _api: &mut NodeApi<'_>) {}
    }
    #[derive(Default)]
    struct Receiver {
        big_at: Option<SimTime>,
        small_at: Option<SimTime>,
    }
    impl AppLogic for Receiver {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.post_recv(0);
            api.post_recv(0);
        }
        fn on_recv_complete(&mut self, _r: RecvId, m: MessageAssembly, api: &mut NodeApi<'_>) {
            if m.total_len() > 1000 {
                self.big_at = Some(api.now());
            } else {
                self.small_at = Some(api.now());
            }
        }
    }

    let mut w = SimWorld::new(
        &platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        Sender,
        Receiver::default(),
    );
    w.open_conn();
    w.run(1_000_000);
    let small = w.app1().small_at.expect("small delivered");
    let big = w.app1().big_at.expect("big delivered");
    assert!(
        small < big,
        "small ({small}) must overtake the earlier-submitted large ({big})"
    );
}
