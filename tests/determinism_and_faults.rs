//! Determinism of the simulated platform and fault handling of the
//! threaded transport.

use std::time::Duration;

use newmadeleine::bytes::Bytes;
use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::{run_pingpong, sample_platform, PingPongSpec};
use newmadeleine::transport_mem::{pair, FabricConfig, FaultSpec};

#[test]
fn simulation_is_bit_reproducible() {
    let run = || {
        let spec = PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
            777_777,
        )
        .with_segments(3);
        let r = run_pingpong(&spec);
        (r.rtts.clone(), r.events)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical specs must produce identical event streams");
}

#[test]
fn sampling_is_reproducible() {
    let p = platform::paper_platform();
    let t1 = sample_platform(&p);
    let t2 = sample_platform(&p);
    for (a, b) in t1.iter().zip(&t2) {
        for &s in a.sizes() {
            assert_eq!(a.time_for(s).to_bits(), b.time_for(s).to_bits());
        }
    }
}

#[test]
fn corrupted_wire_is_rejected_loudly() {
    let mut cfg = FabricConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::Greedy),
    );
    cfg.faults = Some(FaultSpec {
        corrupt_prob: 1.0,
        drop_prob: 0.0,
        seed: 123,
        ..FaultSpec::default()
    });
    let (a, b) = pair(cfg);
    let c = a.conns()[0];
    let r = b.recv(c);
    a.send(c, vec![Bytes::from(vec![9u8; 2048])]);
    assert!(r.wait(Duration::from_millis(400)).is_none());
    assert!(b.rx_errors() > 0, "corruption must be detected and counted");
}

#[test]
fn partial_corruption_still_delivers_clean_messages() {
    // 30% corruption: some messages die, but clean ones must still flow
    // and never be delivered with wrong bytes.
    let mut cfg = FabricConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::SingleRail(1)),
    );
    cfg.faults = Some(FaultSpec {
        corrupt_prob: 0.3,
        drop_prob: 0.0,
        seed: 5,
        ..FaultSpec::default()
    });
    let (a, b) = pair(cfg);
    let c = a.conns()[0];
    let n = 40;
    let recvs: Vec<_> = (0..n).map(|_| b.recv(c)).collect();
    for i in 0..n {
        a.send(c, vec![Bytes::from(vec![i as u8; 64])]);
    }
    let mut delivered = 0;
    for (i, r) in recvs.into_iter().enumerate() {
        if let Some(msg) = r.wait(Duration::from_millis(200)) {
            assert_eq!(msg.segments[0].as_ref(), vec![i as u8; 64].as_slice());
            delivered += 1;
        } else {
            // In-order matching: once a message is lost, later recvs on the
            // same connection cannot match. Stop checking.
            break;
        }
    }
    let errors = b.rx_errors();
    assert!(
        delivered > 0 || errors > 0,
        "either something arrived clean or errors were counted"
    );
    assert!(errors > 0, "with 30% corruption some packets must fail CRC");
}
