//! Soak tests: sustained mixed traffic through every harness, checking
//! integrity, ordering, accounting and quiescence over hundreds of
//! messages.

use std::time::Duration;

use newmadeleine::bytes::Bytes;
use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::sim::Xoshiro256StarStar;
use newmadeleine::transport_mem::{pair, FabricConfig};

fn mixed_payload(i: usize, rng: &mut Xoshiro256StarStar) -> Vec<u8> {
    let len = match i % 5 {
        0 => rng.range_usize(1, 64),
        1 => rng.range_usize(64, 4 << 10),
        2 => rng.range_usize(4 << 10, 32 << 10),
        3 => rng.range_usize(32 << 10, 128 << 10),
        _ => rng.range_usize(128 << 10, 512 << 10),
    };
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn two_hundred_mixed_messages_on_threads() {
    let (a, b) = pair(FabricConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    ));
    let c = a.conns()[0];
    let n = 200;
    let t = Duration::from_secs(60);

    let mut gen = Xoshiro256StarStar::new(4242);
    let payloads: Vec<Vec<u8>> = (0..n).map(|i| mixed_payload(i, &mut gen)).collect();

    let recvs: Vec<_> = (0..n).map(|_| b.recv(c)).collect();
    let sends: Vec<_> = payloads
        .iter()
        .map(|p| a.send(c, vec![Bytes::from(p.clone())]))
        .collect();

    for (i, s) in sends.iter().enumerate() {
        assert!(s.wait(t), "send {i} timed out");
    }
    let mut total = 0usize;
    for (i, r) in recvs.into_iter().enumerate() {
        let msg = r.wait(t).unwrap_or_else(|| panic!("recv {i} timed out"));
        assert_eq!(
            msg.segments[0].as_ref(),
            payloads[i].as_slice(),
            "message {i} corrupted"
        );
        total += payloads[i].len();
    }

    let st = a.stats();
    assert_eq!(st.msgs_sent, n as u64);
    assert_eq!(st.total_payload_bytes(), total as u64);
    assert_eq!(b.rx_errors(), 0);
    // A mixed soak must have exercised every mechanism.
    assert!(st.aggregates_built > 0, "smalls must have aggregated");
    assert!(st.rdv_handshakes > 0, "larges must have rendezvoused");
    assert!(
        st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
        "both rails must carry traffic"
    );
}

#[test]
fn soak_simulated_pingpong_stays_deterministic_under_load() {
    use newmadeleine::runtime_sim::{run_pingpong, PingPongSpec};
    // 50 timed iterations of a mixed-segment ping-pong: all RTTs after
    // warmup must be identical (no state leaks between iterations).
    let spec = PingPongSpec {
        warmup: 2,
        iters: 50,
        ..PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
            96 << 10,
        )
    }
    .with_segments(3);
    let r = run_pingpong(&spec);
    let timed = &r.rtts[2..];
    assert!(
        timed.windows(2).all(|w| w[0] == w[1]),
        "iterations drifted: {:?}",
        &r.rtts[..6]
    );
}

#[test]
fn soak_many_small_connections() {
    // 16 logical channels, 8 messages each, interleaved submits.
    let mut cfg = FabricConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AggregateEager),
    );
    cfg.conns = 16;
    let (a, b) = pair(cfg);
    let t = Duration::from_secs(30);
    let mut handles = Vec::new();
    for round in 0..8u8 {
        for (ci, &conn) in a.conns().to_vec().iter().enumerate() {
            let payload = vec![round ^ ci as u8; 100 + ci * 13];
            let r = b.recv(conn);
            a.send(conn, vec![Bytes::from(payload.clone())]);
            handles.push((r, payload));
        }
    }
    for (i, (r, want)) in handles.into_iter().enumerate() {
        let msg = r.wait(t).unwrap_or_else(|| panic!("recv {i}"));
        assert_eq!(msg.segments[0].as_ref(), want.as_slice(), "slot {i}");
    }
}
