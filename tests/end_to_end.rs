//! Cross-crate end-to-end tests through the facade: the same engine code
//! on the simulator, on real threads, and under the mini-MPI layer.

use std::time::Duration;

use newmadeleine::bytes::Bytes;
use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::mpi::{world, WorldConfig, COMM_WORLD};
use newmadeleine::sim::Xoshiro256StarStar;
use newmadeleine::transport_mem::{pair, FabricConfig};

const T: Duration = Duration::from_secs(20);

fn random(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn every_strategy_delivers_on_threads() {
    for kind in [
        StrategyKind::SingleRail(0),
        StrategyKind::SingleRail(1),
        StrategyKind::SingleRailAggregating(0),
        StrategyKind::Greedy,
        StrategyKind::AggregateEager,
        StrategyKind::IsoSplit,
        StrategyKind::AdaptiveSplit,
    ] {
        let (a, b) = pair(FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
        ));
        let c = a.conns()[0];
        for (i, size) in [1usize, 100, 10_000, 300_000].into_iter().enumerate() {
            let payload = random(size, i as u64);
            let r = b.recv(c);
            let s = a.send(c, vec![Bytes::from(payload.clone())]);
            assert!(s.wait(T), "{}: send {size}B", kind.label());
            let msg = r
                .wait(T)
                .unwrap_or_else(|| panic!("{}: recv {size}B", kind.label()));
            assert_eq!(
                msg.segments[0].as_ref(),
                payload.as_slice(),
                "{}: payload integrity at {size}B",
                kind.label()
            );
        }
    }
}

#[test]
fn multi_segment_messages_survive_every_strategy() {
    for kind in [
        StrategyKind::Greedy,
        StrategyKind::AggregateEager,
        StrategyKind::AdaptiveSplit,
    ] {
        let (a, b) = pair(FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
        ));
        let c = a.conns()[0];
        // Mixed segment sizes: tiny + medium + rendezvous-sized.
        let segs: Vec<Bytes> = vec![
            Bytes::from(random(10, 1)),
            Bytes::from(random(20_000, 2)),
            Bytes::from(random(200_000, 3)),
            Bytes::from(random(500, 4)),
        ];
        let r = b.recv(c);
        let s = a.send(c, segs.clone());
        assert!(s.wait(T), "{}", kind.label());
        let msg = r.wait(T).expect("recv");
        assert_eq!(msg.segments, segs, "{}", kind.label());
    }
}

#[test]
fn three_rail_platform_end_to_end() {
    let (a, b) = pair(FabricConfig::new(
        platform::three_rail_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    ));
    let c = a.conns()[0];
    let payload = random(3 << 20, 99);
    let r = b.recv(c);
    let s = a.send(c, vec![Bytes::from(payload.clone())]);
    assert!(s.wait(T));
    assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
    let st = a.stats();
    let used = st.rails.iter().filter(|r| r.payload_bytes > 0).count();
    assert!(
        used >= 2,
        "3-rail split should use several rails: {:?}",
        st.rails
    );
}

#[test]
fn mpi_pingpong_over_multirail() {
    let ranks = world(
        2,
        WorldConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        ),
    );
    std::thread::scope(|s| {
        for r in &ranks {
            s.spawn(move || {
                let peer = 1 - r.rank;
                let data = random(1 << 20, r.rank as u64);
                let got = r.sendrecv(peer, COMM_WORLD, 3, &data);
                assert_eq!(got, random(1 << 20, peer as u64));
            });
        }
    });
}
