//! The §3.2 crossover: "using simultaneously Myri-10G and Quadrics is only
//! valuable when the amount of data is greater than 16KB, that is, for
//! segments greater than 8KB" — because sub-threshold messages go through
//! PIO, which monopolizes the CPU and cannot overlap across rails.

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::{run_pingpong, PingPongSpec};

fn greedy_2seg_us(total: usize) -> f64 {
    run_pingpong(
        &PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
            total,
        )
        .with_segments(2),
    )
    .one_way
    .as_us_f64()
}

fn best_single_2seg_us(total: usize) -> f64 {
    // The reference of Fig 4: all segments forced onto a single network
    // (with opportunistic aggregation, the favourable variant).
    let myri = run_pingpong(
        &PingPongSpec::new(
            platform::single_rail_platform(platform::myri_10g()),
            EngineConfig::with_strategy(StrategyKind::SingleRailAggregating(0)),
            total,
        )
        .with_segments(2),
    )
    .one_way
    .as_us_f64();
    let quad = run_pingpong(
        &PingPongSpec::new(
            platform::single_rail_platform(platform::quadrics_qm500()),
            EngineConfig::with_strategy(StrategyKind::SingleRailAggregating(0)),
            total,
        )
        .with_segments(2),
    )
    .one_way
    .as_us_f64();
    myri.min(quad)
}

#[test]
fn greedy_loses_below_the_pio_threshold() {
    // 4 KiB total => 2 KiB segments, deep in PIO territory: two rails
    // serialize on the CPU and pay double per-packet costs.
    for total in [1 << 10, 4 << 10, 8 << 10] {
        let g = greedy_2seg_us(total);
        let s = best_single_2seg_us(total);
        assert!(
            g > s,
            "at {total} B total, greedy ({g} us) must lose to single-rail ({s} us)"
        );
    }
}

#[test]
fn greedy_wins_above_the_crossover() {
    // 32 KiB total => 16 KiB segments: both segments move by DMA and
    // genuinely overlap.
    for total in [32 << 10, 128 << 10, 1 << 20] {
        let g = greedy_2seg_us(total);
        let s = best_single_2seg_us(total);
        assert!(
            g < s,
            "at {total} B total, greedy ({g} us) must beat single-rail ({s} us)"
        );
    }
}

#[test]
fn crossover_sits_in_the_paper_band() {
    // Walk the ladder and find the first size where greedy wins; the paper
    // places it at 16 KiB total. Accept one octave either side (our
    // simulator is calibrated, not cycle-exact).
    let mut crossover = None;
    for shift in 10..=20 {
        let total = 1usize << shift;
        if greedy_2seg_us(total) < best_single_2seg_us(total) {
            crossover = Some(total);
            break;
        }
    }
    let crossover = crossover.expect("greedy must eventually win");
    assert!(
        (8 << 10..=32 << 10).contains(&crossover),
        "crossover at {crossover} B, paper says 16 KiB"
    );
}

#[test]
fn pio_serialization_is_the_mechanism() {
    // Behavioural check, not timing: below the threshold both greedy
    // packets are PIO (CPU-serialized); above, both are DMA.
    let small = run_pingpong(
        &PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
            4 << 10,
        )
        .with_segments(2),
    );
    let s = &small.sender_stats;
    assert!(s.rails[0].pio_packets > 0 && s.rails[1].pio_packets > 0);
    assert_eq!(s.rails[0].dma_packets + s.rails[1].dma_packets, 0);

    let large = run_pingpong(
        &PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
            64 << 10,
        )
        .with_segments(2),
    );
    let l = &large.sender_stats;
    assert!(l.rails[0].dma_packets > 0 && l.rails[1].dma_packets > 0);
}
