//! Readiness-driven reactor: many connections, a fixed thread pool.
//!
//! The thread-per-rail runtime (DESIGN.md §10) spends two blocking
//! threads per rail/peer — fine for the paper's two-NIC platform,
//! hopeless for thousands of peers. This module multiplexes every
//! connection onto a **fixed pool of epoll workers** (default
//! `min(cores, 4)`, see [`worker_count`]): each worker owns one epoll
//! instance, an eventfd waker, a slab of connections and a buffer-pool
//! magazine, and runs a classic edge-triggered readiness loop.
//!
//! The repo is offline/zero-dep, so there is no `libc` crate to lean
//! on: [`sys`] makes the five needed syscalls (`epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`, `eventfd2`, `prlimit64`, plus `listen`
//! for the backlog bump) directly via inline assembly on
//! x86_64/aarch64 Linux, and degrades to `ErrorKind::Unsupported`
//! elsewhere — the serial and thread-per-rail runtimes remain the
//! portable paths.
//!
//! ## Interest-set state machine
//!
//! Every connection is registered edge-triggered for READ
//! (`EPOLLIN | EPOLLRDHUP | EPOLLET`). WRITE interest is *demand
//! driven*: it is added only when a write returns `WouldBlock` with
//! bytes still staged (the socket pushed back), and removed again the
//! moment the staged batch fully drains. A connection therefore never
//! busy-spins on writability it does not need, and a full peer
//! propagates backpressure naturally: the rail's staged batch stays
//! put, its outbox fills, the scheduler's `has_space()` check stops
//! publishing, and [`nmad_core::ParallelHub::try_submit_send`] starts
//! refusing tenants with `WouldBlock` (the PR 6 contract, unchanged).
//!
//! ## Telemetry
//!
//! Workers count polls/wakeups/events/stalls into lock-free atomics
//! and record events-per-wakeup + ready-depth histograms under a
//! briefly-held mutex; the scheduler mirrors a snapshot into
//! [`nmad_core::ReactorStats`] on every pass (same flow as
//! [`nmad_core::SyscallStats`]).

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use nmad_core::driver::TxToken;
use nmad_core::obs::Log2Histogram;
use nmad_core::{
    ChaosState, Completion, Magazine, OutboxReceiver, ParallelHub, ReactorStats, SharedPool,
};
use nmad_sim::Xoshiro256StarStar;
use nmad_wire::PacketFrame;
use parking_lot::Mutex;

use crate::{
    carve_frames, chaos_drops, gather_batch_slices, LEN_PREFIX, MAX_IOVECS, READ_CHUNK,
    READ_CHUNK_MAX, TX_BATCH,
};

/// Ceiling on the auto-sized worker pool.
pub const DEFAULT_MAX_WORKERS: usize = 4;
/// Events one `epoll_wait` can return per wakeup.
const EVENTS_PER_POLL: usize = 1024;
/// Idle poll bound: how long a worker parks in the kernel with no
/// readiness (the eventfd waker ends it early, so this only bounds
/// shutdown latency).
const POLL_TIMEOUT_MS: i32 = 25;
/// Echo connections stage at most this many bytes per read/write-back
/// round (pre-allocated once from the magazine — the event loop itself
/// never allocates).
const ECHO_BUF: usize = 64 * 1024;
/// Listener backlog for high connection counts: `TcpListener::bind`
/// defaults to 128, which drops SYNs when thousands of clients connect
/// in a burst. Re-`listen`ing with a deeper backlog fixes that without
/// reimplementing bind (see [`bump_backlog`]).
pub const HIGH_BACKLOG: i32 = 4096;
/// Slab token reserved for the per-worker eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// Bound on the shutdown drain: staged rail batches get this long to
/// reach the socket before the worker gives up (mirrors the hub
/// scheduler's own drain grace).
const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------
// Typed fd-limit error (satellite: no raw EMFILE panics)
// ---------------------------------------------------------------------

/// Transport-level error that distinguishes file-descriptor exhaustion
/// from other I/O failures, so callers can shed load instead of dying
/// on a raw `Too many open files`.
#[derive(Debug)]
pub enum TransportError {
    /// The process hit `RLIMIT_NOFILE` (`EMFILE`) or the system hit its
    /// global file table bound (`ENFILE`). Accepting/connecting further
    /// must wait for capacity; existing connections are unaffected.
    FdLimit(io::Error),
    /// Any other I/O error.
    Io(io::Error),
}

impl TransportError {
    /// Classify an I/O error.
    pub fn from_io(e: io::Error) -> Self {
        if is_fd_limit(&e) {
            TransportError::FdLimit(e)
        } else {
            TransportError::Io(e)
        }
    }

    /// True for the fd-exhaustion variant.
    pub fn is_fd_limit(&self) -> bool {
        matches!(self, TransportError::FdLimit(_))
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::FdLimit(e) => {
                write!(f, "file descriptor limit exhausted (shed, not fatal): {e}")
            }
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::FdLimit(e) | TransportError::Io(e) => Some(e),
        }
    }
}

/// True when `e` is `EMFILE` (per-process fd limit) or `ENFILE`
/// (system-wide file table full).
pub fn is_fd_limit(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// Reactor worker threads for a configured count: 0 (the
/// [`nmad_core::EngineConfig::reactor_threads`] default) auto-sizes to
/// `min(available cores, 4)`.
pub fn worker_count(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, DEFAULT_MAX_WORKERS)
}

// ---------------------------------------------------------------------
// Raw syscalls (no libc crate: inline asm on linux x86_64/aarch64)
// ---------------------------------------------------------------------

/// Minimal syscall layer for the reactor: epoll, eventfd, prlimit64 and
/// listen, straight to the kernel. Unsupported targets get stub
/// functions returning [`ErrorKind::Unsupported`] so the crate still
/// compiles (the blocking runtimes remain available there).
pub mod sys {
    use std::io;

    /// One epoll readiness record (`struct epoll_event`). Packed on
    /// x86_64, as the kernel ABI demands there.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// Readiness bit set (`EPOLLIN` | …).
        pub events: u32,
        /// Caller-chosen token, returned verbatim.
        pub data: u64,
    }

    impl EpollEvent {
        /// All-zero record (for pre-sized wait buffers).
        pub fn zeroed() -> Self {
            EpollEvent { events: 0, data: 0 }
        }

        /// The caller-chosen token (copies out of the packed struct).
        pub fn token(&self) -> u64 {
            self.data
        }

        /// The readiness bits (copies out of the packed struct).
        pub fn flags(&self) -> u32 {
            self.events
        }
    }

    /// Readable (or, on a listener, acceptable).
    pub const EPOLLIN: u32 = 0x001;
    /// Writable.
    pub const EPOLLOUT: u32 = 0x004;
    /// Error condition.
    pub const EPOLLERR: u32 = 0x008;
    /// Hang-up.
    pub const EPOLLHUP: u32 = 0x010;
    /// Peer closed its write side.
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// Edge-triggered delivery.
    pub const EPOLLET: u32 = 1 << 31;

    /// `epoll_ctl` add.
    pub const EPOLL_CTL_ADD: i32 = 1;
    /// `epoll_ctl` delete.
    pub const EPOLL_CTL_DEL: i32 = 2;
    /// `epoll_ctl` modify.
    pub const EPOLL_CTL_MOD: i32 = 3;

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    mod imp {
        use super::EpollEvent;
        use std::arch::asm;
        use std::io;
        use std::os::fd::{FromRawFd, OwnedFd, RawFd};

        #[cfg(target_arch = "x86_64")]
        mod nr {
            pub const EPOLL_CTL: i64 = 233;
            pub const EPOLL_PWAIT: i64 = 281;
            pub const EVENTFD2: i64 = 290;
            pub const EPOLL_CREATE1: i64 = 291;
            pub const PRLIMIT64: i64 = 302;
            pub const LISTEN: i64 = 50;
        }
        #[cfg(target_arch = "aarch64")]
        mod nr {
            pub const EPOLL_CTL: i64 = 21;
            pub const EPOLL_PWAIT: i64 = 22;
            pub const EVENTFD2: i64 = 19;
            pub const EPOLL_CREATE1: i64 = 20;
            pub const PRLIMIT64: i64 = 261;
            pub const LISTEN: i64 = 201;
        }

        /// The raw 6-argument syscall. Safety: the caller guarantees
        /// the argument/pointer contract of the specific syscall.
        #[cfg(target_arch = "x86_64")]
        unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
            let ret: i64;
            asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            ret
        }

        #[cfg(target_arch = "aarch64")]
        unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
            let ret: i64;
            asm!(
                "svc #0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
            ret
        }

        fn cvt(ret: i64) -> io::Result<i64> {
            if ret < 0 {
                Err(io::Error::from_raw_os_error(-ret as i32))
            } else {
                Ok(ret)
            }
        }

        const EPOLL_CLOEXEC: i64 = 0o2000000;
        const EFD_CLOEXEC: i64 = 0o2000000;
        const EFD_NONBLOCK: i64 = 0o4000;
        const RLIMIT_NOFILE: i64 = 7;

        #[repr(C)]
        struct Rlimit64 {
            cur: u64,
            max: u64,
        }

        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn epoll_create() -> io::Result<OwnedFd> {
            let fd = cvt(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            // Safety: the kernel just handed us this fd; OwnedFd closes
            // it through the std-linked libc on drop.
            Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
        }

        /// `epoll_ctl(ep, op, fd, ev)`; pass `None` for `EPOLL_CTL_DEL`.
        pub fn epoll_ctl(
            ep: RawFd,
            op: i32,
            fd: RawFd,
            ev: Option<&mut EpollEvent>,
        ) -> io::Result<()> {
            let ptr = ev.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            cvt(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    ep as i64,
                    op as i64,
                    fd as i64,
                    ptr as i64,
                    0,
                    0,
                )
            })?;
            Ok(())
        }

        /// Wait for readiness (via `epoll_pwait` with a null sigmask).
        pub fn epoll_wait(
            ep: RawFd,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> io::Result<usize> {
            // epoll_pwait with a null sigmask == epoll_wait, and exists
            // on aarch64 (plain epoll_wait does not).
            let n = cvt(unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    ep as i64,
                    events.as_mut_ptr() as i64,
                    events.len() as i64,
                    timeout_ms as i64,
                    0,
                    8,
                )
            })?;
            Ok(n as usize)
        }

        /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
        pub fn eventfd() -> io::Result<OwnedFd> {
            let fd =
                cvt(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
            // Safety: fresh fd, as above.
            Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
        }

        /// `listen(fd, backlog)` — legal on an already-listening socket
        /// (just updates the backlog).
        pub fn listen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
            cvt(unsafe { syscall6(nr::LISTEN, fd as i64, backlog as i64, 0, 0, 0, 0) })?;
            Ok(())
        }

        /// Current `RLIMIT_NOFILE` as `(soft, hard)`.
        pub fn nofile_limit() -> io::Result<(u64, u64)> {
            let mut lim = Rlimit64 { cur: 0, max: 0 };
            cvt(unsafe {
                syscall6(
                    nr::PRLIMIT64,
                    0,
                    RLIMIT_NOFILE,
                    0,
                    &mut lim as *mut Rlimit64 as i64,
                    0,
                    0,
                )
            })?;
            Ok((lim.cur, lim.max))
        }

        /// Set `RLIMIT_NOFILE`.
        pub fn set_nofile_limit(cur: u64, max: u64) -> io::Result<()> {
            let lim = Rlimit64 { cur, max };
            cvt(unsafe {
                syscall6(
                    nr::PRLIMIT64,
                    0,
                    RLIMIT_NOFILE,
                    &lim as *const Rlimit64 as i64,
                    0,
                    0,
                    0,
                )
            })?;
            Ok(())
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    mod imp {
        use super::EpollEvent;
        use std::io;
        use std::os::fd::{OwnedFd, RawFd};

        fn unsupported() -> io::Error {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "reactor transport needs epoll (linux x86_64/aarch64); \
                 use the serial or thread-per-rail runtime here",
            )
        }

        /// Unsupported on this target.
        pub fn epoll_create() -> io::Result<OwnedFd> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn epoll_ctl(_: RawFd, _: i32, _: RawFd, _: Option<&mut EpollEvent>) -> io::Result<()> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn epoll_wait(_: RawFd, _: &mut [EpollEvent], _: i32) -> io::Result<usize> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn eventfd() -> io::Result<OwnedFd> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn listen_backlog(_: RawFd, _: i32) -> io::Result<()> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn nofile_limit() -> io::Result<(u64, u64)> {
            Err(unsupported())
        }
        /// Unsupported on this target.
        pub fn set_nofile_limit(_: u64, _: u64) -> io::Result<()> {
            Err(unsupported())
        }
    }

    pub use imp::{
        epoll_create, epoll_ctl, epoll_wait, eventfd, listen_backlog, nofile_limit,
        set_nofile_limit,
    };

    /// Best-effort raise of `RLIMIT_NOFILE` to at least `want` fds.
    /// Tries to lift soft *and* hard limits (root may, within
    /// `fs.nr_open`); falls back to soft-only within the existing hard
    /// cap. Returns the resulting `(soft, hard)` — callers scale their
    /// connection count to what they actually got.
    pub fn raise_nofile_limit(want: u64) -> io::Result<(u64, u64)> {
        let (cur, max) = nofile_limit()?;
        if cur >= want {
            return Ok((cur, max));
        }
        let want_max = max.max(want);
        if set_nofile_limit(want, want_max).is_ok() {
            return Ok((want, want_max));
        }
        let capped = want.min(max);
        set_nofile_limit(capped, max)?;
        Ok((capped, max))
    }
}

/// Thin safe wrapper over one epoll instance.
pub struct Poller {
    ep: OwnedFd,
}

impl Poller {
    /// Create an epoll instance.
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            ep: sys::epoll_create()?,
        })
    }

    fn interest(writable: bool) -> u32 {
        let mut e = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET;
        if writable {
            e |= sys::EPOLLOUT;
        }
        e
    }

    /// Register `fd` edge-triggered for READ (plus WRITE when
    /// `writable`), tagged with `token`.
    pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::interest(writable),
            data: token,
        };
        sys::epoll_ctl(self.ep.as_raw_fd(), sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Change `fd`'s interest set (the WRITE half of the state machine).
    pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::interest(writable),
            data: token,
        };
        sys::epoll_ctl(self.ep.as_raw_fd(), sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.ep.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, None)
    }

    /// Block up to `timeout_ms` for readiness; fills `events` and
    /// returns how many records are valid.
    pub fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        sys::epoll_wait(self.ep.as_raw_fd(), events, timeout_ms)
    }
}

/// An eventfd-backed waker: wakes a worker out of `epoll_wait` from any
/// thread (the scheduler's outbox wake hook, registrations, shutdown).
pub struct EventFd {
    file: std::fs::File,
}

impl EventFd {
    /// Create a nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        Ok(EventFd {
            file: std::fs::File::from(sys::eventfd()?),
        })
    }

    /// The raw fd (for epoll registration).
    pub fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Post a wake. Nonblocking; a saturated counter already means the
    /// worker has a wake pending, so the error is ignored on purpose.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    /// Consume pending wakes (called by the owning worker on its own
    /// readable edge).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read(&mut buf).is_ok() {}
    }
}

/// Bump a bound listener's backlog beyond the 128 that
/// `TcpListener::bind` hard-codes (re-`listen`ing an already-listening
/// socket just updates the backlog).
pub fn bump_backlog(listener: &TcpListener, backlog: i32) -> io::Result<()> {
    sys::listen_backlog(listener.as_raw_fd(), backlog)
}

// ---------------------------------------------------------------------
// Shared pool state and telemetry
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    polls: AtomicU64,
    wakeups: AtomicU64,
    events: AtomicU64,
    sched_wakes: AtomicU64,
    fd_shed: AtomicU64,
    write_stalls: AtomicU64,
    hot_path_allocs: AtomicU64,
}

#[derive(Default)]
struct Hists {
    events_per_wake: Log2Histogram,
    ready_depth: Log2Histogram,
}

/// What a newly registered connection will do with its bytes.
enum Pending {
    /// Echo everything back (bench servers, `nmad reactor`).
    Echo(TcpStream),
    /// Accept connections and register them as echo conns.
    Listener(TcpListener),
    /// Engine rail: RX frames to the hub, TX from the rail's outbox.
    Rail(Box<RailSpec>),
}

/// Registration payload for a rail connection.
struct RailSpec {
    stream: TcpStream,
    rail: usize,
    hub: Arc<ParallelHub>,
    outbox: OutboxReceiver,
    chaos: Option<ChaosState>,
}

struct WorkerShared {
    waker: Arc<EventFd>,
    inbox: Mutex<VecDeque<Pending>>,
}

/// State shared between the pool handle, its workers, and the
/// telemetry snapshot closure installed on the hub.
pub struct ReactorShared {
    workers: Vec<WorkerShared>,
    shutdown: AtomicBool,
    next: AtomicUsize,
    counters: Counters,
    per_worker_busy: Vec<AtomicU64>,
    conns: AtomicU64,
    hists: Mutex<Hists>,
    epoch: Instant,
    pool: SharedPool,
}

impl ReactorShared {
    /// Queue `p` on the next worker round-robin and wake it.
    fn dispatch(&self, p: Pending) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        let w = &self.workers[idx];
        w.inbox.lock().push_back(p);
        w.waker.wake();
    }

    /// Current event-loop telemetry (the scheduler mirrors this into
    /// [`nmad_core::EngineStats`] every pass).
    pub fn snapshot(&self) -> ReactorStats {
        let per_worker_busy_ns: Vec<u64> = self
            .per_worker_busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let hists = self.hists.lock();
        ReactorStats {
            workers: self.workers.len() as u64,
            conns: self.conns.load(Ordering::Relaxed),
            polls: self.counters.polls.load(Ordering::Relaxed),
            wakeups: self.counters.wakeups.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
            sched_wakes: self.counters.sched_wakes.load(Ordering::Relaxed),
            fd_shed: self.counters.fd_shed.load(Ordering::Relaxed),
            write_stalls: self.counters.write_stalls.load(Ordering::Relaxed),
            hot_path_allocs: self.counters.hot_path_allocs.load(Ordering::Relaxed),
            busy_ns: per_worker_busy_ns.iter().sum(),
            elapsed_ns: self.epoch.elapsed().as_nanos() as u64,
            per_worker_busy_ns,
            events_per_wake: hists.events_per_wake.clone(),
            ready_depth: hists.ready_depth.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------

/// Result of pumping one connection.
enum Pump {
    /// Nothing left to do right now.
    Idle,
    /// The socket refused staged bytes: arm WRITE interest.
    WantWrite,
    /// Peer gone or unrecoverable error: deregister and drop.
    Close,
}

struct EchoConn {
    stream: TcpStream,
    /// Pre-allocated from the worker's magazine; the pump never grows
    /// it — that is the zero-allocation guarantee the gate checks.
    buf: BytesMut,
    len: usize,
    off: usize,
}

struct RailConn {
    stream: TcpStream,
    rail: usize,
    hub: Arc<ParallelHub>,
    outbox: OutboxReceiver,
    rx_buf: BytesMut,
    rx_chunk: usize,
    /// Staged TX batch (drained from the outbox), resumed across
    /// partial writes via the PR 7 gather-list builder.
    frames: Vec<PacketFrame>,
    prefixes: Vec<[u8; LEN_PREFIX]>,
    tokens: Vec<TxToken>,
    tx_off: usize,
    carved: Vec<PacketFrame>,
    chaos: Option<ChaosState>,
    rng: Xoshiro256StarStar,
}

enum Kind {
    Echo(EchoConn),
    Listener(TcpListener),
    Rail(Box<RailConn>),
}

struct Conn {
    kind: Kind,
    /// WRITE interest currently armed (the demand-driven half of the
    /// interest set).
    want_write: bool,
    /// A readable edge arrived that we have not yet read to
    /// `WouldBlock` (edge-triggered: skipping a read would lose it).
    read_ready: bool,
}

impl Conn {
    fn raw_fd(&self) -> RawFd {
        match &self.kind {
            Kind::Echo(e) => e.stream.as_raw_fd(),
            Kind::Listener(l) => l.as_raw_fd(),
            Kind::Rail(r) => r.stream.as_raw_fd(),
        }
    }
}

// ---------------------------------------------------------------------
// The worker
// ---------------------------------------------------------------------

struct Worker {
    idx: usize,
    shared: Arc<ReactorShared>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    /// Slots holding rail connections (pumped on scheduler wakes).
    rail_slots: Vec<usize>,
    magazine: Magazine,
}

impl Worker {
    fn run(mut self) {
        let mut events = vec![sys::EpollEvent::zeroed(); EVENTS_PER_POLL];
        loop {
            let n = match self.poller.wait(&mut events, POLL_TIMEOUT_MS) {
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => 0,
                Err(_) => break,
            };
            let t0 = Instant::now();
            let c = &self.shared.counters;
            c.polls.fetch_add(1, Ordering::Relaxed);
            let mut sched_wake = false;
            if n > 0 {
                c.wakeups.fetch_add(1, Ordering::Relaxed);
                c.events.fetch_add(n as u64, Ordering::Relaxed);
            }
            for ev in &events[..n] {
                let token = ev.token();
                if token == WAKER_TOKEN {
                    self.shared.workers[self.idx].waker.drain();
                    sched_wake = true;
                    continue;
                }
                let flags = ev.flags();
                self.handle_event(
                    token as usize,
                    flags & sys::EPOLLIN != 0,
                    flags & sys::EPOLLOUT != 0,
                    flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                );
            }
            if sched_wake {
                self.shared
                    .counters
                    .sched_wakes
                    .fetch_add(1, Ordering::Relaxed);
                self.pump_rail_txs();
            }
            let registered = self.drain_inbox();
            if n > 0 {
                let staged_tx: usize = self
                    .rail_slots
                    .iter()
                    .filter(|&&s| {
                        matches!(&self.conns[s], Some(Conn { kind: Kind::Rail(r), .. })
                            if !r.frames.is_empty())
                    })
                    .count();
                let mut hists = self.shared.hists.lock();
                hists.events_per_wake.record(n as u64);
                hists
                    .ready_depth
                    .record((n + registered + staged_tx) as u64);
            }
            self.shared.per_worker_busy[self.idx]
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.drain_shutdown();
                break;
            }
        }
    }

    /// Pull queued registrations into the slab; returns how many landed.
    fn drain_inbox(&mut self) -> usize {
        let mut registered = 0;
        loop {
            let p = self.shared.workers[self.idx].inbox.lock().pop_front();
            let Some(p) = p else { break };
            registered += 1;
            if let Err(e) = self.register(p) {
                if is_fd_limit(&e) {
                    self.shared.counters.fd_shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        registered
    }

    fn register(&mut self, p: Pending) -> io::Result<()> {
        let conn = match p {
            Pending::Echo(stream) => {
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true)?;
                let mut buf = self.magazine.take(ECHO_BUF);
                buf.resize(ECHO_BUF, 0);
                Conn {
                    kind: Kind::Echo(EchoConn {
                        stream,
                        buf,
                        len: 0,
                        off: 0,
                    }),
                    want_write: false,
                    // Treat a fresh conn as readable once: bytes may
                    // have arrived before the registration.
                    read_ready: true,
                }
            }
            Pending::Listener(listener) => {
                listener.set_nonblocking(true)?;
                Conn {
                    kind: Kind::Listener(listener),
                    want_write: false,
                    read_ready: true,
                }
            }
            Pending::Rail(spec) => {
                spec.stream.set_nonblocking(true)?;
                spec.stream.set_nodelay(true)?;
                let rx_buf = self.magazine.take(READ_CHUNK);
                Conn {
                    kind: Kind::Rail(Box::new(RailConn {
                        stream: spec.stream,
                        rail: spec.rail,
                        hub: spec.hub,
                        outbox: spec.outbox,
                        rx_buf,
                        rx_chunk: READ_CHUNK,
                        frames: Vec::with_capacity(TX_BATCH),
                        prefixes: Vec::with_capacity(TX_BATCH),
                        tokens: Vec::with_capacity(TX_BATCH),
                        tx_off: 0,
                        carved: Vec::with_capacity(32),
                        chaos: spec.chaos,
                        rng: Xoshiro256StarStar::new(
                            0x5EAC ^ (spec.rail as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ),
                    })),
                    want_write: false,
                    read_ready: true,
                }
            }
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.conns[s] = Some(conn);
                s
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let conn = self.conns[slot].as_ref().unwrap();
        let is_rail = matches!(conn.kind, Kind::Rail(_));
        if let Err(e) = self.poller.add(conn.raw_fd(), slot as u64, false) {
            self.conns[slot] = None;
            self.free_slots.push(slot);
            return Err(e);
        }
        self.shared.conns.fetch_add(1, Ordering::Relaxed);
        if is_rail {
            self.rail_slots.push(slot);
        }
        // Catch up on anything that happened before registration: data
        // already buffered, work already published to the outbox.
        self.handle_event(slot, true, false, false);
        Ok(())
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.delete(conn.raw_fd());
        match conn.kind {
            Kind::Echo(e) => {
                // Return the echo buffer to the pool (sole reference,
                // so the magazine actually recycles it).
                self.magazine.reclaim(e.buf.freeze());
            }
            Kind::Rail(r) => {
                self.rail_slots.retain(|&s| s != slot);
                self.magazine.reclaim(r.rx_buf.freeze());
            }
            Kind::Listener(_) => {}
        }
        self.free_slots.push(slot);
        self.shared.conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Apply a pump verdict to the interest set (the WRITE half of the
    /// state machine lives entirely here).
    fn apply(&mut self, slot: usize, pump: Pump) {
        match pump {
            Pump::Close => self.close(slot),
            Pump::WantWrite => {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                if !conn.want_write {
                    conn.want_write = true;
                    self.shared
                        .counters
                        .write_stalls
                        .fetch_add(1, Ordering::Relaxed);
                    let fd = conn.raw_fd();
                    if self.poller.modify(fd, slot as u64, true).is_err() {
                        self.close(slot);
                    }
                }
            }
            Pump::Idle => {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                if conn.want_write {
                    conn.want_write = false;
                    let fd = conn.raw_fd();
                    if self.poller.modify(fd, slot as u64, false).is_err() {
                        self.close(slot);
                    }
                }
            }
        }
    }

    // `_writable` is decoded for symmetry but not branched on: the TX
    // pump runs on every rail event (an empty outbox pop is cheap) and
    // echo pumps flush staged bytes first regardless of the edge.
    fn handle_event(&mut self, slot: usize, readable: bool, _writable: bool, hangup: bool) {
        enum K {
            Listener,
            Echo,
            Rail,
        }
        let k = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return; // stale event for an already-closed slot
            };
            if readable || hangup {
                // A hangup still needs a read: it drains buffered bytes
                // and observes the EOF that triggers the close.
                conn.read_ready = true;
            }
            match conn.kind {
                Kind::Listener(_) => K::Listener,
                Kind::Echo(_) => K::Echo,
                Kind::Rail(_) => K::Rail,
            }
        };
        match k {
            K::Listener => {
                if readable {
                    self.accept_loop(slot);
                } else if hangup {
                    self.close(slot);
                }
            }
            K::Echo => {
                let pump = {
                    let conn = self.conns[slot].as_mut().unwrap();
                    Self::pump_echo(conn)
                };
                self.apply(slot, pump);
            }
            K::Rail => {
                let verdict = {
                    let conn = self.conns[slot].as_mut().unwrap();
                    let mut verdict = Pump::Idle;
                    if conn.read_ready {
                        verdict =
                            Self::pump_rail_rx(conn, &self.shared.counters, &mut self.magazine);
                    }
                    if !matches!(verdict, Pump::Close) {
                        let tx = Self::pump_rail_tx(conn);
                        if !matches!(tx, Pump::Idle) {
                            verdict = tx;
                        }
                    }
                    verdict
                };
                self.apply(slot, verdict);
            }
        }
    }

    /// Accept until `WouldBlock`. Fd exhaustion is the *graceful* path:
    /// count the shed and stop — the pending connection stays in the
    /// kernel backlog and is retried on the next incoming-connection
    /// edge, nothing panics.
    fn accept_loop(&mut self, slot: usize) {
        loop {
            let accepted = {
                let Some(Conn {
                    kind: Kind::Listener(l),
                    ..
                }) = self.conns[slot].as_ref()
                else {
                    return;
                };
                l.accept()
            };
            match accepted {
                Ok((stream, _)) => self.shared.dispatch(Pending::Echo(stream)),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if is_fd_limit(&e) => {
                    self.shared.counters.fd_shed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(_) => break,
            }
        }
    }

    /// The echo pump: flush staged bytes, then read-and-stage more,
    /// until the socket blocks in both directions. Never allocates —
    /// `buf` is the registration-time magazine block, and a blocked
    /// write simply pauses reading (flow control: un-echoed bytes stay
    /// in the kernel's receive queue and throttle the peer).
    fn pump_echo(conn: &mut Conn) -> Pump {
        let Kind::Echo(e) = &mut conn.kind else {
            return Pump::Idle;
        };
        loop {
            while e.off < e.len {
                match e.stream.write(&e.buf[e.off..e.len]) {
                    Ok(0) => return Pump::Close,
                    Ok(n) => e.off += n,
                    Err(err) if err.kind() == ErrorKind::WouldBlock => return Pump::WantWrite,
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return Pump::Close,
                }
            }
            if !conn.read_ready {
                return Pump::Idle;
            }
            match e.stream.read(&mut e.buf[..]) {
                Ok(0) => return Pump::Close,
                Ok(n) => {
                    e.len = n;
                    e.off = 0;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => {
                    conn.read_ready = false;
                    return Pump::Idle;
                }
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Pump::Close,
            }
        }
    }

    /// Rail RX: read to `WouldBlock`, carve frames, hand them to the
    /// hub's completion queue (identical framing to the thread-per-rail
    /// RX worker, including the adaptive chunk).
    fn pump_rail_rx(conn: &mut Conn, counters: &Counters, magazine: &mut Magazine) -> Pump {
        let Kind::Rail(r) = &mut conn.kind else {
            return Pump::Idle;
        };
        loop {
            let old = r.rx_buf.len();
            if r.rx_buf.capacity() - old < r.rx_chunk {
                // Carved frames still hold the current block, so an
                // in-place `resize` would be an unpooled reallocation.
                // Swap in a fresh pool block instead: copy the residual
                // partial frame (bounded by one header + chunk) and
                // return the old block to the pool once the frames drop.
                let mut fresh = magazine.take((old + r.rx_chunk).max(READ_CHUNK));
                fresh.extend_from_slice(&r.rx_buf[..old]);
                let stale = std::mem::replace(&mut r.rx_buf, fresh);
                magazine.reclaim(stale.freeze());
            }
            let cap = r.rx_buf.capacity();
            r.rx_buf.resize(old + r.rx_chunk, 0);
            if r.rx_buf.capacity() != cap {
                // Tripwire, zero by construction: the pool swap above
                // guarantees capacity, so any growth here means a
                // hot-path allocation snuck back in. Gated at zero by
                // `ablate_reactor`, like the recorder drops in
                // `ablate_obs`.
                counters.hot_path_allocs.fetch_add(1, Ordering::Relaxed);
            }
            match r.stream.read(&mut r.rx_buf[old..]) {
                Ok(0) => {
                    r.rx_buf.truncate(old);
                    return Pump::Close;
                }
                Ok(n) => {
                    r.rx_buf.truncate(old + n);
                    r.hub.syscalls.add_rx(1, 0);
                    r.rx_chunk = if n == r.rx_chunk {
                        (r.rx_chunk * 2).min(READ_CHUNK_MAX)
                    } else {
                        READ_CHUNK
                    };
                    r.carved.clear();
                    if carve_frames(&mut r.rx_buf, &mut r.carved).is_err() {
                        r.hub.io_errors.fetch_add(1, Ordering::Relaxed);
                        return Pump::Close;
                    }
                    r.hub.syscalls.add_rx(0, r.carved.len() as u64);
                    for frame in r.carved.drain(..) {
                        r.hub.push_completion(
                            r.rail,
                            Completion::RxFrame {
                                rail: r.rail,
                                frame,
                            },
                        );
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    r.rx_buf.truncate(old);
                    conn.read_ready = false;
                    return Pump::Idle;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {
                    r.rx_buf.truncate(old);
                    continue;
                }
                Err(_) => {
                    r.rx_buf.truncate(old);
                    r.hub.io_errors.fetch_add(1, Ordering::Relaxed);
                    return Pump::Close;
                }
            }
        }
    }

    /// Rail TX: stage a batch off the outbox, push it with coalesced
    /// vectored writes, resume partials across the batch. A socket that
    /// refuses bytes arms WRITE interest and leaves the batch staged;
    /// the un-popped remainder keeps the outbox full, which is exactly
    /// the backpressure the scheduler's `has_space()` check observes.
    fn pump_rail_tx(conn: &mut Conn) -> Pump {
        let Kind::Rail(r) = &mut conn.kind else {
            return Pump::Idle;
        };
        loop {
            if r.frames.is_empty() {
                while r.frames.len() < TX_BATCH {
                    match r.outbox.pop() {
                        Some(d) => {
                            if chaos_drops(&r.chaos, r.rail, &mut r.rng) {
                                // Chaos drop: local completion, no wire
                                // bytes (lossy-link model; the frame is
                                // length-prefixed so the stream stays
                                // aligned). Bandwidth pacing is not
                                // modelled here — sleeping would stall
                                // every conn this worker multiplexes.
                                r.hub.push_completion(
                                    r.rail,
                                    Completion::TxDone {
                                        rail: r.rail,
                                        token: d.token,
                                    },
                                );
                                continue;
                            }
                            r.prefixes.push((d.frame.wire_len() as u32).to_le_bytes());
                            r.tokens.push(d.token);
                            r.frames.push(d.frame);
                        }
                        None => break,
                    }
                }
                if r.frames.is_empty() {
                    return Pump::Idle;
                }
                r.tx_off = 0;
            }
            let total: usize = r.frames.iter().map(|f| LEN_PREFIX + f.wire_len()).sum();
            {
                // Scoped: the gather list borrows the staged frames, and
                // the batch bookkeeping below needs them back.
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOVECS);
                while r.tx_off < total {
                    gather_batch_slices(&r.prefixes, &r.frames, r.tx_off, &mut slices, MAX_IOVECS);
                    match r.stream.write_vectored(&slices) {
                        Ok(0) => return Pump::Close,
                        Ok(n) => {
                            r.hub.syscalls.add_tx(1, 0);
                            r.tx_off += n;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => return Pump::WantWrite,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            r.hub.io_errors.fetch_add(1, Ordering::Relaxed);
                            return Pump::Close;
                        }
                    }
                }
            }
            r.hub.syscalls.add_tx(0, r.frames.len() as u64);
            for token in r.tokens.drain(..) {
                r.hub.push_completion(
                    r.rail,
                    Completion::TxDone {
                        rail: r.rail,
                        token,
                    },
                );
            }
            r.frames.clear();
            r.prefixes.clear();
            r.tx_off = 0;
        }
    }

    /// Pump TX on every rail this worker owns (scheduler wake: new work
    /// was published to some outbox).
    fn pump_rail_txs(&mut self) {
        let slots: Vec<usize> = self.rail_slots.clone();
        for slot in slots {
            if self.conns[slot].is_some() {
                let verdict = {
                    let conn = self.conns[slot].as_mut().unwrap();
                    Self::pump_rail_tx(conn)
                };
                self.apply(slot, verdict);
            }
        }
    }

    /// Shutdown drain: published decisions still go out (bounded by a
    /// grace period) so the peer's reassembly isn't left dangling —
    /// mirrors the TX workers' drain in the thread-per-rail runtime.
    fn drain_shutdown(&mut self) {
        let deadline = Instant::now() + SHUTDOWN_DRAIN_GRACE;
        loop {
            self.pump_rail_txs();
            let pending = self.rail_slots.iter().any(|&s| {
                matches!(&self.conns[s], Some(Conn { kind: Kind::Rail(r), .. })
                    if !r.frames.is_empty() || !r.outbox.is_empty())
            });
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// A fixed pool of reactor workers. Connections are registered
/// round-robin; dropping the pool shuts the workers down (staged TX
/// drains within a bounded grace).
pub struct ReactorPool {
    shared: Arc<ReactorShared>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorPool {
    /// Spawn `workers` event-loop threads drawing connection buffers
    /// from `pool`. Fails with `Unsupported` off linux-x86_64/aarch64.
    pub fn new(workers: usize, pool: SharedPool) -> io::Result<Self> {
        let workers = workers.max(1);
        let mut worker_shared = Vec::with_capacity(workers);
        let mut pollers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let poller = Poller::new()?;
            let waker = Arc::new(EventFd::new()?);
            poller.add(waker.raw(), WAKER_TOKEN, false)?;
            worker_shared.push(WorkerShared {
                waker,
                inbox: Mutex::new(VecDeque::new()),
            });
            pollers.push(poller);
        }
        let shared = Arc::new(ReactorShared {
            workers: worker_shared,
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            counters: Counters::default(),
            per_worker_busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            conns: AtomicU64::new(0),
            hists: Mutex::new(Hists::default()),
            epoch: Instant::now(),
            pool: pool.clone(),
        });
        let mut threads = Vec::with_capacity(workers);
        for (idx, poller) in pollers.into_iter().enumerate() {
            let worker = Worker {
                idx,
                shared: shared.clone(),
                poller,
                conns: Vec::new(),
                free_slots: Vec::new(),
                rail_slots: Vec::new(),
                magazine: pool.magazine(64),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nmad-reactor{idx}"))
                    .spawn(move || worker.run())?,
            );
        }
        Ok(ReactorPool { shared, threads })
    }

    /// Pool with the auto-sized worker count (`min(cores, 4)`).
    pub fn with_default_workers(pool: SharedPool) -> io::Result<Self> {
        Self::new(worker_count(0), pool)
    }

    /// Register an echo connection (bench servers, `nmad reactor`).
    pub fn add_echo(&self, stream: TcpStream) -> io::Result<()> {
        self.shared.dispatch(Pending::Echo(stream));
        Ok(())
    }

    /// Register a listener whose accepted connections become echo
    /// conns, with the backlog bumped for high connection counts.
    pub fn add_listener(&self, listener: TcpListener) -> io::Result<()> {
        // Best effort: the syscall layer may be stubbed out, and a
        // 128-deep backlog still works — just drops SYNs under bursts.
        let _ = bump_backlog(&listener, HIGH_BACKLOG);
        self.shared.dispatch(Pending::Listener(listener));
        Ok(())
    }

    /// Register an engine rail connection. Returns the owning worker's
    /// waker, which the caller installs as the rail outbox's wake hook
    /// (publishing TX work must wake the epoll loop, not a condvar).
    pub fn add_rail(
        &self,
        stream: TcpStream,
        rail: usize,
        hub: Arc<ParallelHub>,
        outbox: OutboxReceiver,
        chaos: Option<ChaosState>,
    ) -> io::Result<Arc<EventFd>> {
        let idx = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.workers.len();
        let w = &self.shared.workers[idx];
        w.inbox.lock().push_back(Pending::Rail(Box::new(RailSpec {
            stream,
            rail,
            hub,
            outbox,
            chaos,
        })));
        w.waker.wake();
        Ok(w.waker.clone())
    }

    /// The shared state (telemetry snapshots for
    /// [`nmad_core::ParallelHub::set_reactor_source`]).
    pub fn handle(&self) -> Arc<ReactorShared> {
        self.shared.clone()
    }

    /// Current event-loop telemetry.
    pub fn stats(&self) -> ReactorStats {
        self.shared.snapshot()
    }

    /// Connections currently registered.
    pub fn conns(&self) -> u64 {
        self.shared.conns.load(Ordering::Relaxed)
    }

    /// Outstanding buffers in the backing pool (leak ledger).
    pub fn pool_outstanding(&self) -> u64 {
        self.shared.pool.outstanding()
    }

    /// Stop the workers (staged TX drains within a bounded grace) and
    /// join them. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in &self.shared.workers {
            w.waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
