//! # nmad-transport-tcp — the engine over real TCP sockets
//!
//! Paper §2 lists the library's drivers: Elan, MX, GM-2, SiSCI "and the
//! legacy socket API on top of TCP/IP". The exotic NICs are simulated in
//! this reproduction — but the socket driver can be implemented for real.
//! This crate runs the unmodified NewMadeleine engine over one TCP
//! connection per rail:
//!
//! * packets are framed with a `u32` little-endian length prefix and carry
//!   the exact same wire format as every other harness;
//! * endpoints can live in the same process ([`pair_localhost`]) or in
//!   different processes ([`listen`] / [`connect`]).
//!
//! Multiple TCP connections between the same two hosts are the classic
//! poor man's multi-rail: the strategies still apply (striping a large
//! message over N sockets, aggregating small ones onto the first).
//!
//! Two progress runtimes drive the same engine:
//!
//! * **Serial** (default, `EngineConfig::parallel = false`): one progress
//!   thread per endpoint plays the NIC-activity loop with non-blocking
//!   sockets — it drains arrivals, flushes pending injections and offers
//!   idle rails to the engine. Submissions kick the thread's work signal
//!   so a send posted during an idle poll is picked up immediately
//!   instead of waiting out the poll interval.
//! * **Parallel** (`EngineConfig::parallel = true`): a sharded pipeline
//!   per endpoint — one scheduler thread owning the (short-held) engine
//!   lock, plus one TX and one RX thread per rail. The slow socket write
//!   happens in the rail's TX worker *outside* any shared lock; arrivals
//!   and TX completions flow back to the scheduler through per-rail
//!   completion queues and are drained in batches. Each TX worker sleeps
//!   on its own outbox condvar, not a global one. See
//!   [`nmad_core::ParallelHub`] and DESIGN.md §10.
//!
//! The datapath is scatter-gather end to end in both modes: transmissions
//! go out with `write_vectored` straight from the engine's
//! [`PacketFrame`] parts (no flattening), and arrivals are carved out of
//! a `BytesMut` receive ring with `split_to`, handing each frame to
//! [`nmad_core::Engine::on_frame`] as one refcounted slice.
//!
//! ## Syscall amortization (DESIGN.md §12)
//!
//! The parallel runtime batches kernel crossings on both directions:
//! each TX worker wakeup drains up to `TX_BATCH` published decisions
//! from its outbox and coalesces the whole batch — length prefixes and
//! frame parts interleaved — into a single `write_vectored` gather list
//! (partial writes resume across the *batch*, not per frame), and the
//! RX workers grow their read chunk adaptively up to `READ_CHUNK_MAX`
//! so one `read` carves many frames. The resulting syscalls-per-packet
//! ratio is counted in [`nmad_core::SyscallStats`] and gated by the
//! `ablate_cycles` bench. Batching on our side is also why TCP_NODELAY
//! is unconditionally set on every rail socket (see `RailIo::new`):
//! the transport coalesces on its own terms, so Nagle's algorithm could
//! only add delayed-ACK latency to control frames, never save packets.

#![warn(missing_docs)]
// Copy-regression gate: see DESIGN.md "Datapath and copy discipline".
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use nmad_core::driver::TxToken;
use nmad_core::engine::Engine;
use nmad_core::request::{RecvId, SendId};
use nmad_core::{
    ChaosState, Completion, EngineConfig, Event, EventKind, FlightRecorder, OutboxReceiver,
    ParallelHub, WorkSignal,
};
use nmad_model::{Platform, RailId};
use nmad_sim::Xoshiro256StarStar;
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::{ConnId, PacketFrame};
use parking_lot::{Condvar, Mutex};

pub mod reactor;

/// Frame length prefix size.
const LEN_PREFIX: usize = 4;
/// Largest accepted frame (sanity bound against corrupt prefixes).
const MAX_FRAME: usize = 64 << 20;
// The serial worker's idle-poll upper bound — historically a hard-coded
// 50 µs here — is now [`EngineConfig::serial_idle_poll_us`] (same
// default), so latency-sensitive deployments tighten it per endpoint
// instead of recompiling.
/// Parallel workers: socket read/write timeout, which doubles as the
/// shutdown-responsiveness bound for blocking I/O.
const IO_TIMEOUT: Duration = Duration::from_millis(25);
/// Parallel TX worker: upper bound on one outbox wait.
const TX_IDLE_WAIT: Duration = Duration::from_millis(2);
/// Bytes read from the socket per `read` call (initial; the parallel RX
/// worker grows its refill up to [`READ_CHUNK_MAX`] while the socket
/// keeps saturating it, so one syscall feeds many frame decodes).
const READ_CHUNK: usize = 64 * 1024;
/// Upper bound on an adaptive RX refill.
const READ_CHUNK_MAX: usize = 256 * 1024;
/// Frames a parallel TX worker drains from its outbox per wakeup and
/// coalesces into a single `write_vectored` (sendmmsg-style syscall
/// amortization). Matches the outbox capacity: one wakeup can flush
/// everything the scheduler managed to queue. Only pipelined engines
/// ([`EngineConfig::rail_pipeline`] > 1) ever queue more than one.
const TX_BATCH: usize = 8;
/// Cap on gather-list length per vectored write: stays under every
/// platform's IOV_MAX (the partial-write resume loop covers the rest).
const MAX_IOVECS: usize = 256;

/// Transport configuration.
#[derive(Clone)]
pub struct TcpConfig {
    /// Rail layout (one TCP connection per rail; the model's thresholds
    /// drive the strategies exactly as on the simulated platform).
    pub platform: Platform,
    /// Engine configuration. CRC is forced on. Set
    /// [`EngineConfig::parallel`] to run the sharded per-rail pipeline
    /// instead of the single progress thread.
    pub engine: EngineConfig,
    /// Logical channels opened at construction on both endpoints.
    pub conns: usize,
    /// Optional live chaos dials. The TX path reads them per frame:
    /// `drop_boost` discards outgoing frames before the socket write
    /// (the frame is length-prefixed, so the stream stays aligned) and,
    /// on the parallel pipeline, `bandwidth_mult < 1` paces writes by
    /// the extra modelled wire time. The caller keeps a clone of the
    /// handle and turns the dials while the endpoint runs.
    pub chaos: Option<ChaosState>,
}

impl TcpConfig {
    /// Default configuration.
    pub fn new(platform: Platform, engine: EngineConfig) -> Self {
        TcpConfig {
            platform,
            engine,
            conns: 1,
            chaos: None,
        }
    }
}

struct Shared {
    engine: Mutex<Engine>,
    cv: Condvar,
    /// Wakes the progress thread out of an idle poll when the app
    /// submits work. Without it a submission posted while the worker
    /// slept waited out the full poll interval (and, worse, any future
    /// longer idle wait would have lost the wakeup entirely).
    work: WorkSignal,
    shutdown: AtomicBool,
    rx_errors: AtomicU64,
    io_errors: AtomicU64,
}

/// Which runtime drives an endpoint's engine.
#[derive(Clone)]
enum Fabric {
    /// Single progress thread holding the engine lock across I/O.
    Serial(Arc<Shared>),
    /// Sharded pipeline: scheduler + per-rail TX/RX workers.
    Parallel(Arc<ParallelHub>),
}

impl Fabric {
    fn engine(&self) -> &Mutex<Engine> {
        match self {
            Fabric::Serial(s) => &s.engine,
            Fabric::Parallel(h) => h.engine(),
        }
    }

    /// Condvar notified when app-visible completions may have landed.
    fn cv(&self) -> &Condvar {
        match self {
            Fabric::Serial(s) => &s.cv,
            Fabric::Parallel(h) => h.app_cv(),
        }
    }
}

/// One endpoint of the TCP fabric.
pub struct Endpoint {
    fabric: Fabric,
    /// Serial: the single progress thread. Parallel: per-rail TX/RX
    /// workers first, the scheduler last — joined in that order so the
    /// scheduler drains the workers' final completions before exiting.
    /// Reactor: the scheduler only (rail I/O lives in the pool below).
    workers: Vec<JoinHandle<()>>,
    conns: Vec<ConnId>,
    /// Reactor mode only: the epoll worker pool multiplexing this
    /// endpoint's rail sockets. Declared after `workers` on purpose —
    /// `Drop` joins the scheduler first (it drains the pool's last
    /// completions), then field drop order shuts the pool down.
    reactor: Option<reactor::ReactorPool>,
}

/// Handle to a send in flight.
pub struct SendHandle {
    fabric: Fabric,
    id: SendId,
}

/// Handle to a posted receive.
pub struct RecvHandle {
    fabric: Fabric,
    id: RecvId,
}

/// Block on `fabric`'s completion condvar until `done` or `timeout`.
fn wait_on<T>(
    fabric: &Fabric,
    timeout: Duration,
    mut done: impl FnMut(&mut Engine) -> Option<T>,
) -> Option<T> {
    let deadline = Instant::now() + timeout;
    let mut eng = fabric.engine().lock();
    loop {
        if let Some(v) = done(&mut eng) {
            return Some(v);
        }
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        fabric.cv().wait_for(&mut eng, deadline - now);
    }
}

impl SendHandle {
    /// Block until local completion or timeout.
    pub fn wait(&self, timeout: Duration) -> bool {
        wait_on(&self.fabric, timeout, |eng| {
            eng.send_complete(self.id).then_some(())
        })
        .is_some()
    }

    /// Block until the *peer confirms delivery* (requires
    /// `EngineConfig::acked` on both endpoints), or `timeout` expires.
    pub fn wait_acked(&self, timeout: Duration) -> bool {
        wait_on(&self.fabric, timeout, |eng| {
            eng.send_acked(self.id).then_some(())
        })
        .is_some()
    }

    /// Re-enqueue the message for transmission (acked mode). Normally the
    /// engine's own adaptive timers handle this from the progress thread;
    /// the manual hook remains for tests. See
    /// [`nmad_core::Engine::retransmit`].
    pub fn retransmit(&self) -> bool {
        let hit = self.fabric.engine().lock().retransmit(self.id);
        match &self.fabric {
            Fabric::Serial(s) => s.work.kick(),
            Fabric::Parallel(h) => h.kick_sched(),
        }
        hit
    }
}

impl RecvHandle {
    /// Block until the message arrives or timeout.
    pub fn wait(&self, timeout: Duration) -> Option<MessageAssembly> {
        wait_on(&self.fabric, timeout, |eng| eng.try_recv(self.id))
    }
}

impl Endpoint {
    /// Logical channels opened at construction.
    pub fn conns(&self) -> &[ConnId] {
        &self.conns
    }

    /// Submit a non-blocking send.
    pub fn send(&self, conn: ConnId, segments: Vec<Bytes>) -> SendHandle {
        let id = match &self.fabric {
            Fabric::Serial(s) => {
                let id = s.engine.lock().submit_send(conn, segments);
                // Wake the progress thread: it may be mid idle-poll.
                s.work.kick();
                id
            }
            // The hub queues without touching the engine lock and kicks
            // the scheduler itself.
            // Submission only errors after shutdown, and this endpoint
            // owns the hub's lifetime.
            Fabric::Parallel(h) => h
                .submit_send(conn, segments)
                .expect("endpoint not shut down"),
        };
        SendHandle {
            fabric: self.fabric.clone(),
            id,
        }
    }

    /// Post a non-blocking receive.
    pub fn recv(&self, conn: ConnId) -> RecvHandle {
        let id = match &self.fabric {
            Fabric::Serial(s) => {
                let id = s.engine.lock().post_recv(conn);
                s.work.kick();
                id
            }
            Fabric::Parallel(h) => h.post_recv(conn).expect("endpoint not shut down"),
        };
        RecvHandle {
            fabric: self.fabric.clone(),
            id,
        }
    }

    /// Engine statistics snapshot. In reactor mode the event-loop
    /// telemetry is refreshed from the live counters (not just the last
    /// scheduler pass's mirror).
    pub fn stats(&self) -> nmad_core::EngineStats {
        let mut stats = self.fabric.engine().lock().stats().clone();
        if let Some(pool) = &self.reactor {
            stats.reactor = pool.stats();
        }
        stats
    }

    /// Submit a send with the overload policy applied: refused with
    /// [`nmad_core::SubmitError::WouldBlock`] when a queue bound,
    /// admission quota or pool watermark is hit (see
    /// [`nmad_core::OverloadConfig`]). On the serial runtime overload
    /// limits don't apply (no shared submission queue) and this always
    /// admits — same contract as the mem fabric.
    pub fn try_send(
        &self,
        conn: ConnId,
        segments: Vec<Bytes>,
    ) -> Result<SendHandle, nmad_core::SubmitError> {
        match &self.fabric {
            Fabric::Serial(_) => Ok(self.send(conn, segments)),
            Fabric::Parallel(h) => {
                let id = h.try_submit_send(conn, segments)?;
                Ok(SendHandle {
                    fabric: self.fabric.clone(),
                    id,
                })
            }
        }
    }

    /// Overload-protection rejection counters (all zero on the serial
    /// runtime, which admits unconditionally).
    pub fn overload_stats(&self) -> nmad_core::OverloadStats {
        match &self.fabric {
            Fabric::Serial(_) => nmad_core::OverloadStats::default(),
            Fabric::Parallel(h) => h.overload_stats(),
        }
    }

    /// Reactor event-loop telemetry (`None` unless this endpoint runs
    /// the reactor transport).
    pub fn reactor_stats(&self) -> Option<nmad_core::ReactorStats> {
        self.reactor.as_ref().map(|p| p.stats())
    }

    /// Packets rejected on receive (decode/CRC/reassembly errors).
    pub fn rx_errors(&self) -> u64 {
        match &self.fabric {
            Fabric::Serial(s) => s.rx_errors.load(Ordering::Relaxed),
            Fabric::Parallel(h) => h.rx_errors.load(Ordering::Relaxed),
        }
    }

    /// Socket-level I/O errors observed by the workers.
    pub fn io_errors(&self) -> u64 {
        match &self.fabric {
            Fabric::Serial(s) => s.io_errors.load(Ordering::Relaxed),
            Fabric::Parallel(h) => h.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Timer and dwell-time telemetry of one rail (SRTT/RTTVAR/RTO and
    /// per-state dwell times, as of the engine clock).
    pub fn rail_telemetry(&self, rail: usize) -> nmad_core::RailTelemetry {
        self.fabric.engine().lock().rail_telemetry(rail)
    }

    /// Snapshot of the recorded flight events, oldest first. Empty unless
    /// the endpoint was built with a nonzero
    /// `EngineConfig::record_capacity`. In parallel mode this merges the
    /// engine's ring with the per-worker shards deposited so far
    /// (workers deposit at exit; live workers' events appear after
    /// shutdown).
    pub fn events(&self) -> Vec<nmad_core::Event> {
        match &self.fabric {
            Fabric::Serial(s) => s.engine.lock().recorder().events(),
            Fabric::Parallel(h) => h.merged_events(),
        }
    }

    /// Fold pending recorder events into the telemetry windows and
    /// render the Prometheus text exposition. `None` unless the
    /// endpoint was built with `EngineConfig::telemetry` enabled.
    pub fn telemetry_prometheus(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        let stats = eng.stats().clone();
        eng.telemetry()
            .map(|agg| nmad_core::obs::to_prometheus(agg, &stats))
    }

    /// The telemetry time series as JSONL, one closed window per line
    /// (oldest first, at most the configured ring depth).
    pub fn telemetry_jsonl(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.telemetry().map(nmad_core::obs::windows_jsonl)
    }

    /// Snapshot of the most recently closed telemetry window.
    pub fn telemetry_latest(&self) -> Option<nmad_core::Window> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.telemetry().and_then(|agg| agg.latest().cloned())
    }

    /// Watchdog alerts fired so far (empty without a watchdog).
    pub fn alerts(&self) -> Vec<nmad_core::Alert> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.watchdog()
            .map(|d| d.alerts().to_vec())
            .unwrap_or_default()
    }

    /// Machine-readable watchdog verdict. `None` unless the endpoint
    /// was built with `EngineConfig::watchdog` enabled.
    pub fn watchdog_verdict(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.watchdog().map(|d| d.verdict_json())
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        match &self.fabric {
            Fabric::Serial(s) => {
                s.shutdown.store(true, Ordering::SeqCst);
                s.work.kick();
            }
            Fabric::Parallel(h) => h.begin_shutdown(),
        }
        // Parallel: I/O workers were pushed before the scheduler, so they
        // join first and their final completions get drained.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Build gather slices for `prefix + frame` starting at byte `off`.
fn gather_slices<'a>(
    prefix: &'a [u8; LEN_PREFIX],
    frame: &'a PacketFrame,
    mut skip: usize,
    slices: &mut Vec<IoSlice<'a>>,
) {
    slices.clear();
    if skip < LEN_PREFIX {
        slices.push(IoSlice::new(&prefix[skip..]));
        skip = 0;
    } else {
        skip -= LEN_PREFIX;
    }
    for part in frame.parts() {
        if skip >= part.len() {
            skip -= part.len();
            continue;
        }
        slices.push(IoSlice::new(&part[skip..]));
        skip = 0;
    }
}

/// Batched counterpart of [`gather_slices`]: one gather list covering
/// the concatenation `prefix₀+frame₀, prefix₁+frame₁, …` starting at
/// byte `skip` of the whole batch, capped at `max_slices` entries (the
/// partial-write resume loop rebuilds from the new offset, so a capped
/// list just means another `write_vectored` — never corruption).
fn gather_batch_slices<'a>(
    prefixes: &'a [[u8; LEN_PREFIX]],
    frames: &'a [PacketFrame],
    mut skip: usize,
    slices: &mut Vec<IoSlice<'a>>,
    max_slices: usize,
) {
    slices.clear();
    for (prefix, frame) in prefixes.iter().zip(frames) {
        let frame_total = LEN_PREFIX + frame.wire_len();
        if skip >= frame_total {
            skip -= frame_total;
            continue;
        }
        if skip < LEN_PREFIX {
            slices.push(IoSlice::new(&prefix[skip..]));
            skip = 0;
            if slices.len() >= max_slices {
                return;
            }
        } else {
            skip -= LEN_PREFIX;
        }
        for part in frame.parts() {
            if skip >= part.len() {
                skip -= part.len();
                continue;
            }
            slices.push(IoSlice::new(&part[skip..]));
            skip = 0;
            if slices.len() >= max_slices {
                return;
            }
        }
    }
}

/// Carve complete length-prefixed frames off the front of `rx_buf`.
fn carve_frames(rx_buf: &mut BytesMut, frames: &mut Vec<PacketFrame>) -> std::io::Result<()> {
    while rx_buf.len() >= LEN_PREFIX {
        let len = u32::from_le_bytes(rx_buf[..LEN_PREFIX].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("frame length {len} exceeds bound"),
            ));
        }
        if rx_buf.len() - LEN_PREFIX < len {
            break;
        }
        let _prefix = rx_buf.split_to(LEN_PREFIX);
        let wire = rx_buf.split_to(len).freeze();
        frames.push(PacketFrame::from_wire(wire));
    }
    Ok(())
}

/// Per-rail socket state: partial reads and pending vectored writes
/// (serial runtime).
struct RailIo {
    stream: TcpStream,
    /// Receive ring: bytes read but not yet framed. Complete frames are
    /// `split_to` off the front and frozen into refcounted [`PacketFrame`]s
    /// — the payload is never copied again after leaving the socket.
    rx_buf: BytesMut,
    /// Frame pending injection, written gather-style part by part.
    tx_frame: Option<PacketFrame>,
    /// Little-endian length prefix for `tx_frame`.
    tx_prefix: [u8; LEN_PREFIX],
    /// Bytes of `prefix + frame` already accepted by the socket.
    tx_off: usize,
    /// Tx token to report once the pending frame fully drains.
    pending_token: Option<TxToken>,
    /// Syscall amortization tallies (mirrored into
    /// [`nmad_core::SyscallStats`] by the progress thread).
    syscalls: nmad_core::SyscallStats,
}

impl RailIo {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        // TCP_NODELAY on every rail socket, both runtimes, both ends
        // (listen/accept and connect both land here or in
        // `build_parallel`): the engine's control frames — rendezvous
        // grants, delivery acks, health probes — are a few dozen bytes,
        // and Nagle would hold them behind in-flight data until the
        // peer's delayed ACK fired. That inflates measured SRTT by up to
        // 40 ms, trips retransmission timers, and serializes the
        // rendezvous handshake. The engine already coalesces small
        // frames on its own terms (aggregation + batched vectored
        // writes), so Nagle only adds latency without saving packets.
        stream.set_nodelay(true)?;
        Ok(RailIo {
            stream,
            rx_buf: BytesMut::new(),
            tx_frame: None,
            tx_prefix: [0; LEN_PREFIX],
            tx_off: 0,
            pending_token: None,
            syscalls: nmad_core::SyscallStats::default(),
        })
    }

    /// Pull whatever the socket has; return complete frames.
    fn drain_rx(&mut self) -> std::io::Result<Vec<PacketFrame>> {
        loop {
            // Read straight into the ring's tail — no bounce buffer.
            let old = self.rx_buf.len();
            self.rx_buf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rx_buf[old..]) {
                Ok(0) => {
                    self.rx_buf.truncate(old);
                    break; // peer closed; frames already buffered still count
                }
                Ok(n) => {
                    self.rx_buf.truncate(old + n);
                    self.syscalls.rx_calls += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.rx_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {
                    self.rx_buf.truncate(old);
                    continue;
                }
                Err(e) => {
                    self.rx_buf.truncate(old);
                    return Err(e);
                }
            }
        }
        let mut frames = Vec::new();
        carve_frames(&mut self.rx_buf, &mut frames)?;
        self.syscalls.rx_frames += frames.len() as u64;
        Ok(frames)
    }

    /// Queue a frame for transmission. The parts are shared with the
    /// engine's in-flight state (refcounted), not copied into a staging
    /// buffer.
    fn enqueue(&mut self, frame: PacketFrame, token: TxToken) {
        debug_assert!(self.pending_token.is_none(), "one injection at a time");
        self.tx_prefix = (frame.wire_len() as u32).to_le_bytes();
        self.tx_off = 0;
        self.tx_frame = Some(frame);
        self.pending_token = Some(token);
    }

    /// Push the pending frame with gather writes; return the token once
    /// everything drained. `tx_off` tracks partial progress across the
    /// prefix and the frame parts between calls.
    fn flush(&mut self) -> std::io::Result<Option<TxToken>> {
        loop {
            let Some(frame) = &self.tx_frame else {
                return Ok(self.pending_token.take());
            };
            let total = LEN_PREFIX + frame.wire_len();
            let mut slices: Vec<IoSlice<'_>> = Vec::new();
            gather_slices(&self.tx_prefix, frame, self.tx_off, &mut slices);
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket refused bytes",
                    ))
                }
                Ok(n) => {
                    self.syscalls.tx_calls += 1;
                    self.tx_off += n;
                    if self.tx_off >= total {
                        self.syscalls.tx_frames += 1;
                        self.tx_frame = None;
                        self.tx_off = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn idle(&self) -> bool {
        self.pending_token.is_none()
    }
}

/// The serial progress thread: the whole NIC-activity loop under one
/// engine lock.
struct Worker {
    shared: Arc<Shared>,
    rails: Vec<RailIo>,
    /// Epoch for the engine's monotonic clock (timeouts, probes).
    start: Instant,
    chaos: Option<ChaosState>,
    /// Seeded draw for the chaos drop boost (unused at identity).
    rng: Xoshiro256StarStar,
    /// Idle-poll upper bound, from [`EngineConfig::serial_idle_poll_us`].
    idle_poll: Duration,
}

impl Worker {
    fn run(mut self) {
        loop {
            let progressed = match self.step() {
                Ok(p) => p,
                Err(_) => {
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                    false
                }
            };
            if progressed {
                self.shared.cv.notify_all();
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !progressed {
                // Idle poll, ended early by a submission's kick — a send
                // posted now is picked up immediately, not after the
                // poll interval.
                self.shared.work.wait(self.idle_poll);
            }
        }
    }

    fn step(&mut self) -> std::io::Result<bool> {
        let mut progressed = false;
        let mut eng = self.shared.engine.lock();

        // 0. Run the engine's timer wheel: adaptive retransmission of
        // overdue acked sends, health probes, failover re-planning.
        let now_ns = Instant::now()
            .saturating_duration_since(self.start)
            .as_nanos() as u64;
        let outcome = eng.progress(now_ns);
        if !outcome.retransmitted.is_empty() || outcome.control_enqueued {
            progressed = true;
        }

        for rail in 0..self.rails.len() {
            // 1. Arrivals.
            for frame in self.rails[rail].drain_rx()? {
                progressed = true;
                if eng.on_frame(RailId(rail), &frame).is_err() {
                    self.shared.rx_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            // 2. Finish pending injections.
            if let Some(token) = self.rails[rail].flush()? {
                progressed = true;
                eng.on_tx_done(RailId(rail), token)
                    .expect("token issued by this worker");
            }
            // 3. Offer idle rails to the engine.
            if self.rails[rail].idle() {
                if let Some(d) = eng
                    .next_tx(RailId(rail))
                    .expect("engine invariant violated")
                {
                    progressed = true;
                    if chaos_drops(&self.chaos, rail, &mut self.rng) {
                        // Chaos drop: the transmit "succeeds" locally but
                        // the frame never reaches the wire — exactly a
                        // lossy link, recoverable in acked mode only.
                        eng.on_tx_done(RailId(rail), d.token)
                            .expect("token issued by this worker");
                    } else {
                        self.rails[rail].enqueue(d.frame, d.token);
                        // Try to push it out immediately.
                        if let Some(token) = self.rails[rail].flush()? {
                            eng.on_tx_done(RailId(rail), token)
                                .expect("token issued by this worker");
                        }
                    }
                }
            }
        }

        // Mirror the per-rail syscall tallies into the engine's stats so
        // `nmad cycles` and the bench gates see the serial runtime too.
        let mut sys = nmad_core::SyscallStats::default();
        for rail in &self.rails {
            sys.tx_calls += rail.syscalls.tx_calls;
            sys.tx_frames += rail.syscalls.tx_frames;
            sys.rx_calls += rail.syscalls.rx_calls;
            sys.rx_frames += rail.syscalls.rx_frames;
        }
        eng.note_syscalls(sys);
        Ok(progressed)
    }
}

/// Parallel runtime: one rail's TX worker. Pops published decisions off
/// its own outbox (its own condvar — no global wakeup) and performs the
/// slow socket write with no shared lock held, then reports completion
/// to the scheduler's queue.
struct TxWorker {
    hub: Arc<ParallelHub>,
    rail: usize,
    stream: TcpStream,
    outbox: OutboxReceiver,
    epoch: Instant,
    /// Per-thread recorder shard; deposited into the hub at exit and
    /// merged with the engine ring at export.
    shard: FlightRecorder,
    chaos: Option<ChaosState>,
    rng: Xoshiro256StarStar,
    /// Nominal rail bandwidth (bytes/s) — the baseline the chaos
    /// pacing stretches against.
    link_bandwidth: f64,
}

impl TxWorker {
    fn run(mut self) {
        let mut batch: Vec<nmad_core::TxDecision> = Vec::with_capacity(TX_BATCH);
        loop {
            match self.outbox.pop_wait(TX_IDLE_WAIT) {
                Some(d) => {
                    // One wakeup drains whatever the scheduler queued
                    // (bounded): the whole batch goes out in one
                    // coalesced vectored write below.
                    batch.push(d);
                    while batch.len() < TX_BATCH {
                        match self.outbox.pop() {
                            Some(d) => batch.push(d),
                            None => break,
                        }
                    }
                    self.inject_batch(&mut batch);
                }
                None => {
                    if self.hub.is_shutdown() {
                        break;
                    }
                }
            }
        }
        // Clean shutdown drains the outbox: decisions already published
        // still go out so the peer's reassembly isn't left dangling.
        while let Some(d) = self.outbox.pop() {
            batch.push(d);
            if batch.len() >= TX_BATCH {
                self.inject_batch(&mut batch);
            }
        }
        if !batch.is_empty() {
            self.inject_batch(&mut batch);
        }
        self.hub.deposit_shard(self.shard.events());
    }

    /// Transmit a drained batch as one coalesced vectored write and
    /// report per-frame completions. Chaos-dropped frames are filtered
    /// out first (they complete locally without wire bytes); the stream
    /// stays aligned because every surviving frame is length-prefixed.
    fn inject_batch(&mut self, batch: &mut Vec<nmad_core::TxDecision>) {
        let mut wire: Vec<PacketFrame> = Vec::with_capacity(batch.len());
        let mut tokens: Vec<TxToken> = Vec::with_capacity(batch.len());
        let mut pace_bytes = 0usize;
        for d in batch.drain(..) {
            if chaos_drops(&self.chaos, self.rail, &mut self.rng) {
                // Dropped before the write: local completion, no wire
                // bytes, no pacing.
                self.hub.push_completion(
                    self.rail,
                    Completion::TxDone {
                        rail: self.rail,
                        token: d.token,
                    },
                );
                continue;
            }
            pace_bytes += d.frame.wire_len();
            tokens.push(d.token);
            wire.push(d.frame);
        }
        if wire.is_empty() {
            return;
        }
        self.chaos_pace(pace_bytes);
        match self.write_batch(&wire) {
            Ok((dur_ns, calls)) => {
                self.hub.syscalls.add_tx(calls, wire.len() as u64);
                let now = self.epoch.elapsed().as_nanos() as u64;
                for (frame, token) in wire.iter().zip(&tokens) {
                    self.shard.record(
                        Event::new(now, EventKind::WorkerWrite)
                            .rail(self.rail)
                            .seq(token.0)
                            .size((LEN_PREFIX + frame.wire_len()) as u64)
                            // Wall time of the whole coalesced write —
                            // shared by every frame it carried.
                            .aux(dur_ns),
                    );
                    self.hub.push_completion(
                        self.rail,
                        Completion::TxDone {
                            rail: self.rail,
                            token: *token,
                        },
                    );
                }
            }
            Err(_) => {
                self.hub.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocking gather write of a frame batch, resuming partial writes
    /// across frame boundaries. Returns the wall time spent and the
    /// number of `write_vectored` calls that moved bytes.
    fn write_batch(&mut self, frames: &[PacketFrame]) -> std::io::Result<(u64, u64)> {
        let prefixes: Vec<[u8; LEN_PREFIX]> = frames
            .iter()
            .map(|f| (f.wire_len() as u32).to_le_bytes())
            .collect();
        let total: usize = frames.iter().map(|f| LEN_PREFIX + f.wire_len()).sum();
        let mut off = 0usize;
        let mut calls = 0u64;
        let mut slices: Vec<IoSlice<'_>> = Vec::new();
        let t0 = Instant::now();
        while off < total {
            gather_batch_slices(&prefixes, frames, off, &mut slices, MAX_IOVECS);
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket refused bytes",
                    ))
                }
                Ok(n) => {
                    calls += 1;
                    off += n;
                }
                // SO_SNDTIMEO expiry: keep pushing — a partially written
                // frame must complete or the peer's stream corrupts —
                // but give up once shutdown is requested.
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.hub.is_shutdown() {
                        return Err(e);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok((t0.elapsed().as_nanos() as u64, calls))
    }

    /// Sleep out the *extra* wire time a degraded rail would need for
    /// `bytes`: at multiplier m < 1 the frame takes 1/m the nominal
    /// time, and the socket write itself covers the nominal share.
    fn chaos_pace(&self, bytes: usize) {
        let Some(c) = &self.chaos else { return };
        let mult = c.bandwidth_mult(self.rail);
        if mult >= 1.0 || self.link_bandwidth <= 0.0 {
            return;
        }
        let nominal = bytes as f64 / self.link_bandwidth;
        let extra = nominal / mult - nominal;
        std::thread::sleep(Duration::from_secs_f64(extra));
    }
}

/// One seeded draw against the chaos drop boost (false at identity —
/// no rng state is consumed when no handle is installed or the boost
/// is zero).
fn chaos_drops(chaos: &Option<ChaosState>, rail: usize, rng: &mut Xoshiro256StarStar) -> bool {
    match chaos {
        Some(c) => {
            let boost = c.drop_boost(rail);
            boost > 0.0 && rng.chance(boost)
        }
        None => false,
    }
}

/// Parallel runtime: one rail's RX worker. Blocking reads with a timeout
/// (so shutdown stays responsive), carving frames off a receive ring and
/// queueing them for the scheduler's next batched drain.
struct RxWorker {
    hub: Arc<ParallelHub>,
    rail: usize,
    stream: TcpStream,
    epoch: Instant,
    shard: FlightRecorder,
}

impl RxWorker {
    fn run(mut self) {
        let mut rx_buf = BytesMut::new();
        let mut frames = Vec::new();
        // Adaptive refill: while the socket keeps filling the whole
        // chunk there is a backlog in the kernel — grow the next read
        // (up to a bound) so one syscall feeds more frame decodes.
        // Shrink back once reads come up short.
        let mut chunk = READ_CHUNK;
        loop {
            if self.hub.is_shutdown() {
                break;
            }
            let old = rx_buf.len();
            rx_buf.resize(old + chunk, 0);
            match self.stream.read(&mut rx_buf[old..]) {
                Ok(0) => {
                    rx_buf.truncate(old);
                    break; // peer closed for good
                }
                Ok(n) => {
                    rx_buf.truncate(old + n);
                    self.hub.syscalls.add_rx(1, 0);
                    chunk = if n == chunk {
                        (chunk * 2).min(READ_CHUNK_MAX)
                    } else {
                        READ_CHUNK
                    };
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    // SO_RCVTIMEO expiry: loop re-checks shutdown.
                    rx_buf.truncate(old);
                    continue;
                }
                Err(_) => {
                    rx_buf.truncate(old);
                    self.hub.io_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            frames.clear();
            if carve_frames(&mut rx_buf, &mut frames).is_err() {
                self.hub.io_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            self.hub.syscalls.add_rx(0, frames.len() as u64);
            for frame in frames.drain(..) {
                self.shard.record(
                    Event::new(self.epoch.elapsed().as_nanos() as u64, EventKind::WorkerRx)
                        .rail(self.rail)
                        .size((LEN_PREFIX + frame.wire_len()) as u64),
                );
                self.hub.push_completion(
                    self.rail,
                    Completion::RxFrame {
                        rail: self.rail,
                        frame,
                    },
                );
            }
        }
        self.hub.deposit_shard(self.shard.events());
    }
}

fn build_endpoint(config: &TcpConfig, streams: Vec<TcpStream>) -> std::io::Result<Endpoint> {
    let mut cfg_engine = config.engine.clone();
    cfg_engine.crc = true;
    if cfg_engine.reactor {
        return build_reactor(config, cfg_engine, streams);
    }
    if cfg_engine.parallel {
        return build_parallel(config, cfg_engine, streams);
    }
    let idle_poll_us = cfg_engine.serial_idle_poll_us;
    let shared = Arc::new(Shared {
        engine: Mutex::new(Engine::new(
            cfg_engine,
            config.platform.rails.clone(),
            vec![],
        )),
        cv: Condvar::new(),
        work: WorkSignal::default(),
        shutdown: AtomicBool::new(false),
        rx_errors: AtomicU64::new(0),
        io_errors: AtomicU64::new(0),
    });
    let mut conns = Vec::new();
    for _ in 0..config.conns.max(1) {
        conns.push(shared.engine.lock().conn_open());
    }
    let rails = streams
        .into_iter()
        .map(RailIo::new)
        .collect::<std::io::Result<Vec<_>>>()?;
    let worker = Worker {
        shared: shared.clone(),
        rails,
        start: Instant::now(),
        chaos: config.chaos.clone(),
        rng: Xoshiro256StarStar::new(0x7C9),
        idle_poll: Duration::from_micros(idle_poll_us.max(1)),
    };
    let handle = std::thread::Builder::new()
        .name("nmad-tcp".into())
        .spawn(move || worker.run())?;
    Ok(Endpoint {
        fabric: Fabric::Serial(shared),
        workers: vec![handle],
        conns,
        reactor: None,
    })
}

/// Build the sharded pipeline: scheduler + one TX and one RX thread per
/// rail.
fn build_parallel(
    config: &TcpConfig,
    cfg_engine: EngineConfig,
    streams: Vec<TcpStream>,
) -> std::io::Result<Endpoint> {
    let record_capacity = cfg_engine.record_capacity;
    let mut engine = Engine::new(cfg_engine, config.platform.rails.clone(), vec![]);
    let mut conns = Vec::new();
    for _ in 0..config.conns.max(1) {
        conns.push(engine.conn_open());
    }
    let (hub, senders, receivers) = ParallelHub::new(engine);
    let epoch = Instant::now();
    let mut workers = Vec::with_capacity(2 * streams.len() + 1);
    for (rail, (stream, outbox)) in streams.into_iter().zip(receivers).enumerate() {
        stream.set_nodelay(true)?;
        // Blocking sockets with timeouts: the flag and the timeouts are
        // shared by both clones (same open socket), which is exactly
        // what the split TX/RX threads want.
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let tx_stream = stream.try_clone()?;
        let tx = TxWorker {
            hub: hub.clone(),
            rail,
            stream: tx_stream,
            outbox,
            epoch,
            shard: FlightRecorder::with_capacity(record_capacity),
            chaos: config.chaos.clone(),
            rng: Xoshiro256StarStar::new(0x7C9 ^ (rail as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            link_bandwidth: config.platform.rails[rail].link_bandwidth,
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("nmad-tcp-tx{rail}"))
                .spawn(move || tx.run())?,
        );
        let rx = RxWorker {
            hub: hub.clone(),
            rail,
            stream,
            epoch,
            shard: FlightRecorder::with_capacity(record_capacity),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("nmad-tcp-rx{rail}"))
                .spawn(move || rx.run())?,
        );
    }
    // Scheduler last: joined after the I/O workers so it drains their
    // final completions before quiescing.
    let sched_hub = hub.clone();
    workers.push(
        std::thread::Builder::new()
            .name("nmad-tcp-sched".into())
            .spawn(move || sched_hub.run_scheduler(senders, epoch))?,
    );
    Ok(Endpoint {
        fabric: Fabric::Parallel(hub),
        workers,
        conns,
        reactor: None,
    })
}

/// Build the reactor runtime: every rail socket registered with the
/// fixed epoll worker pool, completions flowing through the same
/// [`ParallelHub`] scheduler as the thread-per-rail pipeline (which is
/// why the app-facing API — waits, stats, backpressure — is identical).
fn build_reactor(
    config: &TcpConfig,
    mut cfg_engine: EngineConfig,
    streams: Vec<TcpStream>,
) -> std::io::Result<Endpoint> {
    // The hub's sharded queues are the completion plumbing either way;
    // `parallel` also routes the engine's lock-discipline asserts.
    cfg_engine.parallel = true;
    let threads = reactor::worker_count(cfg_engine.reactor_threads);
    let mut engine = Engine::new(cfg_engine, config.platform.rails.clone(), vec![]);
    let mut conns = Vec::new();
    for _ in 0..config.conns.max(1) {
        conns.push(engine.conn_open());
    }
    let (hub, mut senders, receivers) = ParallelHub::new(engine);
    let pool = reactor::ReactorPool::new(threads, nmad_core::SharedPool::new(256))?;
    for (rail, (stream, outbox)) in streams.into_iter().zip(receivers).enumerate() {
        let waker = pool.add_rail(stream, rail, hub.clone(), outbox, config.chaos.clone())?;
        // Publishing TX work must wake the epoll worker that owns this
        // rail's socket, not just the (unused) outbox condvar.
        senders[rail].set_wake_hook(Arc::new(move || waker.wake()));
    }
    let telemetry = pool.handle();
    hub.set_reactor_source(Box::new(move || telemetry.snapshot()));
    let epoch = Instant::now();
    let sched_hub = hub.clone();
    let sched = std::thread::Builder::new()
        .name("nmad-tcp-sched".into())
        .spawn(move || sched_hub.run_scheduler(senders, epoch))?;
    Ok(Endpoint {
        fabric: Fabric::Parallel(hub),
        workers: vec![sched],
        conns,
        reactor: Some(pool),
    })
}

/// Listen for a peer: binds one listener per rail on `127.0.0.1:0` and
/// returns the addresses to hand to [`connect`], plus a closure-ish
/// acceptor to finish the handshake.
pub struct PendingListen {
    config: TcpConfig,
    listeners: Vec<TcpListener>,
    addrs: Vec<SocketAddr>,
}

impl PendingListen {
    /// The addresses (one per rail) the peer must connect to, in order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Accept one connection per rail and build the endpoint.
    pub fn accept(self) -> std::io::Result<Endpoint> {
        let mut streams = Vec::with_capacity(self.listeners.len());
        for l in &self.listeners {
            let (s, _) = l.accept()?;
            streams.push(s);
        }
        build_endpoint(&self.config, streams)
    }
}

/// Start listening (server side).
pub fn listen(config: TcpConfig) -> std::io::Result<PendingListen> {
    let n = config.platform.rail_count();
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok(PendingListen {
        config,
        listeners,
        addrs,
    })
}

/// Connect to a listening peer (client side): one address per rail, in the
/// exact order published by [`PendingListen::addrs`].
pub fn connect(config: TcpConfig, addrs: &[SocketAddr]) -> std::io::Result<Endpoint> {
    assert_eq!(
        addrs.len(),
        config.platform.rail_count(),
        "one address per rail"
    );
    let mut streams = Vec::with_capacity(addrs.len());
    for a in addrs {
        streams.push(TcpStream::connect(a)?);
    }
    build_endpoint(&config, streams)
}

/// Convenience: a connected pair within one process over localhost.
pub fn pair_localhost(config: TcpConfig) -> std::io::Result<(Endpoint, Endpoint)> {
    let pending = listen(config.clone())?;
    let addrs = pending.addrs().to_vec();
    let cfg = config;
    let client = std::thread::spawn(move || connect(cfg, &addrs));
    let server = pending.accept()?;
    let client = client.join().expect("connect thread")?;
    Ok((server, client))
}

#[cfg(test)]
impl SendHandle {
    /// Test hook: merged events via the handle's fabric reference (lets
    /// tests inspect shards after the endpoint itself was dropped).
    fn fabric_events(&self) -> Vec<nmad_core::Event> {
        match &self.fabric {
            Fabric::Serial(s) => s.engine.lock().recorder().events(),
            Fabric::Parallel(h) => h.merged_events(),
        }
    }
}

#[cfg(test)]
impl RecvHandle {
    fn fabric_events(&self) -> Vec<nmad_core::Event> {
        match &self.fabric {
            Fabric::Serial(s) => s.engine.lock().recorder().events(),
            Fabric::Parallel(h) => h.merged_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;
    use nmad_sim::Xoshiro256StarStar;

    const T: Duration = Duration::from_secs(20);

    fn fabric(kind: StrategyKind) -> (Endpoint, Endpoint) {
        pair_localhost(TcpConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
        ))
        .expect("localhost pair")
    }

    fn fabric_parallel(kind: StrategyKind) -> (Endpoint, Endpoint) {
        let mut engine = EngineConfig::with_strategy(kind);
        engine.parallel = true;
        pair_localhost(TcpConfig::new(platform::paper_platform(), engine)).expect("localhost pair")
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn small_message_over_real_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(512, 1);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        assert_eq!(b.rx_errors(), 0);
        assert_eq!(a.io_errors(), 0);
    }

    #[test]
    fn large_message_striped_over_two_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(3 << 20, 2);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(st.rdv_handshakes >= 1);
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "large message must stripe across both sockets: {:?}",
            st.rails
        );
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = fabric(StrategyKind::Greedy);
        let c = a.conns()[0];
        let pa = random(100_000, 3);
        let pb = random(120_000, 4);
        let ra = a.recv(c);
        let rb = b.recv(c);
        let sa = a.send(c, vec![Bytes::from(pa.clone())]);
        let sb = b.send(c, vec![Bytes::from(pb.clone())]);
        assert!(sa.wait(T) && sb.wait(T));
        assert_eq!(rb.wait(T).unwrap().segments[0].as_ref(), pa.as_slice());
        assert_eq!(ra.wait(T).unwrap().segments[0].as_ref(), pb.as_slice());
    }

    #[test]
    fn many_pipelined_messages_in_order() {
        let (a, b) = fabric(StrategyKind::AggregateEager);
        let c = a.conns()[0];
        let n = 40;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        for i in 0..n {
            a.send(c, vec![Bytes::from(random(32 + i * 7, i as u64))]);
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random(32 + i * 7, i as u64).as_slice(),
                "message {i}"
            );
        }
    }

    #[test]
    fn multi_segment_message_over_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let segs: Vec<Bytes> = vec![
            Bytes::from(random(10, 9)),
            Bytes::from(random(50_000, 10)),
            Bytes::from(random(150_000, 11)),
        ];
        let r = b.recv(c);
        let s = a.send(c, segs.clone());
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments, segs);
    }

    #[test]
    fn acked_delivery_over_sockets() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.acked = true;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];
        let payload = random(200_000, 21);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait_acked(T), "ack must arrive");
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        // TCP does not lose frames: the adaptive timers must not have
        // fired spuriously on a healthy fabric.
        assert_eq!(a.stats().retransmits, 0);
    }

    /// The chaos drop boost makes even a reliable TCP wire lossy; acked
    /// mode recovers through the engine's own retransmission, and
    /// healing the dials returns the fabric to zero-loss behaviour.
    #[test]
    fn chaos_drop_boost_recovered_by_retransmission() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.acked = true;
        engine.health.initial_rto_ns = 20_000_000;
        engine.health.min_rto_ns = 5_000_000;
        let chaos = ChaosState::new(2);
        let mut cfg = TcpConfig::new(platform::paper_platform(), engine);
        cfg.chaos = Some(chaos.clone());
        let (a, b) = pair_localhost(cfg).expect("localhost pair");
        let c = a.conns()[0];
        chaos.set_drop_boost(0, 0.5);
        chaos.set_drop_boost(1, 0.5);
        let n = 8;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        let sends: Vec<SendHandle> = (0..n)
            .map(|i| a.send(c, vec![Bytes::from(random(400 + i * 31, i as u64))]))
            .collect();
        for (i, s) in sends.iter().enumerate() {
            assert!(s.wait_acked(T), "message {i} never recovered");
        }
        for r in recvs {
            assert!(r.wait(T).is_some());
        }
        assert!(
            a.stats().retransmits > 0,
            "a 50% drop boost must force retries"
        );
        chaos.heal_all();
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random(4096, 99))]);
        assert!(s.wait_acked(T));
        assert!(r.wait(T).is_some());
    }

    #[test]
    fn explicit_listen_connect_flow() {
        let cfg = TcpConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
        );
        let pending = listen(cfg.clone()).unwrap();
        let addrs = pending.addrs().to_vec();
        assert_eq!(addrs.len(), 2, "one socket per rail");
        let client = std::thread::spawn(move || connect(cfg, &addrs).unwrap());
        let server = pending.accept().unwrap();
        let client = client.join().unwrap();
        let c = server.conns()[0];
        let r = client.recv(c);
        server.send(c, vec![Bytes::from_static(b"over real tcp")]);
        assert_eq!(&r.wait(T).unwrap().segments[0][..], b"over real tcp");
    }

    /// Satellite regression: a send submitted while the progress thread
    /// is mid idle-poll must be picked up via the work-signal kick, not
    /// after sleeping out the poll. The bound is generous for CI noise —
    /// the point is that it holds even if the idle wait is ever made
    /// much longer than the kick-less sleep used to be.
    #[test]
    fn submit_during_idle_poll_wakes_worker_promptly() {
        let (a, b) = fabric(StrategyKind::Greedy);
        let c = a.conns()[0];
        // Let both progress threads drain startup traffic and go idle.
        std::thread::sleep(Duration::from_millis(30));
        let r = b.recv(c);
        let t0 = Instant::now();
        let s = a.send(c, vec![Bytes::from_static(b"wake up")]);
        assert!(s.wait(Duration::from_millis(500)), "send never completed");
        assert!(r.wait(Duration::from_millis(500)).is_some());
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "idle submission took {:?} — wakeup lost?",
            t0.elapsed()
        );
    }

    // ------------------------------------------------------------------
    // Parallel pipeline over real sockets
    // ------------------------------------------------------------------

    #[test]
    fn parallel_small_message() {
        let (a, b) = fabric_parallel(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(512, 31);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        assert_eq!(b.rx_errors(), 0);
        assert_eq!(a.io_errors(), 0);
    }

    #[test]
    fn parallel_large_message_striped_over_two_sockets() {
        let (a, b) = fabric_parallel(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(3 << 20, 32);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "large message must stripe across both sockets: {:?}",
            st.rails
        );
        // The scheduler's short critical sections were measured.
        assert!(st.obs.lock_hold_ns.count() > 0);
        assert!(st.obs.outbox_depth.count() > 0);
    }

    #[test]
    fn parallel_bidirectional_traffic() {
        let (a, b) = fabric_parallel(StrategyKind::Greedy);
        let c = a.conns()[0];
        let pa = random(100_000, 33);
        let pb = random(120_000, 34);
        let ra = a.recv(c);
        let rb = b.recv(c);
        let sa = a.send(c, vec![Bytes::from(pa.clone())]);
        let sb = b.send(c, vec![Bytes::from(pb.clone())]);
        assert!(sa.wait(T) && sb.wait(T));
        assert_eq!(rb.wait(T).unwrap().segments[0].as_ref(), pa.as_slice());
        assert_eq!(ra.wait(T).unwrap().segments[0].as_ref(), pb.as_slice());
    }

    #[test]
    fn parallel_many_pipelined_messages_in_order() {
        let (a, b) = fabric_parallel(StrategyKind::AggregateEager);
        let c = a.conns()[0];
        let n = 40;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        for i in 0..n {
            a.send(c, vec![Bytes::from(random(32 + i * 7, 100 + i as u64))]);
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random(32 + i * 7, 100 + i as u64).as_slice(),
                "message {i}"
            );
        }
    }

    #[test]
    fn parallel_acked_delivery() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.acked = true;
        engine.parallel = true;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];
        let payload = random(200_000, 41);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait_acked(T), "ack must arrive");
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        assert_eq!(a.stats().retransmits, 0);
    }

    /// Worker shards reach the merged event stream: `WorkerWrite` on the
    /// sender, `WorkerRx` on the receiver, alongside the engine's own
    /// lifecycle events.
    #[test]
    fn parallel_worker_shards_merged_into_events() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
        engine.parallel = true;
        engine.record_capacity = 4096;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];
        let payload = random(1 << 20, 42);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload)]);
        assert!(s.wait(T));
        assert!(r.wait(T).is_some());
        // Shards are deposited at worker exit: shut the endpoints down
        // first, then inspect. `drop` joins; read events via clones of
        // the fabric before dropping is not possible, so rebuild from
        // the endpoint by shutting down in-place: simplest is to drop B
        // and read A after its workers exited. Both endpoints' fabrics
        // survive in the handles' Arcs, so take events after drop via a
        // leaked handle.
        let sh = a.send(c, vec![Bytes::from_static(b"tail")]); // keep a fabric ref
        let rh = b.recv(c);
        let _ = sh.wait(T);
        let _ = rh.wait(T);
        drop(a);
        drop(b);
        let tx_events = sh.fabric_events();
        let rx_events = rh.fabric_events();
        assert!(
            tx_events.iter().any(|e| e.kind == EventKind::WorkerWrite),
            "sender shard missing WorkerWrite events"
        );
        assert!(
            tx_events.iter().any(|e| e.kind == EventKind::TxPost),
            "engine ring missing from merge"
        );
        assert!(
            rx_events.iter().any(|e| e.kind == EventKind::WorkerRx),
            "receiver shard missing WorkerRx events"
        );
        // Merged stream is timestamp-ordered.
        assert!(tx_events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    // ------------------------------------------------------------------
    // Reactor transport over real sockets
    // ------------------------------------------------------------------

    fn fabric_reactor(kind: StrategyKind) -> (Endpoint, Endpoint) {
        let mut engine = EngineConfig::with_strategy(kind);
        engine.reactor = true;
        pair_localhost(TcpConfig::new(platform::paper_platform(), engine)).expect("localhost pair")
    }

    #[test]
    fn reactor_small_message() {
        let (a, b) = fabric_reactor(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(512, 51);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        assert_eq!(b.rx_errors(), 0);
        assert_eq!(a.io_errors(), 0);
    }

    #[test]
    fn reactor_large_message_striped_over_two_sockets() {
        let (a, b) = fabric_reactor(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(3 << 20, 52);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "large message must stripe across both sockets: {:?}",
            st.rails
        );
    }

    #[test]
    fn reactor_many_pipelined_messages_in_order() {
        let (a, b) = fabric_reactor(StrategyKind::AggregateEager);
        let c = a.conns()[0];
        let n = 40;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        for i in 0..n {
            a.send(c, vec![Bytes::from(random(32 + i * 7, 200 + i as u64))]);
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random(32 + i * 7, 200 + i as u64).as_slice(),
                "message {i}"
            );
        }
    }

    #[test]
    fn reactor_bidirectional_traffic() {
        let (a, b) = fabric_reactor(StrategyKind::Greedy);
        let c = a.conns()[0];
        let pa = random(100_000, 53);
        let pb = random(120_000, 54);
        let ra = a.recv(c);
        let rb = b.recv(c);
        let sa = a.send(c, vec![Bytes::from(pa.clone())]);
        let sb = b.send(c, vec![Bytes::from(pb.clone())]);
        assert!(sa.wait(T) && sb.wait(T));
        assert_eq!(rb.wait(T).unwrap().segments[0].as_ref(), pa.as_slice());
        assert_eq!(ra.wait(T).unwrap().segments[0].as_ref(), pb.as_slice());
    }

    /// Reactor telemetry reaches `EngineStats`: workers sized per
    /// config, poll loop ran, and both rails were registered with the
    /// event loop (conns gauge). Zero-alloc gate: the rail RX pump never
    /// outgrew its pre-allocated buffer on this small exchange.
    #[test]
    fn reactor_telemetry_populated() {
        let (a, b) = fabric_reactor(StrategyKind::Greedy);
        let c = a.conns()[0];
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random(64_000, 55))]);
        assert!(s.wait(T));
        assert!(r.wait(T).is_some());
        let rs = a.reactor_stats().expect("reactor endpoint");
        assert_eq!(rs.workers as usize, reactor::worker_count(0));
        assert!(rs.polls > 0, "event loop never polled");
        assert!(rs.events > 0, "no readiness events observed");
        assert_eq!(rs.conns, 2, "both rail sockets registered");
        assert_eq!(rs.fd_shed, 0);
        assert_eq!(rs.hot_path_allocs, 0, "rail RX pump allocated");
        // The scheduler mirror also lands in EngineStats.
        let st = a.stats();
        assert_eq!(st.reactor.workers, rs.workers);
    }

    /// Satellite regression: with the reactor off, the serial and
    /// parallel runtimes carry no reactor state at all — telemetry stays
    /// zeroed and `reactor_stats()` is `None` (bit-identical paths).
    #[test]
    fn reactor_off_leaves_other_runtimes_untouched() {
        for (a, b) in [
            fabric(StrategyKind::Greedy),
            fabric_parallel(StrategyKind::Greedy),
        ] {
            let c = a.conns()[0];
            let r = b.recv(c);
            let s = a.send(c, vec![Bytes::from(random(4096, 56))]);
            assert!(s.wait(T));
            assert!(r.wait(T).is_some());
            assert!(a.reactor_stats().is_none());
            let st = a.stats();
            assert_eq!(st.reactor.workers, 0);
            assert_eq!(st.reactor.polls, 0);
            assert!(st.reactor.events_per_wake.is_empty());
        }
    }

    /// Satellite e2e: a full admission quota on the reactor TCP fabric
    /// surfaces as `SubmitError::WouldBlock` through `try_send`, and
    /// draining the inflight message re-admits the tenant.
    #[test]
    fn reactor_backpressure_wouldblock_and_readmit() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.reactor = true;
        engine.overload.max_tenant_inflight = 1;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];

        // Fill the quota, then a second submit must push back
        // immediately (the first cannot complete: no recv is posted
        // yet, so its completion cannot race the rejection).
        let payload = random(1 << 20, 57);
        let s1 = a.try_send(c, vec![Bytes::from(payload.clone())]).unwrap();
        match a.try_send(c, vec![Bytes::from_static(b"over quota")]) {
            Err(nmad_core::SubmitError::WouldBlock) => {}
            Err(e) => panic!("expected WouldBlock, got {e:?}"),
            Ok(_) => panic!("expected WouldBlock, got an admitted send"),
        }
        assert!(a.overload_stats().admission_rejections > 0);

        // Drain: deliver the inflight message, then the tenant is
        // re-admitted (poll briefly — completion credit is returned on
        // a scheduler pass after delivery).
        let r1 = b.recv(c);
        assert!(s1.wait(T));
        assert_eq!(r1.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        let deadline = Instant::now() + T;
        let s2 = loop {
            match a.try_send(c, vec![Bytes::from_static(b"after drain")]) {
                Ok(h) => break h,
                Err(nmad_core::SubmitError::WouldBlock) => {
                    assert!(Instant::now() < deadline, "tenant never re-admitted");
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("unexpected submit error: {e:?}"),
            }
        };
        let r2 = b.recv(c);
        assert!(s2.wait(T));
        assert_eq!(&r2.wait(T).unwrap().segments[0][..], b"after drain");
    }

    /// The serial idle-poll knob is honoured: an eccentric (long) idle
    /// poll still makes progress promptly thanks to the work-signal
    /// kick, and validation rejects a zero poll outright.
    #[test]
    fn serial_idle_poll_knob() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.serial_idle_poll_us = 5_000;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];
        std::thread::sleep(Duration::from_millis(20));
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from_static(b"knob")]);
        assert!(s.wait(Duration::from_secs(5)));
        assert!(r.wait(Duration::from_secs(5)).is_some());
    }

    mod batch_props {
        use super::super::{gather_batch_slices, LEN_PREFIX};
        use bytes::Bytes;
        use nmad_wire::{PacketFrame, PartList};
        use proptest::prelude::*;
        use std::io::IoSlice;

        /// Arbitrary scatter-gather frame: a head plus 0–4 body parts,
        /// any of which may be empty or a single byte (the awkward
        /// shapes the gather logic must skip or tail-slice correctly).
        fn arb_frame() -> impl Strategy<Value = PacketFrame> {
            (
                prop::collection::vec(any::<u8>(), 0..40),
                prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..4),
            )
                .prop_map(|(head, parts)| {
                    let mut list = PartList::new();
                    for p in parts {
                        list.push(Bytes::from(p));
                    }
                    PacketFrame::from_parts(Bytes::from(head), list)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The batched gather list, consumed under arbitrary partial
            /// writes and iovec caps, yields a byte stream identical to
            /// writing each frame separately (`prefix ++ frame` flattened
            /// in order) — the legacy one-frame-per-write image.
            #[test]
            fn batched_gather_matches_sequential_writes(
                frames in prop::collection::vec(arb_frame(), 1..6),
                writes in prop::collection::vec(1usize..48, 1..64),
                max_slices in 1usize..8,
            ) {
                let prefixes: Vec<[u8; LEN_PREFIX]> = frames
                    .iter()
                    .map(|f| (f.wire_len() as u32).to_le_bytes())
                    .collect();
                let total: usize =
                    frames.iter().map(|f| LEN_PREFIX + f.wire_len()).sum();

                // Reference: sequential single-frame writes.
                let mut expect = Vec::with_capacity(total);
                for (p, f) in prefixes.iter().zip(&frames) {
                    expect.extend_from_slice(p);
                    expect.extend_from_slice(&f.to_bytes());
                }

                // Batched path: each simulated `write_vectored` consumes
                // `n` bytes of the gather list rebuilt at the current
                // offset, exactly like `write_batch`'s resume loop.
                let mut got = Vec::with_capacity(total);
                let mut off = 0usize;
                let mut slices: Vec<IoSlice> = Vec::new();
                let mut wi = 0usize;
                while off < total {
                    gather_batch_slices(&prefixes, &frames, off, &mut slices, max_slices);
                    prop_assert!(!slices.is_empty(), "empty gather list before end of batch");
                    let avail: usize = slices.iter().map(|s| s.len()).sum();
                    let n = writes[wi % writes.len()].min(avail);
                    wi += 1;
                    let mut left = n;
                    for s in &slices {
                        if left == 0 {
                            break;
                        }
                        let take = left.min(s.len());
                        got.extend_from_slice(&s[..take]);
                        left -= take;
                    }
                    off += n;
                }
                prop_assert_eq!(got, expect);
            }

            /// With no iovec cap, one gather list covers the whole batch
            /// remainder from any offset — i.e. an unconstrained kernel
            /// could finish the batch in a single syscall.
            #[test]
            fn uncapped_gather_covers_remainder(
                frames in prop::collection::vec(arb_frame(), 1..6),
                off_frac in 0.0f64..1.0,
            ) {
                let prefixes: Vec<[u8; LEN_PREFIX]> = frames
                    .iter()
                    .map(|f| (f.wire_len() as u32).to_le_bytes())
                    .collect();
                let total: usize =
                    frames.iter().map(|f| LEN_PREFIX + f.wire_len()).sum();
                let off = ((total as f64) * off_frac) as usize;
                prop_assume!(off < total);
                let mut slices: Vec<IoSlice> = Vec::new();
                gather_batch_slices(&prefixes, &frames, off, &mut slices, usize::MAX);
                let avail: usize = slices.iter().map(|s| s.len()).sum();
                prop_assert_eq!(avail, total - off);
            }
        }
    }
}
