//! # nmad-transport-tcp — the engine over real TCP sockets
//!
//! Paper §2 lists the library's drivers: Elan, MX, GM-2, SiSCI "and the
//! legacy socket API on top of TCP/IP". The exotic NICs are simulated in
//! this reproduction — but the socket driver can be implemented for real.
//! This crate runs the unmodified NewMadeleine engine over one TCP
//! connection per rail:
//!
//! * packets are framed with a `u32` little-endian length prefix and carry
//!   the exact same wire format as every other harness;
//! * a progress thread per endpoint plays the NIC-activity loop with
//!   non-blocking sockets: it drains arrivals, flushes pending injections
//!   and offers idle rails to the engine;
//! * endpoints can live in the same process ([`pair_localhost`]) or in
//!   different processes ([`listen`] / [`connect`]).
//!
//! Multiple TCP connections between the same two hosts are the classic
//! poor man's multi-rail: the strategies still apply (striping a large
//! message over N sockets, aggregating small ones onto the first).
//!
//! The datapath is scatter-gather end to end: transmissions go out with
//! `write_vectored` straight from the engine's [`PacketFrame`] parts (no
//! flattening), and arrivals are carved out of a `BytesMut` receive ring
//! with `split_to`, handing each frame to [`nmad_core::Engine::on_frame`]
//! as one refcounted slice.

#![warn(missing_docs)]
// Copy-regression gate: see DESIGN.md "Datapath and copy discipline".
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use nmad_core::engine::Engine;
use nmad_core::request::{RecvId, SendId};
use nmad_core::EngineConfig;
use nmad_model::{Platform, RailId};
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::{ConnId, PacketFrame};
use parking_lot::{Condvar, Mutex};

/// Frame length prefix size.
const LEN_PREFIX: usize = 4;
/// Largest accepted frame (sanity bound against corrupt prefixes).
const MAX_FRAME: usize = 64 << 20;

/// Transport configuration.
#[derive(Clone)]
pub struct TcpConfig {
    /// Rail layout (one TCP connection per rail; the model's thresholds
    /// drive the strategies exactly as on the simulated platform).
    pub platform: Platform,
    /// Engine configuration. CRC is forced on.
    pub engine: EngineConfig,
    /// Logical channels opened at construction on both endpoints.
    pub conns: usize,
}

impl TcpConfig {
    /// Default configuration.
    pub fn new(platform: Platform, engine: EngineConfig) -> Self {
        TcpConfig {
            platform,
            engine,
            conns: 1,
        }
    }
}

struct Shared {
    engine: Mutex<Engine>,
    cv: Condvar,
    shutdown: AtomicBool,
    rx_errors: AtomicU64,
    io_errors: AtomicU64,
}

/// One endpoint of the TCP fabric.
pub struct Endpoint {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    conns: Vec<ConnId>,
}

/// Handle to a send in flight.
pub struct SendHandle {
    shared: Arc<Shared>,
    id: SendId,
}

/// Handle to a posted receive.
pub struct RecvHandle {
    shared: Arc<Shared>,
    id: RecvId,
}

impl SendHandle {
    /// Block until local completion or timeout.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut eng = self.shared.engine.lock();
        loop {
            if eng.send_complete(self.id) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared.cv.wait_for(&mut eng, deadline - now);
        }
    }

    /// Block until the *peer confirms delivery* (requires
    /// `EngineConfig::acked` on both endpoints), or `timeout` expires.
    pub fn wait_acked(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut eng = self.shared.engine.lock();
        loop {
            if eng.send_acked(self.id) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.shared.cv.wait_for(&mut eng, deadline - now);
        }
    }

    /// Re-enqueue the message for transmission (acked mode). Normally the
    /// engine's own adaptive timers handle this from the progress thread;
    /// the manual hook remains for tests. See
    /// [`nmad_core::Engine::retransmit`].
    pub fn retransmit(&self) -> bool {
        self.shared.engine.lock().retransmit(self.id)
    }
}

impl RecvHandle {
    /// Block until the message arrives or timeout.
    pub fn wait(&self, timeout: Duration) -> Option<MessageAssembly> {
        let deadline = Instant::now() + timeout;
        let mut eng = self.shared.engine.lock();
        loop {
            if let Some(msg) = eng.try_recv(self.id) {
                return Some(msg);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared.cv.wait_for(&mut eng, deadline - now);
        }
    }
}

impl Endpoint {
    /// Logical channels opened at construction.
    pub fn conns(&self) -> &[ConnId] {
        &self.conns
    }

    /// Submit a non-blocking send.
    pub fn send(&self, conn: ConnId, segments: Vec<Bytes>) -> SendHandle {
        let id = self.shared.engine.lock().submit_send(conn, segments);
        SendHandle {
            shared: self.shared.clone(),
            id,
        }
    }

    /// Post a non-blocking receive.
    pub fn recv(&self, conn: ConnId) -> RecvHandle {
        let id = self.shared.engine.lock().post_recv(conn);
        RecvHandle {
            shared: self.shared.clone(),
            id,
        }
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> nmad_core::EngineStats {
        self.shared.engine.lock().stats().clone()
    }

    /// Packets rejected on receive (decode/CRC/reassembly errors).
    pub fn rx_errors(&self) -> u64 {
        self.shared.rx_errors.load(Ordering::Relaxed)
    }

    /// Socket-level I/O errors observed by the worker.
    pub fn io_errors(&self) -> u64 {
        self.shared.io_errors.load(Ordering::Relaxed)
    }

    /// Timer and dwell-time telemetry of one rail (SRTT/RTTVAR/RTO and
    /// per-state dwell times, as of the engine clock).
    pub fn rail_telemetry(&self, rail: usize) -> nmad_core::RailTelemetry {
        self.shared.engine.lock().rail_telemetry(rail)
    }

    /// Snapshot of the engine's flight-recorder ring, oldest first.
    /// Empty unless the endpoint was built with a nonzero
    /// `EngineConfig::record_capacity`.
    pub fn events(&self) -> Vec<nmad_core::Event> {
        self.shared.engine.lock().recorder().events()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// Per-rail socket state: partial reads and pending vectored writes.
struct RailIo {
    stream: TcpStream,
    /// Receive ring: bytes read but not yet framed. Complete frames are
    /// `split_to` off the front and frozen into refcounted [`PacketFrame`]s
    /// — the payload is never copied again after leaving the socket.
    rx_buf: BytesMut,
    /// Frame pending injection, written gather-style part by part.
    tx_frame: Option<PacketFrame>,
    /// Little-endian length prefix for `tx_frame`.
    tx_prefix: [u8; LEN_PREFIX],
    /// Bytes of `prefix + frame` already accepted by the socket.
    tx_off: usize,
    /// Tx token to report once the pending frame fully drains.
    pending_token: Option<nmad_core::driver::TxToken>,
}

impl RailIo {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(RailIo {
            stream,
            rx_buf: BytesMut::new(),
            tx_frame: None,
            tx_prefix: [0; LEN_PREFIX],
            tx_off: 0,
            pending_token: None,
        })
    }

    /// Pull whatever the socket has; return complete frames.
    fn drain_rx(&mut self) -> std::io::Result<Vec<PacketFrame>> {
        const READ_CHUNK: usize = 64 * 1024;
        loop {
            // Read straight into the ring's tail — no bounce buffer.
            let old = self.rx_buf.len();
            self.rx_buf.resize(old + READ_CHUNK, 0);
            match self.stream.read(&mut self.rx_buf[old..]) {
                Ok(0) => {
                    self.rx_buf.truncate(old);
                    break; // peer closed; frames already buffered still count
                }
                Ok(n) => self.rx_buf.truncate(old + n),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.rx_buf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {
                    self.rx_buf.truncate(old);
                    continue;
                }
                Err(e) => {
                    self.rx_buf.truncate(old);
                    return Err(e);
                }
            }
        }
        let mut frames = Vec::new();
        while self.rx_buf.len() >= LEN_PREFIX {
            let len =
                u32::from_le_bytes(self.rx_buf[..LEN_PREFIX].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame length {len} exceeds bound"),
                ));
            }
            if self.rx_buf.len() - LEN_PREFIX < len {
                break;
            }
            let _prefix = self.rx_buf.split_to(LEN_PREFIX);
            let wire = self.rx_buf.split_to(len).freeze();
            frames.push(PacketFrame::from_wire(wire));
        }
        Ok(frames)
    }

    /// Queue a frame for transmission. The parts are shared with the
    /// engine's in-flight state (refcounted), not copied into a staging
    /// buffer.
    fn enqueue(&mut self, frame: PacketFrame, token: nmad_core::driver::TxToken) {
        debug_assert!(self.pending_token.is_none(), "one injection at a time");
        self.tx_prefix = (frame.wire_len() as u32).to_le_bytes();
        self.tx_off = 0;
        self.tx_frame = Some(frame);
        self.pending_token = Some(token);
    }

    /// Push the pending frame with gather writes; return the token once
    /// everything drained. `tx_off` tracks partial progress across the
    /// prefix and the frame parts between calls.
    fn flush(&mut self) -> std::io::Result<Option<nmad_core::driver::TxToken>> {
        loop {
            let Some(frame) = &self.tx_frame else {
                return Ok(self.pending_token.take());
            };
            let total = LEN_PREFIX + frame.wire_len();
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(1 + frame.num_parts());
            let mut skip = self.tx_off;
            if skip < LEN_PREFIX {
                slices.push(IoSlice::new(&self.tx_prefix[skip..]));
                skip = 0;
            } else {
                skip -= LEN_PREFIX;
            }
            for part in frame.parts() {
                if skip >= part.len() {
                    skip -= part.len();
                    continue;
                }
                slices.push(IoSlice::new(&part[skip..]));
                skip = 0;
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket refused bytes",
                    ))
                }
                Ok(n) => {
                    self.tx_off += n;
                    if self.tx_off >= total {
                        self.tx_frame = None;
                        self.tx_off = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn idle(&self) -> bool {
        self.pending_token.is_none()
    }
}

struct Worker {
    shared: Arc<Shared>,
    rails: Vec<RailIo>,
    /// Epoch for the engine's monotonic clock (timeouts, probes).
    start: Instant,
}

impl Worker {
    fn run(mut self) {
        loop {
            let progressed = match self.step() {
                Ok(p) => p,
                Err(_) => {
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                    false
                }
            };
            self.shared.cv.notify_all();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    fn step(&mut self) -> std::io::Result<bool> {
        let mut progressed = false;
        let mut eng = self.shared.engine.lock();

        // 0. Run the engine's timer wheel: adaptive retransmission of
        // overdue acked sends, health probes, failover re-planning.
        let now_ns = Instant::now()
            .saturating_duration_since(self.start)
            .as_nanos() as u64;
        let outcome = eng.progress(now_ns);
        if !outcome.retransmitted.is_empty() || outcome.control_enqueued {
            progressed = true;
        }

        for rail in 0..self.rails.len() {
            // 1. Arrivals.
            for frame in self.rails[rail].drain_rx()? {
                progressed = true;
                if eng.on_frame(RailId(rail), &frame).is_err() {
                    self.shared.rx_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            // 2. Finish pending injections.
            if let Some(token) = self.rails[rail].flush()? {
                progressed = true;
                eng.on_tx_done(RailId(rail), token)
                    .expect("token issued by this worker");
            }
            // 3. Offer idle rails to the engine.
            if self.rails[rail].idle() {
                if let Some(d) = eng
                    .next_tx(RailId(rail))
                    .expect("engine invariant violated")
                {
                    progressed = true;
                    self.rails[rail].enqueue(d.frame, d.token);
                    // Try to push it out immediately.
                    if let Some(token) = self.rails[rail].flush()? {
                        eng.on_tx_done(RailId(rail), token)
                            .expect("token issued by this worker");
                    }
                }
            }
        }
        Ok(progressed)
    }
}

fn build_endpoint(config: &TcpConfig, streams: Vec<TcpStream>) -> std::io::Result<Endpoint> {
    let mut cfg_engine = config.engine.clone();
    cfg_engine.crc = true;
    let shared = Arc::new(Shared {
        engine: Mutex::new(Engine::new(
            cfg_engine,
            config.platform.rails.clone(),
            vec![],
        )),
        cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        rx_errors: AtomicU64::new(0),
        io_errors: AtomicU64::new(0),
    });
    let mut conns = Vec::new();
    for _ in 0..config.conns.max(1) {
        conns.push(shared.engine.lock().conn_open());
    }
    let rails = streams
        .into_iter()
        .map(RailIo::new)
        .collect::<std::io::Result<Vec<_>>>()?;
    let worker = Worker {
        shared: shared.clone(),
        rails,
        start: Instant::now(),
    };
    let handle = std::thread::Builder::new()
        .name("nmad-tcp".into())
        .spawn(move || worker.run())?;
    Ok(Endpoint {
        shared,
        worker: Some(handle),
        conns,
    })
}

/// Listen for a peer: binds one listener per rail on `127.0.0.1:0` and
/// returns the addresses to hand to [`connect`], plus a closure-ish
/// acceptor to finish the handshake.
pub struct PendingListen {
    config: TcpConfig,
    listeners: Vec<TcpListener>,
    addrs: Vec<SocketAddr>,
}

impl PendingListen {
    /// The addresses (one per rail) the peer must connect to, in order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Accept one connection per rail and build the endpoint.
    pub fn accept(self) -> std::io::Result<Endpoint> {
        let mut streams = Vec::with_capacity(self.listeners.len());
        for l in &self.listeners {
            let (s, _) = l.accept()?;
            streams.push(s);
        }
        build_endpoint(&self.config, streams)
    }
}

/// Start listening (server side).
pub fn listen(config: TcpConfig) -> std::io::Result<PendingListen> {
    let n = config.platform.rail_count();
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    Ok(PendingListen {
        config,
        listeners,
        addrs,
    })
}

/// Connect to a listening peer (client side): one address per rail, in the
/// exact order published by [`PendingListen::addrs`].
pub fn connect(config: TcpConfig, addrs: &[SocketAddr]) -> std::io::Result<Endpoint> {
    assert_eq!(
        addrs.len(),
        config.platform.rail_count(),
        "one address per rail"
    );
    let mut streams = Vec::with_capacity(addrs.len());
    for a in addrs {
        streams.push(TcpStream::connect(a)?);
    }
    build_endpoint(&config, streams)
}

/// Convenience: a connected pair within one process over localhost.
pub fn pair_localhost(config: TcpConfig) -> std::io::Result<(Endpoint, Endpoint)> {
    let pending = listen(config.clone())?;
    let addrs = pending.addrs().to_vec();
    let cfg = config;
    let client = std::thread::spawn(move || connect(cfg, &addrs));
    let server = pending.accept()?;
    let client = client.join().expect("connect thread")?;
    Ok((server, client))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;
    use nmad_sim::Xoshiro256StarStar;

    const T: Duration = Duration::from_secs(20);

    fn fabric(kind: StrategyKind) -> (Endpoint, Endpoint) {
        pair_localhost(TcpConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
        ))
        .expect("localhost pair")
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn small_message_over_real_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(512, 1);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        assert_eq!(b.rx_errors(), 0);
        assert_eq!(a.io_errors(), 0);
    }

    #[test]
    fn large_message_striped_over_two_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random(3 << 20, 2);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(st.rdv_handshakes >= 1);
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "large message must stripe across both sockets: {:?}",
            st.rails
        );
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = fabric(StrategyKind::Greedy);
        let c = a.conns()[0];
        let pa = random(100_000, 3);
        let pb = random(120_000, 4);
        let ra = a.recv(c);
        let rb = b.recv(c);
        let sa = a.send(c, vec![Bytes::from(pa.clone())]);
        let sb = b.send(c, vec![Bytes::from(pb.clone())]);
        assert!(sa.wait(T) && sb.wait(T));
        assert_eq!(rb.wait(T).unwrap().segments[0].as_ref(), pa.as_slice());
        assert_eq!(ra.wait(T).unwrap().segments[0].as_ref(), pb.as_slice());
    }

    #[test]
    fn many_pipelined_messages_in_order() {
        let (a, b) = fabric(StrategyKind::AggregateEager);
        let c = a.conns()[0];
        let n = 40;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        for i in 0..n {
            a.send(c, vec![Bytes::from(random(32 + i * 7, i as u64))]);
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random(32 + i * 7, i as u64).as_slice(),
                "message {i}"
            );
        }
    }

    #[test]
    fn multi_segment_message_over_sockets() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let segs: Vec<Bytes> = vec![
            Bytes::from(random(10, 9)),
            Bytes::from(random(50_000, 10)),
            Bytes::from(random(150_000, 11)),
        ];
        let r = b.recv(c);
        let s = a.send(c, segs.clone());
        assert!(s.wait(T));
        assert_eq!(r.wait(T).unwrap().segments, segs);
    }

    #[test]
    fn acked_delivery_over_sockets() {
        let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
        engine.acked = true;
        let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
        let c = a.conns()[0];
        let payload = random(200_000, 21);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait_acked(T), "ack must arrive");
        assert_eq!(r.wait(T).unwrap().segments[0].as_ref(), payload.as_slice());
        // TCP does not lose frames: the adaptive timers must not have
        // fired spuriously on a healthy fabric.
        assert_eq!(a.stats().retransmits, 0);
    }

    #[test]
    fn explicit_listen_connect_flow() {
        let cfg = TcpConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
        );
        let pending = listen(cfg.clone()).unwrap();
        let addrs = pending.addrs().to_vec();
        assert_eq!(addrs.len(), 2, "one socket per rail");
        let client = std::thread::spawn(move || connect(cfg, &addrs).unwrap());
        let server = pending.accept().unwrap();
        let client = client.join().unwrap();
        let c = server.conns()[0];
        let r = client.recv(c);
        server.send(c, vec![Bytes::from_static(b"over real tcp")]);
        assert_eq!(&r.wait(T).unwrap().segments[0][..], b"over real tcp");
    }
}
