//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers events
//! in non-decreasing time order and breaks ties by insertion sequence
//! (FIFO). Deterministic tie-breaking is what makes whole simulation runs —
//! and therefore every figure in EXPERIMENTS.md — bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One queued event: scheduled time, insertion sequence, payload.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with FIFO tie-breaking.
///
/// ```
/// use nmad_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// q.push(SimTime::from_ns(10), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` at `time`.
    ///
    /// Panics if `time` is earlier than the last popped event: scheduling
    /// into the past is always a logic error in a discrete-event simulation.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "event scheduled in the past: {time:?} < current {:?}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event — the simulation "now".
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(9), ());
    }

    #[test]
    fn same_time_as_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1);
        q.pop();
        q.push(SimTime::from_ns(10), 2);
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), 2)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let mut t = SimTime::ZERO;
        let mut popped = Vec::new();
        for round in 0..50u64 {
            q.push(t + SimDuration::from_ns(round + 1), round);
            if round % 3 == 0 {
                if let Some((pt, e)) = q.pop() {
                    t = pt;
                    popped.push(e);
                }
            }
        }
        while let Some((_, e)) = q.pop() {
            popped.push(e);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted, "events must pop in schedule order");
        assert_eq!(popped.len(), 50);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_ns(1), ());
        q.push(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
