//! Max-min fair fluid-flow model of a shared channel.
//!
//! The paper observes that balancing one 8 MB message over Myri-10G
//! (1200 MB/s) *and* Quadrics (850 MB/s) yields 1675 MB/s, not
//! 2050 MB/s, because both DMA engines drain through the same host I/O bus
//! ("theoretically able to support data transfers up to approximately
//! 2 GB/s"). [`FluidChannel`] reproduces that effect: each active transfer
//! is a *flow* with a per-flow rate cap (its NIC link rate); the channel
//! divides its total capacity across active flows with max-min fairness
//! (progressive filling), so a flow gets `min(own cap, fair share)` and
//! capacity unused by capped flows is redistributed to the others.
//!
//! The model is event-driven: whenever the flow set changes, rates are
//! recomputed and the channel's *epoch* advances. Callers schedule a
//! completion event for [`FluidChannel::next_completion`] and discard the
//! event if the epoch moved in the meantime (a standard fluid-DES pattern).

use crate::time::{SimDuration, SimTime};

/// Handle to an active flow. Slot indices are reused, so the generation
/// field protects against use-after-complete bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId {
    slot: usize,
    generation: u64,
}

#[derive(Clone, Debug)]
struct Flow {
    generation: u64,
    /// Bytes still to transfer (fractional to avoid integration drift).
    remaining: f64,
    /// Per-flow rate cap in bytes/second (e.g. the NIC link rate).
    cap: f64,
    /// Current allocated rate in bytes/second.
    rate: f64,
}

/// Remaining bytes below this are considered "done". Completion events are
/// scheduled with ceil-rounded times, so at the event instant the integrated
/// bytes can undershoot by at most one picosecond's worth of flow — about
/// 2e-3 bytes at 2 GB/s. A hundredth of a byte of slack absorbs that plus
/// float drift while staying far below any meaningful payload size.
const EPS_BYTES: f64 = 1e-2;

/// A shared channel with max-min fair sharing across active flows.
#[derive(Clone, Debug)]
pub struct FluidChannel {
    name: &'static str,
    capacity: f64,
    slots: Vec<Option<Flow>>,
    free_slots: Vec<usize>,
    next_generation: u64,
    last_update: SimTime,
    /// Bumped every time allocated rates change; used to invalidate stale
    /// scheduled completion events.
    epoch: u64,
    /// Total bytes fully delivered through the channel (accounting).
    delivered: f64,
}

impl FluidChannel {
    /// Create a channel with `capacity` bytes/second aggregate throughput.
    pub fn new(name: &'static str, capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "channel capacity must be positive and finite, got {capacity}"
        );
        FluidChannel {
            name,
            capacity,
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_generation: 0,
            last_update: SimTime::ZERO,
            epoch: 0,
            delivered: 0.0,
        }
    }

    /// Channel name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Aggregate capacity in bytes/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current epoch; advances whenever allocated rates change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total bytes fully delivered so far.
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered
    }

    /// Start a new flow of `bytes` with per-flow rate cap `cap` (bytes/s).
    ///
    /// Time must be monotonic across all mutating calls.
    pub fn add_flow(&mut self, now: SimTime, bytes: u64, cap: f64) -> FlowId {
        assert!(
            cap > 0.0 && cap.is_finite(),
            "flow cap must be positive and finite, got {cap}"
        );
        self.integrate_to(now);
        let generation = self.next_generation;
        self.next_generation += 1;
        let flow = Flow {
            generation,
            remaining: bytes as f64,
            cap,
            rate: 0.0,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = Some(flow);
                slot
            }
            None => {
                self.slots.push(Some(flow));
                self.slots.len() - 1
            }
        };
        self.recompute_rates();
        FlowId { slot, generation }
    }

    /// Integrate progress up to `now` without changing the flow set.
    pub fn advance(&mut self, now: SimTime) {
        self.integrate_to(now);
    }

    /// Bytes still pending on `id`, or `None` if the flow is gone.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flow(id).map(|f| f.remaining.max(0.0))
    }

    /// Current allocated rate of `id` in bytes/second.
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flow(id).map(|f| f.rate)
    }

    /// Earliest completion among active flows at current rates:
    /// `(flow, completion time, epoch)`.
    ///
    /// The returned epoch must be compared against [`Self::epoch`] when the
    /// scheduled event fires; a mismatch means rates changed and the event
    /// is stale.
    pub fn next_completion(&self) -> Option<(FlowId, SimTime, u64)> {
        let mut best: Option<(FlowId, SimDuration)> = None;
        for (slot, entry) in self.slots.iter().enumerate() {
            let Some(flow) = entry else { continue };
            debug_assert!(flow.rate > 0.0, "active flow with zero rate");
            let secs = (flow.remaining.max(0.0)) / flow.rate;
            let dur = SimDuration::from_secs_f64_ceil(secs).max(SimDuration::from_ps(1));
            let id = FlowId {
                slot,
                generation: flow.generation,
            };
            match best {
                Some((_, d)) if d <= dur => {}
                _ => best = Some((id, dur)),
            }
        }
        best.map(|(id, dur)| (id, self.last_update + dur, self.epoch))
    }

    /// Try to complete `id` at `now`. Returns `true` if the flow existed and
    /// its remaining bytes were (within tolerance) drained; the flow is then
    /// removed and rates are recomputed. Returns `false` if the flow is
    /// unknown (already completed) or not yet done (stale event).
    pub fn try_complete(&mut self, now: SimTime, id: FlowId) -> bool {
        self.integrate_to(now);
        let done = match self.flow(id) {
            Some(f) => f.remaining <= EPS_BYTES,
            None => return false,
        };
        if !done {
            return false;
        }
        self.slots[id.slot] = None;
        self.free_slots.push(id.slot);
        self.recompute_rates();
        true
    }

    /// Forcibly remove a flow (failure injection / cancellation), returning
    /// its remaining bytes if it existed.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.integrate_to(now);
        let flow = self.flow(id)?;
        let remaining = flow.remaining.max(0.0);
        // Cancelled bytes were still "delivered" up to the cancel point;
        // compensate the counter that integrate_to will no longer advance.
        self.slots[id.slot] = None;
        self.free_slots.push(id.slot);
        self.recompute_rates();
        Some(remaining)
    }

    /// Sum of currently allocated rates (must never exceed capacity).
    pub fn allocated_rate(&self) -> f64 {
        self.slots.iter().flatten().map(|f| f.rate).sum()
    }

    fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.slots
            .get(id.slot)?
            .as_ref()
            .filter(|f| f.generation == id.generation)
    }

    fn integrate_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "{}: time went backwards: {now:?} < {:?}",
            self.name,
            self.last_update
        );
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            for flow in self.slots.iter_mut().flatten() {
                let moved = (flow.rate * dt).min(flow.remaining);
                flow.remaining -= moved;
                self.delivered += moved;
            }
        }
        self.last_update = now;
    }

    /// Progressive-filling max-min fair allocation with per-flow caps.
    fn recompute_rates(&mut self) {
        let mut order: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        // Allocate the most-constrained flows first so spare capacity
        // cascades to the less-constrained ones.
        order.sort_by(|&a, &b| {
            let ca = self.slots[a].as_ref().unwrap().cap;
            let cb = self.slots[b].as_ref().unwrap().cap;
            ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
        });
        let mut left = self.capacity;
        let mut n_left = order.len();
        for slot in order {
            let fair = left / n_left as f64;
            let flow = self.slots[slot].as_mut().unwrap();
            flow.rate = flow.cap.min(fair);
            left -= flow.rate;
            n_left -= 1;
        }
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    fn channel() -> FluidChannel {
        FluidChannel::new("bus", 1850.0 * MB)
    }

    #[test]
    fn single_flow_runs_at_its_cap() {
        let mut ch = channel();
        let f = ch.add_flow(SimTime::ZERO, 1_000_000, 1200.0 * MB);
        assert!((ch.rate(f).unwrap() - 1200.0 * MB).abs() < 1.0);
        let (id, t, _) = ch.next_completion().unwrap();
        assert_eq!(id, f);
        // 1 MB at 1200 MB/s = 833.3 us.
        assert!((t.as_us_f64() - 833.333).abs() < 0.5, "{t:?}");
    }

    #[test]
    fn two_flows_share_bus_capacity() {
        let mut ch = channel();
        let myri = ch.add_flow(SimTime::ZERO, 4_000_000, 1200.0 * MB);
        let quad = ch.add_flow(SimTime::ZERO, 4_000_000, 850.0 * MB);
        // Fair share would be 925 each; Quadrics caps at 850, leftover goes
        // to Myri: 1850 - 850 = 1000.
        assert!((ch.rate(quad).unwrap() - 850.0 * MB).abs() < 1.0);
        assert!((ch.rate(myri).unwrap() - 1000.0 * MB).abs() < 1.0);
        assert!(ch.allocated_rate() <= ch.capacity() + 1.0);
    }

    #[test]
    fn capacity_never_exceeded_many_flows() {
        let mut ch = channel();
        for _ in 0..8 {
            ch.add_flow(SimTime::ZERO, 1 << 20, 1200.0 * MB);
        }
        assert!(ch.allocated_rate() <= ch.capacity() + 1.0);
        // Every flow gets the same fair share since all caps exceed it.
        let share = ch.capacity() / 8.0;
        for slot in 0..8 {
            let id = FlowId {
                slot,
                generation: slot as u64,
            };
            assert!((ch.rate(id).unwrap() - share).abs() < 1.0);
        }
    }

    #[test]
    fn completion_then_speedup() {
        let mut ch = channel();
        let small = ch.add_flow(SimTime::ZERO, 100_000, 850.0 * MB);
        let big = ch.add_flow(SimTime::ZERO, 10_000_000, 1200.0 * MB);
        let rate_before = ch.rate(big).unwrap();
        let (first, t, epoch) = ch.next_completion().unwrap();
        assert_eq!(first, small);
        assert_eq!(epoch, ch.epoch());
        assert!(ch.try_complete(t, small));
        let rate_after = ch.rate(big).unwrap();
        assert!(
            rate_after > rate_before,
            "big flow must speed up after small completes: {rate_before} -> {rate_after}"
        );
        assert!((rate_after - 1200.0 * MB).abs() < 1.0);
    }

    #[test]
    fn stale_epoch_detectable() {
        let mut ch = channel();
        let _a = ch.add_flow(SimTime::ZERO, 1_000_000, 1200.0 * MB);
        let (_, _, epoch) = ch.next_completion().unwrap();
        // Adding another flow changes rates -> epoch advances.
        let _b = ch.add_flow(SimTime::from_us(1), 1_000_000, 850.0 * MB);
        assert_ne!(epoch, ch.epoch(), "epoch must move when rates change");
    }

    #[test]
    fn try_complete_rejects_unfinished_flow() {
        let mut ch = channel();
        let f = ch.add_flow(SimTime::ZERO, 1_000_000, 1200.0 * MB);
        assert!(!ch.try_complete(SimTime::from_us(1), f));
        assert!(ch.remaining(f).unwrap() > 0.0);
    }

    #[test]
    fn try_complete_rejects_unknown_flow() {
        let mut ch = channel();
        let f = ch.add_flow(SimTime::ZERO, 1, 1200.0 * MB);
        let (_, t, _) = ch.next_completion().unwrap();
        assert!(ch.try_complete(t, f));
        assert!(!ch.try_complete(t, f), "double completion must fail");
    }

    #[test]
    fn byte_conservation() {
        let mut ch = channel();
        let total: u64 = 3_000_000 + 5_000_000;
        let a = ch.add_flow(SimTime::ZERO, 3_000_000, 1200.0 * MB);
        let b = ch.add_flow(SimTime::ZERO, 5_000_000, 850.0 * MB);
        for _ in 0..2 {
            let (id, t, epoch) = ch.next_completion().unwrap();
            assert_eq!(epoch, ch.epoch());
            assert!(ch.try_complete(t, id), "completion event must land");
        }
        assert!(ch.next_completion().is_none());
        let delivered = ch.delivered_bytes();
        assert!(
            (delivered - total as f64).abs() < 1.0,
            "delivered {delivered} != {total}"
        );
        let _ = (a, b);
    }

    #[test]
    fn cancel_returns_remaining() {
        let mut ch = channel();
        let f = ch.add_flow(SimTime::ZERO, 1_000_000, 1000.0 * MB);
        // After 500 us at 1000 MB/s: 500_000 bytes moved.
        let rem = ch.cancel(SimTime::from_us(500), f).unwrap();
        assert!((rem - 500_000.0).abs() < 1.0, "remaining {rem}");
        assert_eq!(ch.active_flows(), 0);
        assert!(ch.cancel(SimTime::from_us(500), f).is_none());
    }

    #[test]
    fn slot_reuse_keeps_generations_distinct() {
        let mut ch = channel();
        let a = ch.add_flow(SimTime::ZERO, 1, 1.0 * MB);
        let (_, t, _) = ch.next_completion().unwrap();
        assert!(ch.try_complete(t, a));
        let b = ch.add_flow(t, 1000, 1.0 * MB);
        assert_eq!(a.slot, b.slot, "slot should be reused");
        assert_ne!(a.generation, b.generation);
        assert!(ch.remaining(a).is_none(), "old id must not alias new flow");
        assert!(ch.remaining(b).is_some());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut ch = channel();
        let f = ch.add_flow(SimTime::ZERO, 0, 1.0 * MB);
        let (id, t, _) = ch.next_completion().unwrap();
        assert_eq!(id, f);
        // Clamped to 1 ps, never zero-length.
        assert!(t.as_ps() >= 1);
        assert!(ch.try_complete(t, f));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn monotonicity_enforced() {
        let mut ch = channel();
        ch.add_flow(SimTime::from_us(10), 100, 1.0 * MB);
        ch.advance(SimTime::from_us(5));
    }
}
