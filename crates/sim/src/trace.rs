//! Bounded, zero-dependency run tracing (deprecated).
//!
//! Simulation bugs are interleaving bugs; a chronological trace of what the
//! engine and the hardware models did is the fastest way to see them. The
//! tracer is a bounded ring buffer of `(time, category, message)` records —
//! cheap enough to leave compiled in, and disabled by default.
//!
//! Superseded by the engine flight recorder (`nmad_core::obs`): its typed,
//! fixed-size records replace this ring's allocated strings, and the old
//! categories map onto the event enum — `App`/`Strategy`/`Nic`/`Bus`/`Cpu`
//! become `SimApp`, the `Decide*` kinds, `SimNic`, `SimBus` and `SimCpu`.
//! Kept one release for out-of-tree consumers; `SimWorld` no longer feeds
//! it.

#![allow(deprecated)]

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::SimTime;

/// Trace record categories, used for filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Application-level submit/complete events.
    App,
    /// Strategy decisions (what the optimizing scheduler picked).
    Strategy,
    /// NIC/driver activity (post, tx done, arrival).
    Nic,
    /// Bus / fluid channel rate changes.
    Bus,
    /// CPU occupancy (PIO, memcpy).
    Cpu,
    /// Anything else.
    Misc,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Category for filtering.
    pub category: Category,
    /// Human-readable description.
    pub message: String,
}

/// A bounded ring buffer of trace records.
#[deprecated(
    since = "0.1.0",
    note = "use the typed flight recorder (`nmad_core::obs::FlightRecorder`); \
            categories App/Strategy/Nic/Bus/Cpu map onto its event kinds"
)]
#[derive(Debug)]
pub struct Tracer {
    records: VecDeque<Record>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default for benchmark runs).
    pub fn disabled() -> Self {
        Tracer {
            records: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// A tracer keeping the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// Whether records are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event. `message` is only constructed by the caller when the
    /// tracer is enabled if the caller uses [`Tracer::record_with`].
    pub fn record(&mut self, time: SimTime, category: Category, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(Record {
            time,
            category,
            message: message.into(),
        });
    }

    /// Record an event, building the message lazily.
    pub fn record_with(
        &mut self,
        time: SimTime,
        category: Category,
        build: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record(time, category, build());
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Records in a category, oldest first.
    pub fn records_in(&self, category: Category) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Count of records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all held records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Render the trace as one line per record (for test failure output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let cat = format!("{:?}", r.category);
            let _ = writeln!(out, "{:>14} {cat:<8} {}", r.time.to_string(), r.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, Category::App, "x");
        assert_eq!(t.records().count(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_eviction() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5 {
            t.record(SimTime::from_ns(i), Category::Nic, format!("e{i}"));
        }
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["e2", "e3", "e4"]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn category_filter() {
        let mut t = Tracer::with_capacity(16);
        t.record(SimTime::ZERO, Category::App, "a");
        t.record(SimTime::ZERO, Category::Bus, "b");
        t.record(SimTime::ZERO, Category::App, "c");
        assert_eq!(t.records_in(Category::App).count(), 2);
        assert_eq!(t.records_in(Category::Bus).count(), 1);
        assert_eq!(t.records_in(Category::Cpu).count(), 0);
    }

    #[test]
    fn lazy_message_not_built_when_disabled() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.record_with(SimTime::ZERO, Category::Misc, || {
            built = true;
            String::from("expensive")
        });
        assert!(!built, "message closure must not run when disabled");
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::with_capacity(2);
        t.record(SimTime::ZERO, Category::Misc, "a");
        t.record(SimTime::ZERO, Category::Misc, "b");
        t.record(SimTime::ZERO, Category::Misc, "c");
        t.clear();
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn render_contains_messages() {
        let mut t = Tracer::with_capacity(4);
        t.record(SimTime::from_us(1), Category::Strategy, "picked greedy");
        let s = t.render();
        assert!(s.contains("picked greedy"));
    }
}
