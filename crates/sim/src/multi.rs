//! A k-server busy resource.
//!
//! [`MultiResource`] generalizes [`crate::BusyResource`] to `k` identical
//! servers with a shared FIFO queue — the model of a multi-core CPU. The
//! paper's testbed nodes were *dual-core* Opterons, but the 2007
//! implementation was single-threaded; §4 announces "a multi-threaded
//! implementation that will process parallel PIO transfers on
//! multiprocessor machines". This resource is what lets the simulation
//! explore that future-work design point (see the `ablate_cores` bench).

use crate::resource::Grant;
use crate::time::{SimDuration, SimTime};

/// A resource with `k` identical servers and FIFO assignment.
#[derive(Clone, Debug)]
pub struct MultiResource {
    /// Per-server next-free instants.
    free_at: Vec<SimTime>,
    busy_total: SimDuration,
    name: &'static str,
}

impl MultiResource {
    /// Create a `servers`-wide resource, free immediately.
    pub fn new(name: &'static str, servers: usize) -> Self {
        assert!(servers >= 1, "{name}: need at least one server");
        MultiResource {
            free_at: vec![SimTime::ZERO; servers],
            busy_total: SimDuration::ZERO,
            name,
        }
    }

    /// Resource name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Request `duration` of exclusive use of *one* server, starting no
    /// earlier than `now`. The earliest-free server is chosen (ties by
    /// lowest index, deterministically).
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> Grant {
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .expect("at least one server");
        let start = free.max(now);
        let end = start + duration;
        self.free_at[idx] = end;
        self.busy_total += duration;
        Grant { start, end }
    }

    /// When the *next* server becomes free (earliest over servers).
    pub fn next_free_at(&self) -> SimTime {
        *self.free_at.iter().min().expect("non-empty")
    }

    /// True if at least one server is free at `now`.
    pub fn has_idle_server(&self, now: SimTime) -> bool {
        self.next_free_at() <= now
    }

    /// Aggregate utilization over `[0, now]` across all servers.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let capacity = now.as_ps() as f64 * self.servers() as f64;
        (self.busy_total.as_ps() as f64 / capacity).min(1.0)
    }

    /// Total busy time summed over servers.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Reset accounting and availability.
    pub fn reset(&mut self, now: SimTime) {
        for f in &mut self.free_at {
            *f = now;
        }
        self.busy_total = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_matches_busy_resource_semantics() {
        let mut r = MultiResource::new("cpu", 1);
        let g1 = r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        let g2 = r.acquire(SimTime::ZERO, SimDuration::from_ns(50));
        assert_eq!(g1.end, SimTime::from_ns(100));
        assert_eq!(g2.start, SimTime::from_ns(100), "serializes on one server");
        assert_eq!(g2.end, SimTime::from_ns(150));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = MultiResource::new("cpu", 2);
        let g1 = r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        let g2 = r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, SimTime::ZERO, "second core takes the second job");
        let g3 = r.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        assert_eq!(g3.start, SimTime::from_ns(100), "third job queues");
    }

    #[test]
    fn picks_earliest_free_server() {
        let mut r = MultiResource::new("cpu", 2);
        r.acquire(SimTime::ZERO, SimDuration::from_ns(100)); // server 0 till 100
        r.acquire(SimTime::ZERO, SimDuration::from_ns(30)); // server 1 till 30
        let g = r.acquire(SimTime::from_ns(10), SimDuration::from_ns(5));
        assert_eq!(g.start, SimTime::from_ns(30), "server 1 frees first");
    }

    #[test]
    fn idle_server_detection() {
        let mut r = MultiResource::new("cpu", 2);
        r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        assert!(r.has_idle_server(SimTime::ZERO), "second core idle");
        r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        assert!(!r.has_idle_server(SimTime::from_ns(50)));
        assert!(r.has_idle_server(SimTime::from_ns(100)));
    }

    #[test]
    fn utilization_spans_all_servers() {
        let mut r = MultiResource::new("cpu", 2);
        r.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        // 100 ns busy across 2 servers over 100 ns: 50%.
        let u = r.utilization(SimTime::from_ns(100));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
    }

    #[test]
    fn deterministic_tie_breaking() {
        let run = || {
            let mut r = MultiResource::new("cpu", 3);
            let mut ends = Vec::new();
            for i in 0..10u64 {
                let g = r.acquire(SimTime::ZERO, SimDuration::from_ns(10 + i));
                ends.push((g.start, g.end));
            }
            ends
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = MultiResource::new("cpu", 2);
        r.acquire(SimTime::ZERO, SimDuration::from_us(1));
        r.acquire(SimTime::ZERO, SimDuration::from_us(1));
        r.reset(SimTime::from_us(5));
        assert!(r.has_idle_server(SimTime::from_us(5)));
        assert_eq!(r.busy_total(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        MultiResource::new("cpu", 0);
    }
}
