//! # nmad-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the simulation substrate used by `newmadeleine-rs` to
//! stand in for the two-node Opteron / Myri-10G / Quadrics testbed of the
//! paper *"High-Performance Multi-Rail Support with the NewMadeleine
//! Communication Library"* (HCW/IPDPS 2007).
//!
//! The kernel is intentionally small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution virtual time.
//!   Picoseconds keep sub-nanosecond byte times exact enough for multi-GB/s
//!   links while still fitting hours of virtual time in a `u64`.
//! * [`EventQueue`] — a priority queue of `(time, event)` pairs with
//!   deterministic FIFO tie-breaking, so identical runs produce identical
//!   event interleavings.
//! * [`rng`] — seedable, portable PRNGs (SplitMix64 and xoshiro256\*\*)
//!   implemented locally so the whole workspace has a single, documented
//!   source of randomness.
//! * [`BusyResource`] — a serially reusable resource (a CPU doing PIO, a NIC
//!   injection engine) modelled as a busy-until timestamp with FIFO queuing;
//!   [`MultiResource`] is its k-server (multi-core) generalization.
//! * [`FluidChannel`] — a max-min fair fluid-flow model of a shared channel
//!   (the host I/O bus) with per-flow rate caps, the component responsible
//!   for the paper's 1675 MB/s aggregated-bandwidth plateau.
//! * [`trace`] — a lightweight bounded trace buffer for debugging runs.
//!
//! Everything here is driven *by* the runtime crate; the kernel itself never
//! dictates an event vocabulary.

#![warn(missing_docs)]

pub mod fluid;
pub mod multi;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;

pub use fluid::{FlowId, FluidChannel};
pub use multi::MultiResource;
pub use queue::EventQueue;
pub use resource::BusyResource;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use time::{SimDuration, SimTime};
