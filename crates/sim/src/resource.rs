//! Serially reusable resources with busy-until semantics.
//!
//! A [`BusyResource`] models anything that can do one thing at a time: the
//! host CPU executing a PIO injection or a memcpy, a NIC injection engine
//! feeding its DMA queue, a driver lock. Work arriving while the resource is
//! busy is implicitly queued FIFO by starting after the current busy period
//! — exactly the "PIO monopolizes the CPU" effect the paper identifies as
//! the reason multi-rail does not help below 8 KB segments.

use crate::time::{SimDuration, SimTime};

/// A resource that serves one request at a time, FIFO.
#[derive(Clone, Debug)]
pub struct BusyResource {
    /// Instant at which the resource next becomes free.
    free_at: SimTime,
    /// Total busy time accumulated (for utilization accounting).
    busy_total: SimDuration,
    /// Name used in traces and panics.
    name: &'static str,
}

/// Outcome of an [`BusyResource::acquire`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// When the work actually starts (>= request time).
    pub start: SimTime,
    /// When the work completes and the resource frees up.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced before the work began.
    pub fn wait(&self, requested_at: SimTime) -> SimDuration {
        self.start.saturating_since(requested_at)
    }
}

impl BusyResource {
    /// Create a resource that is free immediately.
    pub fn new(name: &'static str) -> Self {
        BusyResource {
            free_at: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            name,
        }
    }

    /// Resource name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Request `duration` of exclusive use starting no earlier than `now`.
    ///
    /// Returns the granted `[start, end)` window and marks the resource busy
    /// until `end`.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> Grant {
        let start = self.free_at.max(now);
        let end = start + duration;
        self.free_at = end;
        self.busy_total += duration;
        Grant { start, end }
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the resource would serve a request at `now` without waiting.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total busy time accumulated so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Utilization over `[SimTime::ZERO, now]`, in `[0, 1]`.
    /// Returns 0 at `now == 0`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_ps() as f64 / now.as_ps() as f64).min(1.0)
    }

    /// Reset accounting and availability (used between benchmark phases).
    pub fn reset(&mut self, now: SimTime) {
        self.free_at = now;
        self.busy_total = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_grant_when_free() {
        let mut cpu = BusyResource::new("cpu");
        let g = cpu.acquire(SimTime::from_ns(100), SimDuration::from_ns(50));
        assert_eq!(g.start, SimTime::from_ns(100));
        assert_eq!(g.end, SimTime::from_ns(150));
        assert_eq!(g.wait(SimTime::from_ns(100)), SimDuration::ZERO);
    }

    #[test]
    fn queues_fifo_when_busy() {
        let mut cpu = BusyResource::new("cpu");
        let g1 = cpu.acquire(SimTime::ZERO, SimDuration::from_ns(100));
        let g2 = cpu.acquire(SimTime::from_ns(10), SimDuration::from_ns(30));
        assert_eq!(g1.end, SimTime::from_ns(100));
        assert_eq!(g2.start, SimTime::from_ns(100), "must wait for first job");
        assert_eq!(g2.end, SimTime::from_ns(130));
        assert_eq!(g2.wait(SimTime::from_ns(10)), SimDuration::from_ns(90));
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut cpu = BusyResource::new("cpu");
        cpu.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        let g = cpu.acquire(SimTime::from_ns(500), SimDuration::from_ns(10));
        assert_eq!(g.start, SimTime::from_ns(500));
    }

    #[test]
    fn utilization_accounting() {
        let mut nic = BusyResource::new("nic");
        nic.acquire(SimTime::ZERO, SimDuration::from_ns(30));
        nic.acquire(SimTime::from_ns(70), SimDuration::from_ns(30));
        // 60 ns busy out of 100 ns elapsed.
        let u = nic.utilization(SimTime::from_ns(100));
        assert!((u - 0.6).abs() < 1e-9, "utilization {u}");
        assert_eq!(nic.busy_total(), SimDuration::from_ns(60));
    }

    #[test]
    fn utilization_at_zero_is_zero() {
        let nic = BusyResource::new("nic");
        assert_eq!(nic.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn is_free_boundary() {
        let mut r = BusyResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        assert!(!r.is_free(SimTime::from_ns(9)));
        assert!(r.is_free(SimTime::from_ns(10)));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = BusyResource::new("r");
        r.acquire(SimTime::ZERO, SimDuration::from_us(5));
        r.reset(SimTime::from_us(10));
        assert!(r.is_free(SimTime::from_us(10)));
        assert_eq!(r.busy_total(), SimDuration::ZERO);
        let g = r.acquire(SimTime::from_us(10), SimDuration::from_ns(1));
        assert_eq!(g.start, SimTime::from_us(10));
    }

    #[test]
    fn zero_duration_grant() {
        let mut r = BusyResource::new("r");
        let g = r.acquire(SimTime::from_ns(5), SimDuration::ZERO);
        assert_eq!(g.start, g.end);
        assert!(r.is_free(SimTime::from_ns(5)));
    }
}
