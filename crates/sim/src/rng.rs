//! Seedable, portable pseudo-random number generators.
//!
//! The workspace needs randomness only for workload generation (message
//! sizes, inter-arrival jitter, payload contents) and for randomized tests.
//! Implementing SplitMix64 and xoshiro256\*\* locally (both are public
//! domain algorithms by Blackman & Vigna) keeps every run reproducible from
//! a single `u64` seed with no dependency drift.

/// SplitMix64: a tiny, fast generator mainly used here to seed
/// [`Xoshiro256StarStar`] and to derive independent per-component seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* 1.0 — the general-purpose generator used by workloads.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator, expanding the seed through SplitMix64 as the
    /// xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one fixed point; seed 0 through SplitMix64
        // never produces it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` using Lemire's unbiased method.
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling on the top bits to remove modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Avoid ln(0) by nudging the uniform sample away from zero.
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Fill a byte buffer with random data (for payload integrity tests).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let v = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&v[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256StarStar::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn range_respects_bounds_and_hits_all() {
        let mut r = Xoshiro256StarStar::new(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.range_u64(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Xoshiro256StarStar::new(3);
        let _ = r.range_u64(5, 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256StarStar::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should permute");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Xoshiro256StarStar::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "exponential mean {mean} != ~3.0");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Xoshiro256StarStar::new(8);
        let mut buf = vec![0u8; 13];
        r.fill_bytes(&mut buf);
        // With 13 random bytes the chance of all-zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = vec![0u8; 13];
        let mut r2 = Xoshiro256StarStar::new(8);
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2, "fill_bytes must be deterministic per seed");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256StarStar::new(21);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
