//! Virtual time in picoseconds.
//!
//! Rationale for picoseconds: the fastest modelled link (Myri-10G,
//! ~1200 MB/s) moves one byte in ~833 ps. Nanosecond resolution would
//! accumulate up to 20% rounding error on per-byte costs for small packets;
//! picoseconds keep per-byte quantization below 0.1% while a `u64` still
//! holds ~213 days of virtual time.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in picoseconds (serialized as a bare
/// picosecond count).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

// Transparent serialization: both types appear on the wire as a bare
// picosecond count.
impl Serialize for SimTime {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}
impl Deserialize for SimTime {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).map(SimTime)
    }
}
impl Serialize for SimDuration {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}
impl Deserialize for SimDuration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).map(SimDuration)
    }
}

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in seconds as a float (for bandwidth computations).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Time elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// picosecond. Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * PS_PER_S as f64).round() as u64)
    }

    /// Construct from fractional seconds, rounding *up* to a whole
    /// picosecond. Use for completion deadlines that must never fire early.
    #[inline]
    pub fn from_secs_f64_ceil(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * PS_PER_S as f64).ceil() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds as a float.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Value in microseconds as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole
    /// picosecond so modelled transfers never complete early.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "bandwidth must be positive and finite, got {bytes_per_sec}"
        );
        let ps = (bytes as f64) * (PS_PER_S as f64) / bytes_per_sec;
        SimDuration(ps.ceil() as u64)
    }

    /// Scale by a float factor, rounding to nearest. Negative factors clamp
    /// to zero.
    pub fn mul_f64(self, factor: f64) -> Self {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(3).as_ps(), 3_000_000);
        assert_eq!(SimDuration::from_us(1).as_ns_f64(), 1_000.0);
        assert!((SimTime::from_us(7).as_us_f64() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_ns(2_500);
        let t2 = t + d;
        assert_eq!(t2.since(t), d);
        assert_eq!(t2 - d, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_ns(5);
        let late = SimTime::from_ns(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_ns(4));
    }

    #[test]
    fn bytes_at_bandwidth() {
        // 1200 MB/s => 1 byte in ~833.3 ps, rounded up.
        let d = SimDuration::for_bytes(1, 1200.0e6);
        assert_eq!(d.as_ps(), 834);
        // 1 MB at 1 GB/s = 1 ms within rounding.
        let d = SimDuration::for_bytes(1_000_000, 1.0e9);
        assert_eq!(d.as_ps(), PS_PER_MS);
        // Zero bytes take zero time.
        assert_eq!(SimDuration::for_bytes(0, 1.0e9), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = SimDuration::for_bytes(10, 0.0);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_ps(), 1);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_ns(100);
        assert_eq!(d * 3, SimDuration::from_ns(300));
        assert_eq!(d / 4, SimDuration::from_ns(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_ns(50));
        assert_eq!(d.mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert!(SimDuration::from_ns(1) < SimDuration::from_us(1));
    }
}
