//! Property tests for the max-min fair fluid channel: under arbitrary
//! flow arrival patterns the channel must conserve bytes, never exceed
//! capacity, allocate max-min fairly, and always drain.

use nmad_sim::{FluidChannel, SimDuration, SimTime};
use proptest::prelude::*;

const MB: f64 = 1.0e6;

#[derive(Debug, Clone)]
struct FlowSpec {
    bytes: u64,
    cap_mbs: f64,
    arrival_offset_us: u64,
}

fn arb_flows() -> impl Strategy<Value = Vec<FlowSpec>> {
    prop::collection::vec(
        (1u64..(4 << 20), 50.0f64..2000.0, 0u64..5000).prop_map(
            |(bytes, cap_mbs, arrival_offset_us)| FlowSpec {
                bytes,
                cap_mbs,
                arrival_offset_us,
            },
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every flow completes, bytes are conserved, and the allocation never
    /// exceeds capacity at any decision point.
    #[test]
    fn drains_and_conserves(mut flows in arb_flows(), cap_mbs in 300.0f64..3000.0) {
        flows.sort_by_key(|f| f.arrival_offset_us);
        let mut ch = FluidChannel::new("bus", cap_mbs * MB);
        let total: u64 = flows.iter().map(|f| f.bytes).sum();

        let mut now = SimTime::ZERO;
        let mut pending = flows.into_iter().peekable();
        let mut active = 0usize;
        let mut completed = 0usize;
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 100_000, "fluid loop did not terminate");
            // Admit every flow that has arrived by `now`.
            while let Some(f) = pending.peek() {
                let at = SimTime::from_us(f.arrival_offset_us);
                if at <= now || active == 0 {
                    let at = at.max(now);
                    now = at;
                    let f = pending.next().unwrap();
                    ch.add_flow(at, f.bytes, f.cap_mbs * MB);
                    active += 1;
                } else {
                    break;
                }
            }
            prop_assert!(
                ch.allocated_rate() <= ch.capacity() * (1.0 + 1e-9),
                "allocation {} exceeds capacity {}",
                ch.allocated_rate(),
                ch.capacity()
            );
            let Some((fid, t, epoch)) = ch.next_completion() else {
                break;
            };
            // Next event: either a completion or an earlier arrival.
            let next_arrival = pending
                .peek()
                .map(|f| SimTime::from_us(f.arrival_offset_us).max(now));
            match next_arrival {
                Some(at) if at < t => {
                    now = at;
                    ch.advance(now);
                    // stale completion event discarded implicitly: epoch
                    // changes at the next add_flow
                    let _ = epoch;
                }
                _ => {
                    now = t;
                    prop_assert!(ch.try_complete(now, fid), "scheduled completion must land");
                    active -= 1;
                    completed += 1;
                }
            }
        }
        prop_assert_eq!(ch.active_flows(), 0, "all flows must drain");
        prop_assert!(completed > 0);
        let delivered = ch.delivered_bytes();
        prop_assert!(
            (delivered - total as f64).abs() < 1.0,
            "delivered {} != submitted {}",
            delivered,
            total
        );
    }

    /// Max-min fairness invariant: every uncapped flow receives at least
    /// as much as any other flow (no starvation), and capped flows get
    /// exactly their cap when there is slack.
    #[test]
    fn allocation_is_max_min_fair(caps in prop::collection::vec(50.0f64..2000.0, 2..10), cap_mbs in 300.0f64..3000.0) {
        let mut ch = FluidChannel::new("bus", cap_mbs * MB);
        let ids: Vec<_> = caps
            .iter()
            .map(|&c| ch.add_flow(SimTime::ZERO, 1 << 20, c * MB))
            .collect();
        let rates: Vec<f64> = ids.iter().map(|&id| ch.rate(id).unwrap()).collect();
        let max_rate = rates.iter().fold(0.0f64, |a, &b| a.max(b));
        for (i, (&rate, &cap)) in rates.iter().zip(&caps).enumerate() {
            let cap = cap * MB;
            prop_assert!(rate <= cap * (1.0 + 1e-9), "flow {i} exceeds its cap");
            // Max-min: a flow below max_rate must be at its cap (it is
            // constrained by itself, not by the share).
            if rate < max_rate * (1.0 - 1e-9) {
                prop_assert!(
                    (rate - cap).abs() < 1.0,
                    "flow {i} got {rate} < max {max_rate} but is not at its cap {cap}"
                );
            }
        }
        // Work conservation: either the channel is saturated or every
        // flow is at its cap.
        let total_alloc = ch.allocated_rate();
        let all_capped = rates
            .iter()
            .zip(&caps)
            .all(|(&r, &c)| (r - c * MB).abs() < 1.0);
        prop_assert!(
            total_alloc >= ch.capacity() * (1.0 - 1e-9) || all_capped,
            "neither saturated ({total_alloc} of {}) nor all capped",
            ch.capacity()
        );
    }

    /// Completion times are monotone under added load: adding a competing
    /// flow never makes an existing flow finish earlier.
    #[test]
    fn competition_never_speeds_up(bytes in (1u64 << 10)..(8 << 20), cap in 200.0f64..1500.0, other_cap in 200.0f64..1500.0) {
        let solo = {
            let mut ch = FluidChannel::new("bus", 1950.0 * MB);
            let f = ch.add_flow(SimTime::ZERO, bytes, cap * MB);
            let (id, t, _) = ch.next_completion().unwrap();
            prop_assert_eq!(id, f);
            t
        };
        let contended = {
            let mut ch = FluidChannel::new("bus", 1950.0 * MB);
            let f = ch.add_flow(SimTime::ZERO, bytes, cap * MB);
            let _g = ch.add_flow(SimTime::ZERO, u64::MAX / 4, other_cap * MB);
            // Find the completion of `f` specifically: it is the earliest
            // (the other flow is practically infinite).
            let (id, t, _) = ch.next_completion().unwrap();
            prop_assert_eq!(id, f);
            t
        };
        prop_assert!(
            contended >= solo,
            "competition made the flow faster: {contended:?} < {solo:?}"
        );
        // Keep SimDuration import alive for clarity of units.
        let _ = SimDuration::ZERO;
    }
}
