//! Criterion micro-benchmarks of the engine's hot paths: wire
//! encode/decode, aggregation staging, chunk reassembly, CRC, fluid-bus
//! rate recomputation, sampled-ratio computation, and a full strategy
//! decision.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use nmad_core::sampling::{default_ladder, split_weights};
use nmad_core::{Engine, EngineConfig, PerfTable, StrategyKind};
use nmad_model::{platform, RailId};
use nmad_sim::{FluidChannel, SimTime};
use nmad_wire::agg::{parse_aggregate, AggregateBuilder, AggregateEntry};
use nmad_wire::checksum::crc32;
use nmad_wire::header::{EagerPacket, Packet};
use nmad_wire::reassembly::Reassembler;
use nmad_wire::split::SplitPlan;

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for &size in &[64usize, 4096] {
        let pkt = Packet::Eager(EagerPacket {
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            data: Bytes::from(vec![0xA5; size]),
        });
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("encode_eager_{size}B"), |b| {
            b.iter(|| black_box(pkt.encode(1, 2, false)))
        });
        let wire = pkt.encode(1, 2, true);
        g.bench_function(format!("decode_eager_crc_{size}B"), |b| {
            b.iter(|| black_box(Packet::decode(&wire).unwrap()))
        });
    }
    g.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate");
    for &n in &[2usize, 8, 32] {
        g.bench_function(format!("build_{n}x256B"), |b| {
            b.iter(|| {
                let mut builder = AggregateBuilder::new();
                for i in 0..n {
                    builder.push(AggregateEntry {
                        conn_id: 0,
                        msg_id: i as u64,
                        seg_index: 0,
                        total_segs: 1,
                        data: Bytes::from(vec![i as u8; 256]),
                    });
                }
                black_box(builder.finish())
            })
        });
        let mut builder = AggregateBuilder::new();
        for i in 0..n {
            builder.push(AggregateEntry {
                conn_id: 0,
                msg_id: i as u64,
                seg_index: 0,
                total_segs: 1,
                data: Bytes::from(vec![i as u8; 256]),
            });
        }
        let Packet::Aggregate(body) = builder.finish() else {
            unreachable!()
        };
        g.bench_function(format!("parse_{n}x256B"), |b| {
            b.iter(|| black_box(parse_aggregate(&body).unwrap()))
        });
    }
    g.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    let payload = vec![7u8; 1 << 20];
    c.bench_function("reassembly/1MB_in_16_chunks", |b| {
        b.iter(|| {
            let mut r = Reassembler::new();
            let chunk = payload.len() / 16;
            let mut done = None;
            for i in 0..16 {
                let off = i * chunk;
                done = r
                    .insert_chunk(
                        1,
                        0,
                        1,
                        off as u64,
                        payload.len() as u64,
                        &payload[off..off + chunk],
                    )
                    .unwrap();
            }
            black_box(done.unwrap())
        })
    });
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0x5Au8; 64 * 1024];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("64KiB", |b| b.iter(|| black_box(crc32(&data))));
    g.finish();
}

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("fluid/add_complete_8_flows", |b| {
        b.iter(|| {
            let mut ch = FluidChannel::new("bus", 1.95e9);
            let mut t = SimTime::ZERO;
            for _ in 0..8 {
                ch.add_flow(t, 1 << 20, 1.2e9);
            }
            while let Some((id, when, _)) = ch.next_completion() {
                t = when.max(t);
                ch.try_complete(t, id);
            }
            black_box(ch.delivered_bytes())
        })
    });
}

fn bench_split_weights(c: &mut Criterion) {
    let ladder = default_ladder();
    let myri = PerfTable::from_analytic(&platform::myri_10g(), &ladder);
    let quad = PerfTable::from_analytic(&platform::quadrics_qm500(), &ladder);
    c.bench_function("sampling/split_weights_8MB", |b| {
        b.iter(|| black_box(split_weights(&[&myri, &quad], 8 << 20)))
    });
    c.bench_function("split_plan/by_ratio_8MB", |b| {
        b.iter(|| black_box(SplitPlan::by_ratio(8 << 20, &[1202.0, 851.0], 8192)))
    });
}

fn bench_strategy_decision(c: &mut Criterion) {
    // Full engine decision cost: submit small messages, measure next_tx.
    c.bench_function("engine/next_tx_aggregate_8_smalls", |b| {
        let p = platform::paper_platform();
        b.iter(|| {
            let mut e = Engine::new(
                EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
                p.rails.clone(),
                vec![],
            );
            let conn = e.conn_open();
            for i in 0..8u8 {
                e.submit_send(conn, vec![Bytes::from(vec![i; 256])]);
            }
            black_box(e.next_tx(RailId(1)).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_wire,
    bench_aggregate,
    bench_reassembly,
    bench_crc,
    bench_fluid,
    bench_split_weights,
    bench_strategy_decision
);
criterion_main!(benches);
