//! Extension: adaptive splitting over three heterogeneous rails.
//! Run with `cargo bench -p nmad-bench --bench three_rail`.

fn main() {
    nmad_bench::report::run_figure_bench("three_rail", nmad_bench::figures::three_rail);
}
