//! Regenerates the paper's fig3_quadrics series. Run with `cargo bench -p nmad-bench --bench fig3_quadrics`.

fn main() {
    nmad_bench::report::run_figure_bench("fig3_quadrics", nmad_bench::figures::fig3_quadrics);
}
