//! Beyond-paper experiment: bursty mixed-size workload makespan per
//! strategy. Run with `cargo bench -p nmad-bench --bench workload_mix`.

use nmad_bench::workload::{burst_comparison, render_burst_table, BurstSpec};

fn main() {
    for (msgs, small_frac) in [(64usize, 0.6f64), (64, 0.9), (128, 0.3)] {
        let spec = BurstSpec {
            messages: msgs,
            seed: 2007,
            small_fraction: small_frac,
            ..Default::default()
        };
        let rows = burst_comparison(&spec);
        println!("{}", render_burst_table(&spec, &rows));
    }
}
