//! Regenerates the paper's fig2_myri series. Run with `cargo bench -p nmad-bench --bench fig2_myri`.

fn main() {
    nmad_bench::report::run_figure_bench("fig2_myri", nmad_bench::figures::fig2_myri);
}
