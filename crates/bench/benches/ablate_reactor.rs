//! Reactor-transport gate: a fixed epoll worker pool serving a 10k+
//! connection echo herd, plus per-I/O-thread throughput against the
//! thread-per-rail runtime at 2 rails. Run with
//! `cargo bench -p nmad-bench --bench ablate_reactor`.
//! Set `NMAD_REACTOR_SMOKE=1` for the ~seconds CI run (a few hundred
//! connections); the full run drives the 10k claim.
//! `NMAD_REACTOR_SEED=<n>` replays a recorded size stream.

fn main() {
    // Child-process hook: with NMAD_REACTOR_CLIENT set this process IS
    // the client herd (exits inside).
    if nmad_bench::reactor::client_main() {
        return;
    }
    let client_exe = std::env::current_exe().ok();
    let smoke = std::env::var("NMAD_REACTOR_SMOKE").is_ok_and(|v| v != "0");
    let seed = std::env::var("NMAD_REACTOR_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(11);
    let spec = if smoke {
        nmad_bench::reactor::ReactorSpec::smoke(seed)
    } else {
        nmad_bench::reactor::ReactorSpec::full(seed)
    };
    eprintln!(
        "running ablate_reactor ({} run, {} connections x {} round trips, seed {seed})...",
        if smoke { "smoke" } else { "full" },
        spec.conns,
        spec.rounds
    );
    let first = nmad_bench::reactor::run(&spec, client_exe.as_deref());
    // Latency and throughput gates ride the wall clock; the herd /
    // shed / allocation gates are deterministic and never retried.
    let report = nmad_bench::report::retry_once_on_timing(
        "ablate_reactor",
        first,
        |r| {
            let v = nmad_bench::reactor::check(r);
            !v.is_empty() && v.iter().all(|s| s.starts_with("timing:"))
        },
        || nmad_bench::reactor::run(&spec, client_exe.as_deref()),
        |second, _first| nmad_bench::reactor::check(second).is_empty(),
    );
    print!("{}", nmad_bench::reactor::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("reactor", &bytes);

    let violations = nmad_bench::reactor::check(&report);
    if !violations.is_empty() {
        eprintln!("reactor gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    if report.supported {
        eprintln!(
            "reactor gate OK: {} conns on {} threads, p99 {} us, per-thread ratio {:.2} \
             (BENCH_reactor.json)",
            report.scale.sustained_conns,
            report.scale.threads,
            report.scale.p99_us,
            report.perthread.per_thread_ratio()
        );
    }
}
