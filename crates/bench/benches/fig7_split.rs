//! Regenerates the paper's fig7_split series. Run with `cargo bench -p nmad-bench --bench fig7_split`.

fn main() {
    nmad_bench::report::run_figure_bench("fig7_split", nmad_bench::figures::fig7_split);
}
