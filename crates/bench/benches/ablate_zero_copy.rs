//! Datapath copy accounting: measures bytes copied vs moved zero-copy and
//! gates against the copy budget. Run with
//! `cargo bench -p nmad-bench --bench ablate_zero_copy`.
//! Set `NMAD_DATAPATH_SMOKE=1` for the small CI sweep.

fn main() {
    let smoke = std::env::var("NMAD_DATAPATH_SMOKE").is_ok_and(|v| v != "0");
    eprintln!(
        "running ablate_zero_copy ({} sweep, deterministic simulation)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = nmad_bench::datapath::run(smoke);
    println!("{}", nmad_bench::datapath::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("datapath", &bytes);

    let violations = nmad_bench::datapath::check(&report);
    if !violations.is_empty() {
        eprintln!("copy budget violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "copy budget OK: {:.1}x reduction vs legacy pipeline",
        report.reduction_factor
    );
}
