//! Online-recalibration gate: runs the mid-run bandwidth-degradation
//! pipeline with frozen seed tables and with the online calibrator and
//! fails unless calibrating strictly wins and the split converges within
//! the rebuild budget. Run with
//! `cargo bench -p nmad-bench --bench ablate_calibration`.
//! Set `NMAD_CALIBRATION_SMOKE=1` for the small CI sweep.

fn main() {
    let smoke = std::env::var("NMAD_CALIBRATION_SMOKE").is_ok_and(|v| v != "0");
    eprintln!(
        "running ablate_calibration ({} sweep, deterministic drift sim)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = nmad_bench::calibration::run(smoke);
    println!("{}", nmad_bench::calibration::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("calibration", &bytes);

    let violations = nmad_bench::calibration::check(&report);
    if !violations.is_empty() {
        eprintln!("calibration gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "calibration OK: {:+.2}% vs frozen, converged at rebuild {} (budget {})",
        report.improvement_pct(),
        report.converged_rebuild,
        report.budget_rebuilds
    );
}
