//! Chaos-soak SLO gate: multi-tenant load over the parallel engine
//! while a seeded schedule drives outages, corruption, drop storms and
//! bandwidth drift, gated on p99/p999 latency, head->tail throughput
//! decay, pool-ledger leaks and stuck requests. Run with
//! `cargo bench -p nmad-bench --bench ablate_soak`.
//! Set `NMAD_SOAK_SMOKE=1` for the ~10 s CI run; the full run soaks for
//! minutes. `NMAD_SOAK_SEED=<n>` replays a recorded run.

use std::time::Duration;

fn main() {
    let smoke = std::env::var("NMAD_SOAK_SMOKE").is_ok_and(|v| v != "0");
    let seed = std::env::var("NMAD_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(20);
    let spec = if smoke {
        nmad_bench::soak::SoakSpec::smoke(seed)
    } else {
        nmad_bench::soak::SoakSpec::full(seed)
    };
    eprintln!(
        "running ablate_soak ({} soak, {:.0}s load, seed {seed})...",
        if smoke { "smoke" } else { "full" },
        spec.duration.as_secs_f64()
    );
    let mut report = nmad_bench::soak::run(&spec);
    // Latency percentiles and window throughput ride the wall clock, so
    // a loaded CI box can trip them without any engine regression. If
    // ONLY timing gates fail (the ledger gates — leaks, stuck, progress
    // — are deterministic), soak once more before concluding. A real
    // regression fails both attempts.
    let timing_only = |r: &nmad_bench::soak::SoakReport| {
        let v = nmad_bench::soak::check(r);
        !v.is_empty() && v.iter().all(|s| s.starts_with("timing:"))
    };
    if timing_only(&report) {
        eprintln!(
            "timing gate tripped (p99 {} us, decay {:.1}%); retrying once to rule out background load",
            report.p99_us, report.decay_pct
        );
        // Let transient load drain before the second attempt.
        std::thread::sleep(Duration::from_secs(2));
        let second = nmad_bench::soak::run(&spec);
        if !timing_only(&second) {
            report = second;
        }
    }
    println!("{}", nmad_bench::soak::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("soak", &bytes);

    let violations = nmad_bench::soak::check(&report);
    if !violations.is_empty() {
        eprintln!("soak SLO gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "soak SLO gate OK: p99 {} us, {:+.1}% decay, 0 stuck, 0 leaks (seed {} in BENCH_soak.json)",
        report.p99_us, report.decay_pct, report.seed
    );
}
