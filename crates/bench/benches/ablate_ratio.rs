//! Regenerates the paper's ablate_ratio series. Run with `cargo bench -p nmad-bench --bench ablate_ratio`.

fn main() {
    nmad_bench::report::run_figure_bench("ablate_ratio", nmad_bench::figures::ablate_ratio);
}
