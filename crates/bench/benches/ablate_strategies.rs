//! Strategy-zoo tournament: every [`nmad_core::StrategyKind`] across the
//! six load regimes (uniform bulk, bounded-Pareto heavy tail, MMPP
//! bursts, bandwidth drift, hard outage, asymmetric small flood), gated
//! on the zoo's three claims — SRPT holds the heavy tail, harvesting
//! recovers idle bandwidth, the latency router cuts small-message p99.
//! Run with `cargo bench -p nmad-bench --bench ablate_strategies`.
//! Set `NMAD_STRATEGIES_SMOKE=1` for the quick CI grid;
//! `NMAD_STRATEGIES_SEED=<n>` replays a recorded run.

fn main() {
    let smoke = std::env::var("NMAD_STRATEGIES_SMOKE").is_ok_and(|v| v != "0");
    let seed = std::env::var("NMAD_STRATEGIES_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2024);
    eprintln!(
        "running ablate_strategies ({} grid, seed {seed})...",
        if smoke { "smoke" } else { "full" },
    );
    let report = nmad_bench::tournament::run(seed, smoke);
    println!("{}", nmad_bench::tournament::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("strategies", &bytes);

    let violations = nmad_bench::tournament::check(&report);
    if !violations.is_empty() {
        eprintln!("strategy tournament gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "strategy tournament OK: {} cells, {} winners (seed {} in BENCH_strategies.json)",
        report.cells.len(),
        report.winners.len(),
        report.seed
    );
}
