//! The §2 "optimization window" experiment: requests accumulate while the
//! application computes; the optimizer processes the backlog at once.
//! Run with `cargo bench -p nmad-bench --bench ablate_window`.

use nmad_bench::workload::run_compute_window;
use nmad_core::StrategyKind;

fn main() {
    println!("=== ablate_window — backlog accumulation during compute phases ===");
    println!(
        "{:>12} {:>18} {:>14} {:>10} {:>10}",
        "compute (us)", "strategy", "makespan us", "packets", "aggregates"
    );
    for compute_us in [0u64, 1, 3, 10] {
        for kind in [StrategyKind::Greedy, StrategyKind::AggregateEager] {
            let (t, pkts, aggs) = run_compute_window(kind, 8, compute_us);
            println!(
                "{compute_us:>12} {:>18} {t:>14.2} {pkts:>10} {aggs:>10}",
                kind.label()
            );
        }
    }
    println!(
        "\nLonger compute phases -> deeper backlog when the scheduler finally\n\
         runs -> bigger aggregates and fewer physical packets (paper 2: the\n\
         engine builds a packet optimization window while execution is\n\
         CPU-bounded, at constant submit cost)."
    );
}
