//! Observability overhead gate: times the bandwidth ladder with the
//! recorder off, the recorder on, and the full telemetry stack
//! (recorder + aggregator + watchdog), and fails if instrumentation
//! costs more than the budget or allocates on the hot path. Run with
//! `cargo bench -p nmad-bench --bench ablate_obs`.
//! Set `NMAD_OBS_SMOKE=1` for the small CI sweep.

fn main() {
    let smoke = std::env::var("NMAD_OBS_SMOKE").is_ok_and(|v| v != "0");
    eprintln!(
        "running ablate_obs ({} sweep, wall-clock engine pump)...",
        if smoke { "smoke" } else { "full" }
    );
    // Shared noise policy (see nmad_bench::report): if ONLY the timing
    // gates trip (allocs and event counts are deterministic), measure
    // once more and keep the quieter run.
    let report = nmad_bench::report::retry_once_on_timing(
        "ablate_obs",
        nmad_bench::obs_bench::run(smoke),
        |r| {
            let v = nmad_bench::obs_bench::check(r);
            !v.is_empty() && v.iter().all(|s| s.contains("overhead"))
        },
        || nmad_bench::obs_bench::run(smoke),
        |second, first| {
            second
                .aggregate_overhead_pct
                .max(second.aggregate_full_overhead_pct)
                < first
                    .aggregate_overhead_pct
                    .max(first.aggregate_full_overhead_pct)
        },
    );
    println!("{}", nmad_bench::obs_bench::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("obs", &bytes);

    // The full-stack leg's windowed time series is the CI artifact that
    // rides alongside the gate JSON.
    let ts_path = nmad_bench::report::repo_root_dir().join("BENCH_obs_timeseries.jsonl");
    match std::fs::write(&ts_path, report.timeseries_jsonl.as_bytes()) {
        Ok(()) => eprintln!("wrote {}", ts_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", ts_path.display()),
    }

    let violations = nmad_bench::obs_bench::check(&report);
    if !violations.is_empty() {
        eprintln!("observability overhead budget violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "observability overhead OK: recorder {:.2}%, full stack {:.2}% (budget {:.0}%), 0 hot-path allocs",
        report.aggregate_overhead_pct, report.aggregate_full_overhead_pct, report.budget_pct
    );
}
