//! Regenerates the paper's fig6_aggregate series. Run with `cargo bench -p nmad-bench --bench fig6_aggregate`.

fn main() {
    nmad_bench::report::run_figure_bench("fig6_aggregate", nmad_bench::figures::fig6_aggregate);
}
