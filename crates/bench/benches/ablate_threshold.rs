//! Regenerates the paper's ablate_threshold series. Run with `cargo bench -p nmad-bench --bench ablate_threshold`.

fn main() {
    nmad_bench::report::run_figure_bench("ablate_threshold", nmad_bench::figures::ablate_threshold);
}
