//! Regenerates the ablate_cores series. Run with `cargo bench -p nmad-bench --bench ablate_cores`.

fn main() {
    nmad_bench::report::run_figure_bench("ablate_cores", nmad_bench::figures::ablate_cores);
}
