//! Regenerates the paper's fig5_greedy4 series. Run with `cargo bench -p nmad-bench --bench fig5_greedy4`.

fn main() {
    nmad_bench::report::run_figure_bench("fig5_greedy4", nmad_bench::figures::fig5_greedy4);
}
