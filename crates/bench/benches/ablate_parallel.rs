//! Lock-contention gate: drives the same wire-paced workload through the
//! single-lock discipline and the sharded parallel pipeline and fails if
//! the multi-rail speedup falls under the gate. Run with
//! `cargo bench -p nmad-bench --bench ablate_parallel`.
//! Set `NMAD_PARALLEL_SMOKE=1` for the small CI sweep.

fn main() {
    let smoke = std::env::var("NMAD_PARALLEL_SMOKE").is_ok_and(|v| v != "0");
    eprintln!(
        "running ablate_parallel ({} sweep, wire-paced wall-clock)...",
        if smoke { "smoke" } else { "full" }
    );
    // Shared noise policy (see nmad_bench::report): if ONLY the speedup
    // gate trips (completion and rail coverage are deterministic),
    // measure once more and keep the faster run.
    let report = nmad_bench::report::retry_once_on_timing(
        "ablate_parallel",
        nmad_bench::parallel::run(smoke),
        |r| {
            let v = nmad_bench::parallel::check(r);
            !v.is_empty() && v.iter().all(|s| s.contains("speedup"))
        },
        || nmad_bench::parallel::run(smoke),
        |second, first| second.multi_rail_speedup > first.multi_rail_speedup,
    );
    println!("{}", nmad_bench::parallel::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("parallel", &bytes);

    let violations = nmad_bench::parallel::check(&report);
    if !violations.is_empty() {
        eprintln!("lock-contention gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "lock-contention gate OK: {:.2}x multi-rail speedup (gate {:.1}x)",
        report.multi_rail_speedup, report.speedup_gate
    );
}
