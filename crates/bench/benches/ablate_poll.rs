//! Regenerates the paper's ablate_poll series. Run with `cargo bench -p nmad-bench --bench ablate_poll`.

fn main() {
    nmad_bench::report::run_figure_bench("ablate_poll", nmad_bench::figures::ablate_poll);
}
