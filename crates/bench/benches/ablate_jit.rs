//! Just-in-time (NIC-idle-driven) scheduling vs static round-robin rail
//! binding, on bursty mixed-size workloads (§3.5: "we take our scheduling
//! decisions just-in-time"). Run with
//! `cargo bench -p nmad-bench --bench ablate_jit`.

use nmad_bench::workload::{burst_comparison, render_burst_table, BurstPattern, BurstSpec};

fn main() {
    println!("=== ablate_jit — just-in-time vs static rail binding ===");
    for (pattern, messages, label) in [
        (
            BurstPattern::UniformLarge,
            3usize,
            "3 x 2MiB, slow rail listed first",
        ),
        (
            BurstPattern::AlternatingLargeSmall,
            24,
            "alternating 2MiB/4KiB",
        ),
        (BurstPattern::Mixed, 24, "random mix"),
    ] {
        println!("--- {label} ---");
        let spec = BurstSpec {
            messages,
            seed: 2007,
            small_fraction: 0.5,
            pattern,
            slow_rail_first: pattern == BurstPattern::UniformLarge,
        };
        let rows = burst_comparison(&spec);
        println!("{}", render_burst_table(&spec, &rows));
    }
    println!(
        "static-round-robin binds work at submission and regularly parks\n\
         bytes on the slow rail while the fast one idles; the just-in-time\n\
         strategies (greedy and later) decide at NIC-idle instants instead."
    );
}
