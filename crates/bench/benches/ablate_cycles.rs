//! Per-packet CPU-cycles gate: checksum kernel throughput, syscalls per
//! packet under batched rail I/O, pool-magazine hit rate, and the
//! end-to-end scalar-vs-SIMD per-message cost. Run with
//! `cargo bench -p nmad-bench --bench ablate_cycles`.
//! Set `NMAD_CYCLES_SMOKE=1` for the small CI sweep.

fn main() {
    let smoke = std::env::var("NMAD_CYCLES_SMOKE").is_ok_and(|v| v != "0");
    eprintln!(
        "running ablate_cycles ({} sweep, wall-clock hot path)...",
        if smoke { "smoke" } else { "full" }
    );
    // Shared noise policy (see nmad_bench::report): if ONLY the
    // load-sensitive gates trip (kernel speedups, syscall ratio,
    // per-packet CPU), measure once more and keep the run with fewer
    // violations. Coverage gates (completion, magazine traffic) are
    // deterministic and never retried.
    let report = nmad_bench::report::retry_once_on_timing(
        "ablate_cycles",
        nmad_bench::cycles::run(smoke),
        |r| {
            let v = nmad_bench::cycles::check(r);
            !v.is_empty()
                && v.iter().all(|s| {
                    s.contains("speedup") || s.contains("syscalls") || s.contains("per-packet")
                })
        },
        || nmad_bench::cycles::run(smoke),
        |second, first| {
            nmad_bench::cycles::check(second).len() < nmad_bench::cycles::check(first).len()
        },
    );
    println!("{}", nmad_bench::cycles::render(&report));

    let bytes = serde_json::to_vec_pretty(&report).expect("serializable");
    nmad_bench::report::write_gate_json("cycles", &bytes);

    let violations = nmad_bench::cycles::check(&report);
    if !violations.is_empty() {
        eprintln!("per-packet cycles gate violated:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "per-packet cycles gate OK: {:.3} tx syscalls/pkt, {:.1}% magazine hits, \
         {} {:.1}x faster than scalar end to end",
        report.syscalls.tx_per_packet(),
        report.magazine.hit_rate * 100.0,
        report.per_packet.fast_kernel,
        report.per_packet.scalar_ns as f64 / report.per_packet.fast_ns.max(1) as f64
    );
}
