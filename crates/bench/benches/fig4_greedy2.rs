//! Regenerates the paper's fig4_greedy2 series. Run with `cargo bench -p nmad-bench --bench fig4_greedy2`.

fn main() {
    nmad_bench::report::run_figure_bench("fig4_greedy2", nmad_bench::figures::fig4_greedy2);
}
