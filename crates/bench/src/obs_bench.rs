//! Flight-recorder overhead accounting (the `ablate_obs` target).
//!
//! Observability is only free if the hot path stays hot. This ablation
//! drives a raw engine pair (no simulator — the simulator charges virtual
//! time, which hides real CPU cost) through the bandwidth ladder twice,
//! once with the flight recorder disabled and once with a recording ring,
//! and compares wall-clock time. Each point interleaves many single-message
//! timings of the two legs and keeps the per-leg minimum, so scheduler
//! noise (strictly additive) does not masquerade as overhead.
//!
//! The ladder runs **three** legs per point: recorder off, recorder on,
//! and the full continuous-telemetry stack (recorder + windowed
//! aggregator + SLO watchdog, folded once per message the way a progress
//! pass folds once per scheduler iteration). The run doubles as a
//! regression gate (used by `scripts/verify.sh`): [`check`] fails if
//! recording alone — or the full stack — costs more than
//! [`OVERHEAD_BUDGET_PCT`] of the disabled-recorder throughput in
//! aggregate, if the ring or the aggregator took any hot-path allocation
//! (both are preallocated; growing means the fixed-footprint claim
//! broke), or if nothing was recorded/aggregated at all. The result is
//! written to `BENCH_obs.json` at the repo root; the full-stack leg's
//! time series rides along as a JSONL artifact.

use std::time::Instant;

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::{EngineConfig, StrategyKind, TelemetryConfig, WatchdogConfig};
use nmad_model::{platform, RailId};
use serde::{ser, Serialize, Value};

use crate::report::{lower_quartile_mean, mix};

/// Maximum tolerated aggregate wall-clock overhead of recording, percent.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Ring capacity used for the recorder-enabled legs.
pub const RECORD_CAPACITY: usize = 16_384;

/// Telemetry window used by the full-stack leg, ns. Short enough that a
/// ladder point closes many windows (window rotation is part of the cost
/// being measured), long enough to stay realistic.
pub const TELEMETRY_WINDOW_NS: u64 = 1_000_000;

/// One ladder point: the same workload timed without recording, with the
/// recorder ring, and with the full telemetry stack.
#[derive(Clone, Debug)]
pub struct ObsPoint {
    /// Message size in bytes.
    pub size: u64,
    /// Interleaved samples taken per leg.
    pub iters: usize,
    /// Lowest-quartile-mean single-message wall-clock, recorder off, ns.
    pub ns_off: u64,
    /// Lowest-quartile-mean single-message wall-clock with a 16 Ki-event
    /// ring enabled, ns.
    pub ns_on: u64,
    /// Lowest-quartile-mean single-message wall-clock with the ring, the
    /// windowed aggregator, and the watchdog all enabled, ns.
    pub ns_full: u64,
}

impl ObsPoint {
    /// Recording overhead of this point, percent (negative = noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.ns_off == 0 {
            return 0.0;
        }
        (self.ns_on as f64 - self.ns_off as f64) * 100.0 / self.ns_off as f64
    }

    /// Full-stack (recorder + aggregator + watchdog) overhead, percent.
    pub fn full_overhead_pct(&self) -> f64 {
        if self.ns_off == 0 {
            return 0.0;
        }
        (self.ns_full as f64 - self.ns_off as f64) * 100.0 / self.ns_off as f64
    }
}

impl Serialize for ObsPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("size", ser::v(&self.size)),
            ("iters", ser::v(&self.iters)),
            ("ns_off", ser::v(&self.ns_off)),
            ("ns_on", ser::v(&self.ns_on)),
            ("ns_full", ser::v(&self.ns_full)),
            ("overhead_pct", ser::v(&self.overhead_pct())),
            ("full_overhead_pct", ser::v(&self.full_overhead_pct())),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// One point per ladder size.
    pub points: Vec<ObsPoint>,
    /// `(Σ ns_on - Σ ns_off) / Σ ns_off`, percent.
    pub aggregate_overhead_pct: f64,
    /// `(Σ ns_full - Σ ns_off) / Σ ns_off`, percent: recorder +
    /// aggregator + watchdog combined.
    pub aggregate_full_overhead_pct: f64,
    /// Ring growth observed across every recorder-enabled run (must be 0:
    /// the ring is preallocated and records are fixed-size).
    pub hot_path_allocs: u64,
    /// Aggregator capacity growth across the full-stack legs (must be 0:
    /// windows rotate by swap, never by allocation).
    pub telemetry_allocs: u64,
    /// Events landed in the rings over the recorder-enabled legs.
    pub events_recorded: u64,
    /// Telemetry windows closed across the full-stack legs.
    pub telemetry_windows: u64,
    /// The gate applied by [`check`].
    pub budget_pct: f64,
    /// Time series (windows JSONL) from the last ladder point's
    /// full-stack leg — the CI artifact. Not serialized into the gate
    /// JSON; written alongside it.
    pub timeseries_jsonl: String,
}

impl Serialize for ObsReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("points", ser::v(&self.points)),
            (
                "aggregate_overhead_pct",
                ser::v(&self.aggregate_overhead_pct),
            ),
            (
                "aggregate_full_overhead_pct",
                ser::v(&self.aggregate_full_overhead_pct),
            ),
            ("hot_path_allocs", ser::v(&self.hot_path_allocs)),
            ("telemetry_allocs", ser::v(&self.telemetry_allocs)),
            ("events_recorded", ser::v(&self.events_recorded)),
            ("telemetry_windows", ser::v(&self.telemetry_windows)),
            ("budget_pct", ser::v(&self.budget_pct)),
        ])
    }
}

fn engine_pair(record_capacity: usize, telemetry: bool) -> (Engine, Engine) {
    let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    cfg.acked = true; // acks + RTT samples exercise the reliability events
    cfg.record_capacity = record_capacity;
    if telemetry {
        cfg.telemetry = TelemetryConfig {
            window_ns: TELEMETRY_WINDOW_NS,
            windows: 64,
        };
        cfg.watchdog = WatchdogConfig {
            enabled: true,
            ..WatchdogConfig::default()
        };
    }
    let mk = || Engine::new(cfg.clone(), platform::paper_platform().rails, vec![]);
    let (mut a, mut b) = (mk(), mk());
    a.conn_open();
    b.conn_open();
    (a, b)
}

/// Drive both engines until neither makes progress.
fn pump(a: &mut Engine, b: &mut Engine) {
    for _ in 0..1_000_000 {
        let mut progressed = false;
        for dir in 0..2 {
            let (tx, rx) = if dir == 0 {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).expect("tx_done");
                    rx.on_frame(rail, &d.frame).expect("on_frame");
                }
            }
        }
        if !progressed {
            return;
        }
    }
    panic!("engines did not quiesce");
}

/// Send one message through the pair and return its wall-clock ns.
///
/// Every leg ends with one clock advance + telemetry fold, exactly the
/// amortized work a scheduler pass performs; on the off/recorder legs the
/// fold is a no-op, so the legs stay symmetric and the measured delta is
/// genuinely the aggregator's cost. `clock` accumulates real elapsed ns
/// so telemetry windows open and close at their configured cadence.
fn one_msg(a: &mut Engine, b: &mut Engine, payload: &Bytes, clock: &mut u64) -> u64 {
    let start = Instant::now();
    b.post_recv(0);
    a.submit_send(0, vec![payload.clone()]);
    pump(a, b);
    *clock += start.elapsed().as_nanos() as u64;
    a.observe_clock(*clock);
    b.observe_clock(*clock);
    a.fold_telemetry();
    b.fold_telemetry();
    start.elapsed().as_nanos() as u64
}

/// Counters pulled off a point's recorder-enabled legs after timing.
struct PointCounters {
    allocs: u64,
    events: u64,
    telemetry_allocs: u64,
    telemetry_windows: u64,
    timeseries_jsonl: String,
}

/// One ladder point: `samples` single-message timings per leg, finely
/// interleaved so a background-noise burst taxes all legs alike;
/// scheduler noise is strictly additive, so the mean of each leg's
/// lowest-quartile samples is the noise-free estimate. Also returns the
/// recorder/telemetry counters from the instrumented legs.
fn measure_point(size: usize, samples: usize) -> (ObsPoint, PointCounters) {
    let (mut a_off, mut b_off) = engine_pair(0, false);
    let (mut a_on, mut b_on) = engine_pair(RECORD_CAPACITY, false);
    let (mut a_full, mut b_full) = engine_pair(RECORD_CAPACITY, true);
    let payload = Bytes::from(vec![0x5Au8; size]);
    let (mut c_off, mut c_on, mut c_full) = (0u64, 0u64, 0u64);
    // Warm all pairs (allocator, page faults, sampling-table paths).
    one_msg(&mut a_off, &mut b_off, &payload, &mut c_off);
    one_msg(&mut a_on, &mut b_on, &payload, &mut c_on);
    one_msg(&mut a_full, &mut b_full, &payload, &mut c_full);
    let mut off = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    let mut full = Vec::with_capacity(samples);
    for i in 0..samples {
        // Pseudo-random leg rotation (SplitMix64) so periodic system
        // noise (scheduler ticks, frequency scaling) cannot phase-lock
        // onto one leg of a fixed alternation.
        let legs: [usize; 3] = match mix(i as u64) % 3 {
            0 => [0, 1, 2],
            1 => [1, 2, 0],
            _ => [2, 0, 1],
        };
        for leg in legs {
            match leg {
                0 => off.push(one_msg(&mut a_off, &mut b_off, &payload, &mut c_off)),
                1 => on.push(one_msg(&mut a_on, &mut b_on, &payload, &mut c_on)),
                _ => full.push(one_msg(&mut a_full, &mut b_full, &payload, &mut c_full)),
            }
        }
    }
    let allocs = a_on.recorder().hot_path_allocs()
        + b_on.recorder().hot_path_allocs()
        + a_full.recorder().hot_path_allocs()
        + b_full.recorder().hot_path_allocs();
    let events = a_on.recorder().total_recorded() + b_on.recorder().total_recorded();
    let agg =
        |e: &Engine, f: fn(&nmad_core::TelemetryAggregator) -> u64| e.telemetry().map_or(0, f);
    let counters = PointCounters {
        allocs,
        events,
        telemetry_allocs: agg(&a_full, |t| t.hot_path_allocs())
            + agg(&b_full, |t| t.hot_path_allocs()),
        telemetry_windows: agg(&a_full, |t| t.windows_closed())
            + agg(&b_full, |t| t.windows_closed()),
        timeseries_jsonl: a_full
            .telemetry()
            .map(nmad_core::obs::windows_jsonl)
            .unwrap_or_default(),
    };
    (
        ObsPoint {
            size: size as u64,
            iters: samples,
            ns_off: lower_quartile_mean(&mut off),
            ns_on: lower_quartile_mean(&mut on),
            ns_full: lower_quartile_mean(&mut full),
        },
        counters,
    )
}

/// Run the ablation. `smoke` shrinks the ladder and repetition count for
/// the CI gate.
pub fn run(smoke: bool) -> ObsReport {
    let sizes: Vec<u64> = if smoke {
        vec![4 << 10, 64 << 10, 1 << 20]
    } else {
        nmad_runtime_sim::bandwidth_sizes()
    };
    let mut points = Vec::new();
    let (mut allocs, mut events) = (0u64, 0u64);
    let (mut t_allocs, mut t_windows) = (0u64, 0u64);
    let mut timeseries = String::new();
    for &size in &sizes {
        // Scale the sample count so every point does comparable work:
        // many short interleaved samples beat a few long windows, because
        // the per-leg minimum only needs ONE noise-free sample per leg.
        let per_point: u64 = if smoke { 64 << 20 } else { 128 << 20 };
        let samples = (per_point / size).clamp(128, 4096) as usize;
        let (p, c) = measure_point(size as usize, samples);
        allocs += c.allocs;
        events += c.events;
        t_allocs += c.telemetry_allocs;
        t_windows += c.telemetry_windows;
        if !c.timeseries_jsonl.is_empty() {
            timeseries = c.timeseries_jsonl;
        }
        points.push(p);
    }

    let sum_off: u64 = points.iter().map(|p| p.ns_off).sum();
    let sum_on: u64 = points.iter().map(|p| p.ns_on).sum();
    let sum_full: u64 = points.iter().map(|p| p.ns_full).sum();
    let agg = |sum: u64| {
        if sum_off == 0 {
            0.0
        } else {
            (sum as f64 - sum_off as f64) * 100.0 / sum_off as f64
        }
    };
    ObsReport {
        points,
        aggregate_overhead_pct: agg(sum_on),
        aggregate_full_overhead_pct: agg(sum_full),
        hot_path_allocs: allocs,
        telemetry_allocs: t_allocs,
        events_recorded: events,
        telemetry_windows: t_windows,
        budget_pct: OVERHEAD_BUDGET_PCT,
        timeseries_jsonl: timeseries,
    }
}

/// Gate violations (empty = within budget).
pub fn check(report: &ObsReport) -> Vec<String> {
    let mut v = Vec::new();
    if report.aggregate_overhead_pct > report.budget_pct {
        v.push(format!(
            "recorder overhead {:.2}% exceeds the {:.0}% budget",
            report.aggregate_overhead_pct, report.budget_pct
        ));
    }
    if report.aggregate_full_overhead_pct > report.budget_pct {
        v.push(format!(
            "telemetry-stack overhead {:.2}% exceeds the {:.0}% budget",
            report.aggregate_full_overhead_pct, report.budget_pct
        ));
    }
    if report.hot_path_allocs != 0 {
        v.push(format!(
            "{} hot-path allocations attributable to the recorder (ring must stay preallocated)",
            report.hot_path_allocs
        ));
    }
    if report.telemetry_allocs != 0 {
        v.push(format!(
            "{} hot-path allocations attributable to the aggregator (windows must rotate by swap)",
            report.telemetry_allocs
        ));
    }
    if report.events_recorded == 0 {
        v.push("recorder-enabled legs recorded no events".into());
    }
    if report.telemetry_windows == 0 {
        v.push("full-stack legs closed no telemetry windows".into());
    }
    v
}

/// Human-readable table.
pub fn render(report: &ObsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "size", "msgs", "off (us)", "on (us)", "full (us)", "recorder", "telemetry"
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:>10} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>9.2}% {:>9.2}%",
            p.size,
            p.iters,
            p.ns_off as f64 / 1e3,
            p.ns_on as f64 / 1e3,
            p.ns_full as f64 / 1e3,
            p.overhead_pct(),
            p.full_overhead_pct()
        );
    }
    let _ = writeln!(
        out,
        "aggregate overhead: recorder {:.2}%, full stack {:.2}% (budget {:.0}%)",
        report.aggregate_overhead_pct, report.aggregate_full_overhead_pct, report.budget_pct
    );
    let _ = writeln!(
        out,
        "{} events recorded, {} telemetry windows, {}+{} hot-path allocs",
        report.events_recorded,
        report.telemetry_windows,
        report.hot_path_allocs,
        report.telemetry_allocs
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_flags_budget_and_allocs() {
        let mut r = ObsReport {
            points: vec![],
            aggregate_overhead_pct: 9.0,
            aggregate_full_overhead_pct: 9.0,
            hot_path_allocs: 2,
            telemetry_allocs: 1,
            events_recorded: 0,
            telemetry_windows: 0,
            budget_pct: OVERHEAD_BUDGET_PCT,
            timeseries_jsonl: String::new(),
        };
        assert_eq!(check(&r).len(), 6);
        r.aggregate_overhead_pct = 1.0;
        r.aggregate_full_overhead_pct = 2.0;
        r.hot_path_allocs = 0;
        r.telemetry_allocs = 0;
        r.events_recorded = 10;
        r.telemetry_windows = 4;
        assert!(check(&r).is_empty());
    }

    #[test]
    fn one_point_measures_and_records() {
        let (p, c) = measure_point(64 << 10, 2);
        assert!(p.ns_off > 0 && p.ns_on > 0 && p.ns_full > 0);
        assert_eq!(c.allocs, 0, "ring must never grow");
        assert_eq!(c.telemetry_allocs, 0, "windows must rotate by swap");
        assert!(c.events > 0, "recording must capture the transfer");
    }
}
