//! Flight-recorder overhead accounting (the `ablate_obs` target).
//!
//! Observability is only free if the hot path stays hot. This ablation
//! drives a raw engine pair (no simulator — the simulator charges virtual
//! time, which hides real CPU cost) through the bandwidth ladder twice,
//! once with the flight recorder disabled and once with a recording ring,
//! and compares wall-clock time. Each point interleaves many single-message
//! timings of the two legs and keeps the per-leg minimum, so scheduler
//! noise (strictly additive) does not masquerade as overhead.
//!
//! The run doubles as a regression gate (used by `scripts/verify.sh`):
//! [`check`] fails if recording costs more than [`OVERHEAD_BUDGET_PCT`]
//! of the disabled-recorder throughput in aggregate, if the ring took any
//! hot-path allocation (the ring is preallocated; growing it means the
//! fixed-size-record claim broke), or if nothing was recorded at all.
//! The result is written to `target/figures/BENCH_obs.json`.

use std::time::Instant;

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::{platform, RailId};
use serde::{ser, Serialize, Value};

use crate::report::{lower_quartile_mean, mix};

/// Maximum tolerated aggregate wall-clock overhead of recording, percent.
pub const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Ring capacity used for the recorder-enabled leg.
pub const RECORD_CAPACITY: usize = 16_384;

/// One ladder point: the same workload timed with and without recording.
#[derive(Clone, Debug)]
pub struct ObsPoint {
    /// Message size in bytes.
    pub size: u64,
    /// Interleaved samples taken per leg.
    pub iters: usize,
    /// Lowest-quartile-mean single-message wall-clock, recorder off, ns.
    pub ns_off: u64,
    /// Lowest-quartile-mean single-message wall-clock with a 16 Ki-event
    /// ring enabled, ns.
    pub ns_on: u64,
}

impl ObsPoint {
    /// Recording overhead of this point, percent (negative = noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.ns_off == 0 {
            return 0.0;
        }
        (self.ns_on as f64 - self.ns_off as f64) * 100.0 / self.ns_off as f64
    }
}

impl Serialize for ObsPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("size", ser::v(&self.size)),
            ("iters", ser::v(&self.iters)),
            ("ns_off", ser::v(&self.ns_off)),
            ("ns_on", ser::v(&self.ns_on)),
            ("overhead_pct", ser::v(&self.overhead_pct())),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// One point per ladder size.
    pub points: Vec<ObsPoint>,
    /// `(Σ ns_on - Σ ns_off) / Σ ns_off`, percent.
    pub aggregate_overhead_pct: f64,
    /// Ring growth observed across every recorder-enabled run (must be 0:
    /// the ring is preallocated and records are fixed-size).
    pub hot_path_allocs: u64,
    /// Events landed in the rings over the recorder-enabled legs.
    pub events_recorded: u64,
    /// The gate applied by [`check`].
    pub budget_pct: f64,
}

impl Serialize for ObsReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("points", ser::v(&self.points)),
            (
                "aggregate_overhead_pct",
                ser::v(&self.aggregate_overhead_pct),
            ),
            ("hot_path_allocs", ser::v(&self.hot_path_allocs)),
            ("events_recorded", ser::v(&self.events_recorded)),
            ("budget_pct", ser::v(&self.budget_pct)),
        ])
    }
}

fn engine_pair(record_capacity: usize) -> (Engine, Engine) {
    let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    cfg.acked = true; // acks + RTT samples exercise the reliability events
    cfg.record_capacity = record_capacity;
    let mk = || Engine::new(cfg.clone(), platform::paper_platform().rails, vec![]);
    let (mut a, mut b) = (mk(), mk());
    a.conn_open();
    b.conn_open();
    (a, b)
}

/// Drive both engines until neither makes progress.
fn pump(a: &mut Engine, b: &mut Engine) {
    for _ in 0..1_000_000 {
        let mut progressed = false;
        for dir in 0..2 {
            let (tx, rx) = if dir == 0 {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).expect("tx_done");
                    rx.on_frame(rail, &d.frame).expect("on_frame");
                }
            }
        }
        if !progressed {
            return;
        }
    }
    panic!("engines did not quiesce");
}

/// Send one message through the pair and return its wall-clock ns.
fn one_msg(a: &mut Engine, b: &mut Engine, payload: &Bytes) -> u64 {
    let start = Instant::now();
    b.post_recv(0);
    a.submit_send(0, vec![payload.clone()]);
    pump(a, b);
    start.elapsed().as_nanos() as u64
}

/// One ladder point: `samples` single-message timings per leg, finely
/// interleaved (off, on, off, on, ...) so a background-noise burst taxes
/// both legs alike; scheduler noise is strictly additive, so the mean of
/// each leg's lowest-quartile samples is the noise-free estimate. Also
/// returns the on-leg's alloc/event counters.
fn measure_point(size: usize, samples: usize) -> (ObsPoint, u64, u64) {
    let (mut a_off, mut b_off) = engine_pair(0);
    let (mut a_on, mut b_on) = engine_pair(RECORD_CAPACITY);
    let payload = Bytes::from(vec![0x5Au8; size]);
    // Warm both pairs (allocator, page faults, sampling-table paths).
    one_msg(&mut a_off, &mut b_off, &payload);
    one_msg(&mut a_on, &mut b_on, &payload);
    let mut off = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    for i in 0..samples {
        // Pseudo-random leg order (SplitMix64 parity) so periodic system
        // noise (scheduler ticks, frequency scaling) cannot phase-lock
        // onto one leg of a fixed alternation.
        if mix(i as u64) & 1 == 0 {
            off.push(one_msg(&mut a_off, &mut b_off, &payload));
            on.push(one_msg(&mut a_on, &mut b_on, &payload));
        } else {
            on.push(one_msg(&mut a_on, &mut b_on, &payload));
            off.push(one_msg(&mut a_off, &mut b_off, &payload));
        }
    }
    let allocs = a_on.recorder().hot_path_allocs() + b_on.recorder().hot_path_allocs();
    let events = a_on.recorder().total_recorded() + b_on.recorder().total_recorded();
    (
        ObsPoint {
            size: size as u64,
            iters: samples,
            ns_off: lower_quartile_mean(&mut off),
            ns_on: lower_quartile_mean(&mut on),
        },
        allocs,
        events,
    )
}

/// Run the ablation. `smoke` shrinks the ladder and repetition count for
/// the CI gate.
pub fn run(smoke: bool) -> ObsReport {
    let sizes: Vec<u64> = if smoke {
        vec![4 << 10, 64 << 10, 1 << 20]
    } else {
        nmad_runtime_sim::bandwidth_sizes()
    };
    let mut points = Vec::new();
    let (mut allocs, mut events) = (0u64, 0u64);
    for &size in &sizes {
        // Scale the sample count so every point does comparable work:
        // many short interleaved samples beat a few long windows, because
        // the per-leg minimum only needs ONE noise-free sample per leg.
        let per_point: u64 = if smoke { 64 << 20 } else { 128 << 20 };
        let samples = (per_point / size).clamp(128, 4096) as usize;
        let (p, al, ev) = measure_point(size as usize, samples);
        allocs += al;
        events += ev;
        points.push(p);
    }

    let sum_off: u64 = points.iter().map(|p| p.ns_off).sum();
    let sum_on: u64 = points.iter().map(|p| p.ns_on).sum();
    let aggregate = if sum_off == 0 {
        0.0
    } else {
        (sum_on as f64 - sum_off as f64) * 100.0 / sum_off as f64
    };
    ObsReport {
        points,
        aggregate_overhead_pct: aggregate,
        hot_path_allocs: allocs,
        events_recorded: events,
        budget_pct: OVERHEAD_BUDGET_PCT,
    }
}

/// Gate violations (empty = within budget).
pub fn check(report: &ObsReport) -> Vec<String> {
    let mut v = Vec::new();
    if report.aggregate_overhead_pct > report.budget_pct {
        v.push(format!(
            "recorder overhead {:.2}% exceeds the {:.0}% budget",
            report.aggregate_overhead_pct, report.budget_pct
        ));
    }
    if report.hot_path_allocs != 0 {
        v.push(format!(
            "{} hot-path allocations attributable to the recorder (ring must stay preallocated)",
            report.hot_path_allocs
        ));
    }
    if report.events_recorded == 0 {
        v.push("recorder-enabled legs recorded no events".into());
    }
    v
}

/// Human-readable table.
pub fn render(report: &ObsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>12} {:>12} {:>10}",
        "size", "msgs", "off (us)", "on (us)", "overhead"
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:>10} {:>7} {:>12.1} {:>12.1} {:>9.2}%",
            p.size,
            p.iters,
            p.ns_off as f64 / 1e3,
            p.ns_on as f64 / 1e3,
            p.overhead_pct()
        );
    }
    let _ = writeln!(
        out,
        "aggregate overhead {:.2}% (budget {:.0}%), {} events recorded, {} hot-path allocs",
        report.aggregate_overhead_pct,
        report.budget_pct,
        report.events_recorded,
        report.hot_path_allocs
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_flags_budget_and_allocs() {
        let mut r = ObsReport {
            points: vec![],
            aggregate_overhead_pct: 9.0,
            hot_path_allocs: 2,
            events_recorded: 0,
            budget_pct: OVERHEAD_BUDGET_PCT,
        };
        assert_eq!(check(&r).len(), 3);
        r.aggregate_overhead_pct = 1.0;
        r.hot_path_allocs = 0;
        r.events_recorded = 10;
        assert!(check(&r).is_empty());
    }

    #[test]
    fn one_point_measures_and_records() {
        let (p, allocs, events) = measure_point(64 << 10, 2);
        assert!(p.ns_off > 0 && p.ns_on > 0);
        assert_eq!(allocs, 0, "ring must never grow");
        assert!(events > 0, "recording must capture the transfer");
    }
}
