//! Copy accounting across the datapath (the `ablate_zero_copy` target).
//!
//! Runs the Fig. 7 workload (single-segment adaptive splitting over the
//! paper platform) plus an aggregation-heavy workload, reads the engine's
//! [`DataPathStats`], and compares against a model of the pre-
//! scatter-gather pipeline, where *every* payload byte was copied once at
//! encode (`Bytes::copy_from_slice` into the wire buffer) and once more at
//! the receive-side flatten. The result is written to
//! `target/figures/BENCH_datapath.json` so the copy trajectory is tracked
//! across PRs.
//!
//! The run doubles as a regression gate (used by `scripts/verify.sh`):
//! [`check`] fails if the large-message split path stages any bytes, or if
//! the pipeline no longer beats the legacy model by at least 2x.

use nmad_core::{DataPathStats, EngineConfig, EngineStats, StrategyKind};
use nmad_model::platform;
use nmad_runtime_sim::{bandwidth_sizes, run_pingpong, PingPongSpec};
use serde::{ser, Serialize, Value};

/// Copy accounting for one workload point.
#[derive(Clone, Debug)]
pub struct DataPathPoint {
    /// Workload label.
    pub label: String,
    /// Total message size in bytes.
    pub size: u64,
    /// Segments per message.
    pub segments: usize,
    /// Bytes actually copied on the hot path (aggregation staging +
    /// receive-side copies).
    pub copied_bytes: u64,
    /// Bytes staged for sub-PIO aggregation specifically.
    pub staged_copy_bytes: u64,
    /// Bytes moved as refcounted slices without copying.
    pub zero_copy_bytes: u64,
    /// What the pre-scatter-gather pipeline would have copied: every tx
    /// payload byte once at encode, every rx payload byte once at flatten.
    pub legacy_copied_bytes: u64,
    /// Allocations the buffer pool could not serve from its free list.
    pub hot_path_allocs: u64,
    /// Allocations served from the pool.
    pub pool_hits: u64,
}

impl DataPathPoint {
    fn from_stats(label: String, size: u64, segments: usize, stats: &EngineStats) -> Self {
        let d: &DataPathStats = &stats.datapath;
        let tx_total = d.tx_staged_copy_bytes + d.tx_zero_copy_bytes;
        let rx_total = d.rx_copy_bytes + d.rx_zero_copy_bytes;
        DataPathPoint {
            label,
            size,
            segments,
            copied_bytes: d.total_copied_bytes(),
            staged_copy_bytes: d.tx_staged_copy_bytes,
            zero_copy_bytes: d.tx_zero_copy_bytes + d.rx_zero_copy_bytes,
            legacy_copied_bytes: tx_total + rx_total,
            hot_path_allocs: d.hot_path_allocs,
            pool_hits: d.pool_hits,
        }
    }
}

impl Serialize for DataPathPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("label", ser::v(&self.label)),
            ("size", ser::v(&self.size)),
            ("segments", ser::v(&self.segments)),
            ("copied_bytes", ser::v(&self.copied_bytes)),
            ("staged_copy_bytes", ser::v(&self.staged_copy_bytes)),
            ("zero_copy_bytes", ser::v(&self.zero_copy_bytes)),
            ("legacy_copied_bytes", ser::v(&self.legacy_copied_bytes)),
            ("hot_path_allocs", ser::v(&self.hot_path_allocs)),
            ("pool_hits", ser::v(&self.pool_hits)),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct DataPathReport {
    /// One point per workload.
    pub points: Vec<DataPathPoint>,
    /// Sum of `copied_bytes` over all points.
    pub total_copied_bytes: u64,
    /// Sum of `legacy_copied_bytes` over all points.
    pub total_legacy_copied_bytes: u64,
    /// `total_legacy_copied_bytes / total_copied_bytes` (capped when the
    /// denominator is zero).
    pub reduction_factor: f64,
}

impl Serialize for DataPathReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("points", ser::v(&self.points)),
            ("total_copied_bytes", ser::v(&self.total_copied_bytes)),
            (
                "total_legacy_copied_bytes",
                ser::v(&self.total_legacy_copied_bytes),
            ),
            ("reduction_factor", ser::v(&self.reduction_factor)),
        ])
    }
}

fn split_point(size: u64) -> DataPathPoint {
    let spec = PingPongSpec::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        size as usize,
    );
    let r = run_pingpong(&spec);
    DataPathPoint::from_stats(
        format!("adaptive split, 1 segment, {size} B"),
        size,
        1,
        &r.sender_stats,
    )
}

fn aggregate_point(size: u64, segments: usize) -> DataPathPoint {
    let spec = PingPongSpec::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AggregateEager),
        size as usize,
    )
    .with_segments(segments);
    let r = run_pingpong(&spec);
    DataPathPoint::from_stats(
        format!("aggregate eager, {segments} segments, {size} B"),
        size,
        segments,
        &r.sender_stats,
    )
}

/// Run the ablation. `smoke` shrinks the sweep for CI.
pub fn run(smoke: bool) -> DataPathReport {
    let split_sizes: Vec<u64> = if smoke {
        vec![64 << 10, 1 << 20]
    } else {
        bandwidth_sizes()
    };
    let mut points: Vec<DataPathPoint> = split_sizes.into_iter().map(split_point).collect();
    // Aggregation workload: sub-PIO segments are the one place staging
    // copies are allowed (see DESIGN.md "Datapath and copy discipline").
    points.push(aggregate_point(1 << 10, 4));
    if !smoke {
        points.push(aggregate_point(4 << 10, 8));
    }
    let total_copied_bytes: u64 = points.iter().map(|p| p.copied_bytes).sum();
    let total_legacy_copied_bytes: u64 = points.iter().map(|p| p.legacy_copied_bytes).sum();
    let reduction_factor = if total_copied_bytes == 0 {
        f64::INFINITY
    } else {
        total_legacy_copied_bytes as f64 / total_copied_bytes as f64
    };
    DataPathReport {
        points,
        total_copied_bytes,
        total_legacy_copied_bytes,
        reduction_factor,
    }
}

/// The regression gate: returns every violated budget, empty when clean.
pub fn check(report: &DataPathReport) -> Vec<String> {
    let mut violations = Vec::new();
    for p in &report.points {
        // Messages above the PIO threshold ride the split path; chunk
        // payloads are refcounted slices and must stage nothing.
        if p.segments == 1 && p.size > 8 << 10 && p.staged_copy_bytes != 0 {
            violations.push(format!(
                "{}: split path staged {} bytes (budget: 0)",
                p.label, p.staged_copy_bytes
            ));
        }
    }
    if report.reduction_factor < 2.0 {
        violations.push(format!(
            "copied-bytes reduction vs legacy pipeline is {:.2}x (budget: >= 2x): {} copied, {} legacy",
            report.reduction_factor, report.total_copied_bytes, report.total_legacy_copied_bytes
        ));
    }
    violations
}

/// Render the report as an aligned text table.
pub fn render(report: &DataPathReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== ablate_zero_copy — datapath copy accounting ===");
    let _ = writeln!(
        out,
        "{:>44} {:>12} {:>12} {:>14} {:>12}",
        "workload", "copied", "staged", "zero-copy", "legacy"
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:>44} {:>12} {:>12} {:>14} {:>12}",
            p.label, p.copied_bytes, p.staged_copy_bytes, p.zero_copy_bytes, p.legacy_copied_bytes
        );
    }
    let _ = writeln!(
        out,
        "total: {} copied vs {} legacy — {:.1}x reduction",
        report.total_copied_bytes, report.total_legacy_copied_bytes, report.reduction_factor
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_the_gate() {
        let report = run(true);
        let violations = check(&report);
        assert!(violations.is_empty(), "budget violations: {violations:?}");
        assert!(report.reduction_factor >= 2.0);
    }

    #[test]
    fn split_path_stages_nothing_and_moves_payload_zero_copy() {
        let p = split_point(1 << 20);
        assert_eq!(p.staged_copy_bytes, 0, "large split must not stage");
        assert!(
            p.zero_copy_bytes >= 1 << 20,
            "payload must ride zero-copy: {p:?}"
        );
        assert!(p.legacy_copied_bytes > p.copied_bytes);
    }

    #[test]
    fn aggregation_stays_within_container_budget() {
        let p = aggregate_point(1 << 10, 4);
        // Staging is allowed for sub-PIO entries only; it is bounded by
        // the payload that actually flowed (warmup + iters round trips).
        assert!(p.staged_copy_bytes > 0, "sub-PIO entries must stage: {p:?}");
        assert!(p.copied_bytes < p.legacy_copied_bytes);
    }
}
