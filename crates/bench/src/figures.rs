//! Figure runners: each reproduces one figure of the paper.

use nmad_core::{EngineConfig, PerfTable, StrategyKind};
use nmad_model::{platform, Platform};
use nmad_runtime_sim::sweep::{bandwidth_sizes, latency_sizes};
use nmad_runtime_sim::{sample_platform, Sweep};
use serde::{ser, Serialize, Value};

/// The outcome of reproducing one figure: labelled series over the paper's
/// size ladders (latency points for the (a) plot, bandwidth points for the
/// (b) plot — each [`Sweep`] point carries both).
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"fig4"`.
    pub id: String,
    /// Figure caption (what the paper's caption says).
    pub caption: String,
    /// Series measured over the latency ladder (4 B – 32 KiB), if the
    /// figure has a latency panel.
    pub latency: Vec<Sweep>,
    /// Series measured over the bandwidth ladder (32 KiB – 8 MiB), if the
    /// figure has a bandwidth panel.
    pub bandwidth: Vec<Sweep>,
}

impl Serialize for FigureResult {
    fn to_value(&self) -> Value {
        ser::object([
            ("id", ser::v(&self.id)),
            ("caption", ser::v(&self.caption)),
            ("latency", ser::v(&self.latency)),
            ("bandwidth", ser::v(&self.bandwidth)),
        ])
    }
}

fn single(rail_nic: nmad_model::NicModel) -> (Platform, EngineConfig) {
    (
        platform::single_rail_platform(rail_nic),
        EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
    )
}

fn single_agg(rail_nic: nmad_model::NicModel) -> (Platform, EngineConfig) {
    (
        platform::single_rail_platform(rail_nic),
        EngineConfig::with_strategy(StrategyKind::SingleRailAggregating(0)),
    )
}

/// Figures 2 and 3 share their structure: raw performance of the library
/// over one network for regular and multi-segment messages, with and
/// without opportunistic aggregation.
fn fig_raw_single_rail(id: &str, nic: nmad_model::NicModel, caption: &str) -> FigureResult {
    let series = |sizes: &[u64]| {
        let mut out = Vec::new();
        let (p, c) = single(nic.clone());
        out.push(Sweep::run("Regular messages", &p, &c, sizes, 1, None));
        let (p, c) = single(nic.clone());
        out.push(Sweep::run("2-segments messages", &p, &c, sizes, 2, None));
        let (p, c) = single_agg(nic.clone());
        out.push(Sweep::run(
            "2-segments messages with opportunistic aggregation",
            &p,
            &c,
            sizes,
            2,
            None,
        ));
        let (p, c) = single(nic.clone());
        out.push(Sweep::run("4-segments messages", &p, &c, sizes, 4, None));
        let (p, c) = single_agg(nic.clone());
        out.push(Sweep::run(
            "4-segments messages with opportunistic aggregation",
            &p,
            &c,
            sizes,
            4,
            None,
        ));
        out
    };
    FigureResult {
        id: id.into(),
        caption: caption.into(),
        latency: series(&latency_sizes()),
        bandwidth: series(&bandwidth_sizes()),
    }
}

/// Figure 2: raw performance over Myri-10G.
pub fn fig2_myri() -> FigureResult {
    fig_raw_single_rail(
        "fig2",
        platform::myri_10g(),
        "Raw performance of NewMadeleine over Myri-10G for regular and multi-segments messages",
    )
}

/// Figure 3: raw performance over Quadrics.
pub fn fig3_quadrics() -> FigureResult {
    fig_raw_single_rail(
        "fig3",
        platform::quadrics_qm500(),
        "Raw performance of NewMadeleine over Quadrics for regular and multi-segments messages",
    )
}

/// Figures 4 and 5: the greedy balancing strategy with `segs`-segment
/// messages, against forcing all segments onto one rail.
fn fig_greedy(id: &str, segs: usize, caption: &str) -> FigureResult {
    let series = |sizes: &[u64]| {
        let mut out = Vec::new();
        let (p, c) = single_agg(platform::myri_10g());
        out.push(Sweep::run(
            format!(
                "{seg_word} aggregated segments over Myri-10G",
                seg_word = segword(segs)
            ),
            &p,
            &c,
            sizes,
            segs,
            None,
        ));
        let (p, c) = single_agg(platform::quadrics_qm500());
        out.push(Sweep::run(
            format!("{} aggregated segments over Quadrics", segword(segs)),
            &p,
            &c,
            sizes,
            segs,
            None,
        ));
        let p = platform::paper_platform();
        let c = EngineConfig::with_strategy(StrategyKind::Greedy);
        out.push(Sweep::run(
            format!("{} segments dynamically balanced", segword(segs)),
            &p,
            &c,
            sizes,
            segs,
            None,
        ));
        out
    };
    FigureResult {
        id: id.into(),
        caption: caption.into(),
        latency: series(&latency_sizes()),
        bandwidth: series(&bandwidth_sizes()),
    }
}

fn segword(segs: usize) -> &'static str {
    match segs {
        2 => "Two",
        4 => "Four",
        _ => "N",
    }
}

/// Figure 4: greedy balancing, 2-segment messages.
pub fn fig4_greedy2() -> FigureResult {
    fig_greedy(
        "fig4",
        2,
        "Performance of the greedy balancing strategy with 2-segments messages",
    )
}

/// Figure 5: greedy balancing, 4-segment messages.
pub fn fig5_greedy4() -> FigureResult {
    fig_greedy(
        "fig5",
        4,
        "Performance of the greedy balancing strategy with 4-segments messages",
    )
}

/// Figure 6: aggregated eager messages on the fastest NIC and balanced
/// large messages on available NICs — latency panel only.
pub fn fig6_aggregate() -> FigureResult {
    let sizes = latency_sizes();
    let mut latency = Vec::new();
    let (p, c) = single_agg(platform::myri_10g());
    latency.push(Sweep::run(
        "Two aggregated segments over Myri-10G",
        &p,
        &c,
        &sizes,
        2,
        None,
    ));
    let (p, c) = single_agg(platform::quadrics_qm500());
    latency.push(Sweep::run(
        "Two aggregated segments over Quadrics",
        &p,
        &c,
        &sizes,
        2,
        None,
    ));
    let p = platform::paper_platform();
    let c = EngineConfig::with_strategy(StrategyKind::AggregateEager);
    latency.push(Sweep::run(
        "Two segments dynamically balanced",
        &p,
        &c,
        &sizes,
        2,
        None,
    ));
    FigureResult {
        id: "fig6".into(),
        caption: "Aggregated eager messages on the fastest NIC and balanced large messages on available NICs - Latency".into(),
        latency,
        bandwidth: Vec::new(),
    }
}

/// Figure 7: packet stripping with adaptive threshold — bandwidth panel
/// only, single-segment messages. The hetero-split series uses genuine
/// init-time sampling.
pub fn fig7_split() -> FigureResult {
    fig7_split_with_tables(&sample_platform(&platform::paper_platform()))
}

/// Figure 7 with caller-provided sampling tables (lets tests reuse one
/// sampling pass).
pub fn fig7_split_with_tables(tables: &[PerfTable]) -> FigureResult {
    let sizes = bandwidth_sizes();
    let mut bandwidth = Vec::new();
    let (p, c) = single(platform::myri_10g());
    bandwidth.push(Sweep::run(
        "One segment over Myri-10G",
        &p,
        &c,
        &sizes,
        1,
        None,
    ));
    let (p, c) = single(platform::quadrics_qm500());
    bandwidth.push(Sweep::run(
        "One segment over Quadrics",
        &p,
        &c,
        &sizes,
        1,
        None,
    ));
    let p = platform::paper_platform();
    let c = EngineConfig::with_strategy(StrategyKind::IsoSplit);
    bandwidth.push(Sweep::run(
        "One segment iso-splitted over both networks",
        &p,
        &c,
        &sizes,
        1,
        None,
    ));
    let c = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    bandwidth.push(Sweep::run(
        "One segment hetero-splitted over both networks",
        &p,
        &c,
        &sizes,
        1,
        Some(tables),
    ));
    FigureResult {
        id: "fig7".into(),
        caption: "Packet stripping with adaptive threshold - Bandwidth".into(),
        latency: Vec::new(),
        bandwidth,
    }
}

/// Ablation: the per-rail poll penalty (the Fig. 6 gap) as the number of
/// configured rails grows, measured on a 4 B aggregated-eager transfer.
pub fn ablate_poll() -> FigureResult {
    let sizes: Vec<u64> = vec![4, 64, 1024];
    let platforms: Vec<(String, Platform)> = vec![
        (
            "1 rail (Quadrics only)".into(),
            platform::single_rail_platform(platform::quadrics_qm500()),
        ),
        (
            "2 rails (paper platform)".into(),
            platform::paper_platform(),
        ),
        ("3 rails (+SCI)".into(), platform::three_rail_platform()),
    ];
    let latency = platforms
        .into_iter()
        .map(|(label, p)| {
            // Aggregating strategy; traffic lands on the lowest-latency
            // rail, extra rails only cost polls.
            let kind = if p.rail_count() == 1 {
                StrategyKind::SingleRailAggregating(0)
            } else {
                StrategyKind::AggregateEager
            };
            let c = EngineConfig::with_strategy(kind);
            Sweep::run(label, &p, &c, &sizes, 1, None)
        })
        .collect();
    FigureResult {
        id: "ablate_poll".into(),
        caption: "Ablation: poll cost of additional configured rails (latency, small messages)"
            .into(),
        latency,
        bandwidth: Vec::new(),
    }
}

/// Ablation: sensitivity of the 8 MiB split bandwidth to the rail-0 byte
/// fraction, against the sampled optimum.
pub fn ablate_ratio() -> FigureResult {
    let size = vec![8u64 << 20];
    let p = platform::paper_platform();
    let mut bandwidth = Vec::new();
    for permille in [100u16, 250, 400, 500, 586, 700, 850] {
        let c = EngineConfig::with_strategy(StrategyKind::FixedSplit(permille));
        bandwidth.push(Sweep::run(
            format!("fixed {:.1}% on Myri-10G", permille as f64 / 10.0),
            &p,
            &c,
            &size,
            1,
            None,
        ));
    }
    let c = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    let tables = sample_platform(&p);
    bandwidth.push(Sweep::run(
        "sampled adaptive ratio",
        &p,
        &c,
        &size,
        1,
        Some(&tables),
    ));
    FigureResult {
        id: "ablate_ratio".into(),
        caption: "Ablation: split-ratio sensitivity at 8 MiB".into(),
        latency: Vec::new(),
        bandwidth,
    }
}

/// Future work of the paper's §4, implemented: a multi-threaded engine
/// that processes "parallel PIO transfers on multiprocessor machines".
/// Compare the greedy 2-segment strategy on the single-threaded engine
/// (1 core, the 2007 implementation) against the dual-core Opteron fully
/// used (2 cores): parallel PIO moves the multi-rail crossover down.
pub fn ablate_cores() -> FigureResult {
    let sizes: Vec<u64> = vec![1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10];
    let mut latency = Vec::new();
    for cores in [1usize, 2] {
        let p = Platform::new(
            platform::opteron_node().with_cores(cores),
            vec![platform::myri_10g(), platform::quadrics_qm500()],
        );
        let c = EngineConfig::with_strategy(StrategyKind::Greedy);
        latency.push(Sweep::run(
            format!("greedy 2-seg, {cores}-core engine"),
            &p,
            &c,
            &sizes,
            2,
            None,
        ));
    }
    // Reference: best single rail (aggregating) on one core.
    let (p, c) = single_agg(platform::quadrics_qm500());
    latency.push(Sweep::run(
        "two aggregated segments over Quadrics (reference)",
        &p,
        &c,
        &sizes,
        2,
        None,
    ));
    FigureResult {
        id: "ablate_cores".into(),
        caption:
            "Future work (paper §4): parallel PIO on a multi-core engine moves the crossover down"
                .into(),
        latency,
        bandwidth: Vec::new(),
    }
}

/// Extension experiment: three heterogeneous rails (paper §2 lists SiSCI
/// among the supported drivers). The adaptive strategy generalizes — the
/// sampled water-filling spreads bytes over all three rails — but the
/// result is an honest negative: all rails drain through the same
/// ~1950 MB/s I/O bus, so the third rail adds no capacity, and because the
/// init-time sampling measures each rail *in isolation* it over-allocates
/// to Myri-10G, which then runs bus-throttled. Contention-aware sampling
/// is exactly the kind of future refinement the paper's closing section
/// gestures at.
pub fn three_rail() -> FigureResult {
    let sizes = bandwidth_sizes();
    let p3 = platform::three_rail_platform();
    let tables = nmad_runtime_sim::sample_platform(&p3);
    let mut bandwidth = Vec::new();
    let (p, c) = single(platform::myri_10g());
    bandwidth.push(Sweep::run("Myri-10G alone", &p, &c, &sizes, 1, None));
    let p2 = platform::paper_platform();
    let c = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    let tables2 = nmad_runtime_sim::sample_platform(&p2);
    bandwidth.push(Sweep::run(
        "adaptive split, 2 rails (paper platform)",
        &p2,
        &c,
        &sizes,
        1,
        Some(&tables2),
    ));
    let c = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    bandwidth.push(Sweep::run(
        "adaptive split, 3 rails (+SCI 320 MB/s)",
        &p3,
        &c,
        &sizes,
        1,
        Some(&tables),
    ));
    FigureResult {
        id: "three_rail".into(),
        caption: "Extension: adaptive splitting over three heterogeneous rails".into(),
        latency: Vec::new(),
        bandwidth,
    }
}

/// Ablation: moving the PIO threshold moves the multi-rail crossover.
pub fn ablate_threshold() -> FigureResult {
    let sizes: Vec<u64> = vec![4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10];
    let mut latency = Vec::new();
    for pio_kib in [2usize, 8, 16] {
        let mut myri = platform::myri_10g();
        let mut quad = platform::quadrics_qm500();
        myri.pio_threshold = pio_kib * 1024;
        quad.pio_threshold = pio_kib * 1024;
        let p = Platform::new(platform::opteron_node(), vec![myri, quad]);
        let mut c = EngineConfig::with_strategy(StrategyKind::Greedy);
        c.min_chunk = (pio_kib * 1024).min(c.rdv_threshold);
        latency.push(Sweep::run(
            format!("greedy, PIO threshold {pio_kib} KiB"),
            &p,
            &c,
            &sizes,
            2,
            None,
        ));
    }
    FigureResult {
        id: "ablate_threshold".into(),
        caption: "Ablation: PIO threshold placement vs 2-segment greedy latency".into(),
        latency,
        bandwidth: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_and_gap() {
        let f = fig6_aggregate();
        assert_eq!(f.latency.len(), 3);
        let myri = &f.latency[0];
        let quad = &f.latency[1];
        let multi = &f.latency[2];
        // At small sizes: Quadrics < multi-rail < Myri, and the multi-rail
        // penalty vs Quadrics is a small constant (poll of the second NIC).
        for &s in &[4u64, 64, 1024] {
            let tq = quad.at(s).unwrap().one_way_us;
            let tm = multi.at(s).unwrap().one_way_us;
            let tmyri = myri.at(s).unwrap().one_way_us;
            assert!(
                tq < tm,
                "size {s}: multi ({tm}) must pay poll vs quad ({tq})"
            );
            assert!(
                tm < tmyri,
                "size {s}: multi ({tm}) must beat Myri ({tmyri})"
            );
            assert!(
                tm - tq < 0.8,
                "size {s}: poll gap {:.3} us should be sub-microsecond",
                tm - tq
            );
        }
    }

    #[test]
    fn parallel_pio_beats_single_core_below_crossover() {
        let f = ablate_cores();
        let one_core = &f.latency[0];
        let two_core = &f.latency[1];
        for &s in &[2u64 << 10, 4 << 10] {
            let t1 = one_core.at(s).unwrap().one_way_us;
            let t2 = two_core.at(s).unwrap().one_way_us;
            assert!(
                t2 < t1,
                "size {s}: 2-core PIO ({t2} us) must beat 1-core ({t1} us)"
            );
        }
    }

    #[test]
    fn three_rails_are_bus_bound_not_additive() {
        let f = three_rail();
        let myri = f.bandwidth[0].at(8 << 20).unwrap().bandwidth_mbs;
        let two = f.bandwidth[1].at(8 << 20).unwrap().bandwidth_mbs;
        let three = f.bandwidth[2].at(8 << 20).unwrap().bandwidth_mbs;
        // The honest finding: the shared bus makes the third rail useless
        // (slightly harmful, because isolation-sampled ratios over-feed
        // Myri which then runs bus-throttled) — but multi-rail still beats
        // any single rail by a wide margin.
        assert!(
            three > myri * 1.3,
            "3 rails ({three}) must crush single ({myri})"
        );
        assert!(
            three >= two * 0.85 && three <= two * 1.02,
            "3 rails ({three}) should be near but not above 2 rails ({two}) under one bus"
        );
        assert!(three < 1970.0, "bus ceiling must hold ({three})");
    }

    #[test]
    fn ablate_poll_monotone_in_rails() {
        let f = ablate_poll();
        let t1 = f.latency[0].at(4).unwrap().one_way_us;
        let t2 = f.latency[1].at(4).unwrap().one_way_us;
        let t3 = f.latency[2].at(4).unwrap().one_way_us;
        // 3-rail platform routes over SCI (lower floor than Quadrics), so
        // compare like-for-like: each added rail adds poll cost on top of
        // whatever floor, so 2-rail > 1-rail here (same Quadrics floor).
        assert!(t2 > t1, "2 rails ({t2}) must poll more than 1 ({t1})");
        assert!(t3 > 0.0);
    }
}
