//! Deterministic traffic generation for the chaos soak (`nmad loadgen`,
//! `ablate_soak`).
//!
//! Realistic overload comes from realistic arrival and size processes,
//! not uniform ones: message sizes in communication traces are heavy
//! tailed (many tiny control messages, a few huge bulk transfers) and
//! arrivals are bursty, not evenly spaced. This module provides the
//! three primitives the soak composes, all driven by a seeded
//! [`Xoshiro256StarStar`] so any run is replayable from its recorded
//! seed:
//!
//! * [`BoundedPareto`] — heavy-tailed message sizes with a hard cap (an
//!   unbounded Pareto would eventually draw a message bigger than the
//!   soak's whole byte budget);
//! * [`Arrivals`] — Poisson (exponential inter-arrivals) or a two-state
//!   Markov-modulated Poisson process (MMPP-2), the standard minimal
//!   model of bursty traffic: a quiet state and a burst state with
//!   different rates, switching at exponential sojourn times;
//! * [`TenantSpec`]/[`TrafficSpec`] — a multi-tenant channel mix:
//!   every tenant has its own channel, size distribution, arrival
//!   process, and loop mode (open = submit on schedule regardless of
//!   completions; closed = keep a window of requests outstanding).

use std::time::Duration;

use nmad_sim::Xoshiro256StarStar;
use serde::{ser, Serialize, Value};

/// Heavy-tailed size distribution: Pareto with shape `alpha`, truncated
/// to `[min, max]` by inverse-CDF sampling (not rejection, so one draw
/// consumes exactly one uniform and the stream stays replayable).
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    /// Smallest sample (bytes).
    pub min: u64,
    /// Largest sample (bytes).
    pub max: u64,
    /// Tail index; smaller = heavier tail. Typical traffic fits 1.1–1.5.
    pub alpha: f64,
}

impl BoundedPareto {
    /// Construct, validating the parameters.
    pub fn new(min: u64, max: u64, alpha: f64) -> Self {
        assert!(min >= 1, "min must be positive");
        assert!(max >= min, "max must be >= min");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        BoundedPareto { min, max, alpha }
    }

    /// One sample in `[min, max]`.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.min == self.max {
            return self.min;
        }
        let u = rng.next_f64();
        let ratio = (self.min as f64 / self.max as f64).powf(self.alpha);
        // Inverse CDF of the truncated Pareto: F(x) = (1 - (m/x)^a) /
        // (1 - (m/M)^a) for x in [m, M].
        let x = self.min as f64 / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        (x as u64).clamp(self.min, self.max)
    }
}

/// Arrival process of one tenant's open-loop schedule.
#[derive(Clone, Copy, Debug)]
pub enum Arrivals {
    /// Poisson arrivals: exponential inter-arrival times at `rate_hz`.
    Poisson {
        /// Mean arrivals per second.
        rate_hz: f64,
    },
    /// Two-state Markov-modulated Poisson process. The process spends
    /// exponentially distributed sojourns in a quiet state and a burst
    /// state, emitting Poisson arrivals at the state's rate.
    Mmpp2 {
        /// Arrival rate in the quiet state (per second).
        quiet_hz: f64,
        /// Arrival rate in the burst state (per second).
        burst_hz: f64,
        /// Mean sojourn in each state, seconds.
        mean_sojourn_s: f64,
    },
}

/// Stateful sampler for an [`Arrivals`] process.
#[derive(Clone, Debug)]
pub struct ArrivalSampler {
    model: Arrivals,
    /// MMPP state: true = burst. Unused for Poisson.
    burst: bool,
    /// Remaining sojourn in the current MMPP state, seconds.
    sojourn_left_s: f64,
}

impl ArrivalSampler {
    /// New sampler starting in the quiet state.
    pub fn new(model: Arrivals, rng: &mut Xoshiro256StarStar) -> Self {
        let sojourn = match model {
            Arrivals::Poisson { .. } => 0.0,
            Arrivals::Mmpp2 { mean_sojourn_s, .. } => rng.exponential(mean_sojourn_s),
        };
        ArrivalSampler {
            model,
            burst: false,
            sojourn_left_s: sojourn,
        }
    }

    /// Next inter-arrival gap.
    pub fn next_gap(&mut self, rng: &mut Xoshiro256StarStar) -> Duration {
        match self.model {
            Arrivals::Poisson { rate_hz } => {
                Duration::from_secs_f64(rng.exponential(1.0 / rate_hz))
            }
            Arrivals::Mmpp2 {
                quiet_hz,
                burst_hz,
                mean_sojourn_s,
            } => {
                let mut rate = if self.burst { burst_hz } else { quiet_hz };
                let mut gap = rng.exponential(1.0 / rate);
                let mut elapsed = 0.0f64;
                // Walk through state switches the gap spans: each switch
                // rescales the remaining wait from the old rate to the
                // new one (memorylessness makes this exact). `rate` must
                // track the current state or the rescale diverges.
                while gap > self.sojourn_left_s {
                    gap -= self.sojourn_left_s;
                    elapsed += self.sojourn_left_s;
                    self.burst = !self.burst;
                    self.sojourn_left_s = rng.exponential(mean_sojourn_s);
                    let new_rate = if self.burst { burst_hz } else { quiet_hz };
                    gap = gap * rate / new_rate;
                    rate = new_rate;
                }
                self.sojourn_left_s -= gap;
                Duration::from_secs_f64(elapsed + gap)
            }
        }
    }
}

/// How a tenant issues requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// Submit on the arrival schedule regardless of completions — the
    /// generator that actually overloads a slow system.
    Open,
    /// Keep at most this many requests outstanding; a completion frees
    /// a slot. Self-clocking: backs off when the system slows down.
    Closed {
        /// Outstanding-request window.
        window: usize,
    },
}

/// One tenant of the traffic mix.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name ("bulk", "rpc", ...).
    pub name: &'static str,
    /// Message-size distribution.
    pub sizes: BoundedPareto,
    /// Arrival process (drives open-loop pacing; closed-loop tenants
    /// use it as think time between a completion and the next submit).
    pub arrivals: Arrivals,
    /// Open or closed loop.
    pub mode: LoopMode,
}

/// The full mix: every tenant gets its own logical channel (conn id =
/// tenant index) and an rng stream decorrelated from the others.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Tenants, one channel each.
    pub tenants: Vec<TenantSpec>,
    /// Master seed; tenant `i` derives its own stream from it.
    pub seed: u64,
}

impl TrafficSpec {
    /// The soak's default three-tenant mix: a heavy-tailed bulk mover,
    /// a latency-sensitive closed-loop RPC tenant, and a bursty MMPP
    /// telemetry tenant.
    pub fn standard(seed: u64) -> Self {
        TrafficSpec {
            tenants: vec![
                TenantSpec {
                    name: "bulk",
                    sizes: BoundedPareto::new(4 << 10, 1 << 20, 1.2),
                    arrivals: Arrivals::Poisson { rate_hz: 40.0 },
                    mode: LoopMode::Closed { window: 4 },
                },
                TenantSpec {
                    name: "rpc",
                    sizes: BoundedPareto::new(64, 4 << 10, 1.5),
                    arrivals: Arrivals::Poisson { rate_hz: 400.0 },
                    mode: LoopMode::Closed { window: 8 },
                },
                TenantSpec {
                    name: "burst",
                    sizes: BoundedPareto::new(256, 64 << 10, 1.3),
                    arrivals: Arrivals::Mmpp2 {
                        quiet_hz: 20.0,
                        burst_hz: 600.0,
                        mean_sojourn_s: 0.5,
                    },
                    mode: LoopMode::Open,
                },
            ],
            seed,
        }
    }

    /// Rng stream for tenant `i`, decorrelated by a splitmix-style odd
    /// multiplier (the same idiom the transports use per rail).
    pub fn tenant_rng(&self, i: usize) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(self.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A dry-run sample of one tenant's schedule: what `nmad loadgen`
/// prints and the determinism tests pin down.
#[derive(Clone, Debug)]
pub struct SchedulePreview {
    /// Tenant name.
    pub name: String,
    /// Loop mode rendered as text.
    pub mode: String,
    /// Events previewed.
    pub events: usize,
    /// Total bytes across the preview.
    pub total_bytes: u64,
    /// Mean message size, bytes.
    pub mean_size: f64,
    /// Largest sampled message.
    pub max_size: u64,
    /// Mean inter-arrival gap, microseconds.
    pub mean_gap_us: f64,
    /// Largest inter-arrival gap, microseconds.
    pub max_gap_us: f64,
}

impl Serialize for SchedulePreview {
    fn to_value(&self) -> Value {
        ser::object([
            ("name", ser::v(&self.name)),
            ("mode", ser::v(&self.mode)),
            ("events", ser::v(&self.events)),
            ("total_bytes", ser::v(&self.total_bytes)),
            ("mean_size", ser::v(&self.mean_size)),
            ("max_size", ser::v(&self.max_size)),
            ("mean_gap_us", ser::v(&self.mean_gap_us)),
            ("max_gap_us", ser::v(&self.max_gap_us)),
        ])
    }
}

/// Sample `events` (size, gap) pairs per tenant without running any
/// engine — the generator's output, summarized.
pub fn preview(spec: &TrafficSpec, events: usize) -> Vec<SchedulePreview> {
    spec.tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut rng = spec.tenant_rng(i);
            let mut arrivals = ArrivalSampler::new(t.arrivals, &mut rng);
            let mut total = 0u64;
            let mut max_size = 0u64;
            let mut gap_sum = 0.0f64;
            let mut gap_max = 0.0f64;
            for _ in 0..events {
                let size = t.sizes.sample(&mut rng);
                total += size;
                max_size = max_size.max(size);
                let gap = arrivals.next_gap(&mut rng).as_secs_f64() * 1e6;
                gap_sum += gap;
                gap_max = gap_max.max(gap);
            }
            SchedulePreview {
                name: t.name.to_string(),
                mode: match t.mode {
                    LoopMode::Open => "open".to_string(),
                    LoopMode::Closed { window } => format!("closed/{window}"),
                },
                events,
                total_bytes: total,
                mean_size: total as f64 / events.max(1) as f64,
                max_size,
                mean_gap_us: gap_sum / events.max(1) as f64,
                max_gap_us: gap_max,
            }
        })
        .collect()
}

/// Aligned text table of a preview.
pub fn render_preview(rows: &[SchedulePreview]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>8} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "tenant", "mode", "events", "bytes", "mean B", "max B", "mean gap us", "max gap us"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>8} {:>12} {:>10.0} {:>10} {:>12.1} {:>12.1}",
            r.name,
            r.mode,
            r.events,
            r.total_bytes,
            r.mean_size,
            r.max_size,
            r.mean_gap_us,
            r.max_gap_us
        );
    }
    out
}

// ---------------------------------------------------------------------
// Trace replay: a recorded flight-recorder stream as a traffic source
// ---------------------------------------------------------------------

/// One replayed submit: offset from the start of the trace, payload
/// size, and the tenant it maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayEvent {
    /// Nanoseconds since the first submit in the trace.
    pub t_ns: u64,
    /// Submitted bytes.
    pub size: u64,
    /// Index into [`ReplayTrace::tenants`].
    pub tenant: usize,
}

/// A deterministic traffic source reconstructed from a flight-recorder
/// JSONL trace (`nmad trace --format jsonl`): the `submit` events'
/// sizes and inter-arrival gaps, replayed verbatim.
///
/// Tenant mapping: a rail-attributed event maps to tenant `rail<K>`;
/// `submit` events are engine-wide (rail `null` — the rail decision
/// happens later, at split time), so they fall back to the recording
/// actor, tenant `node<K>`. Tenants are numbered in order of first
/// appearance, so the mapping is stable across re-parses of the same
/// trace.
#[derive(Clone, Debug)]
pub struct ReplayTrace {
    /// Replayable submits, ordered by time, re-based to the first.
    pub events: Vec<ReplayEvent>,
    /// Tenant display names, indexed by [`ReplayEvent::tenant`].
    pub tenants: Vec<String>,
    /// Lines that were not replayable submits (other event kinds,
    /// blank or malformed lines).
    pub skipped: usize,
    /// Events the recorder ring dropped before the trace was exported
    /// (from the stream's leading overflow marker, if any): the replay
    /// is faithful to what survived, not to the full run.
    pub truncated_by: u64,
}

impl ReplayTrace {
    /// Parse a flight-recorder JSONL stream. Unparseable or non-submit
    /// lines are counted, not fatal; a stream with no submits at all is
    /// an error (there is nothing to replay).
    pub fn parse(jsonl: &str) -> Result<ReplayTrace, String> {
        let mut raw: Vec<(u64, u64, String)> = Vec::new();
        let mut skipped = 0usize;
        let mut truncated_by = 0u64;
        for line in jsonl.lines() {
            let line = line.trim();
            if line.is_empty() {
                skipped += 1;
                continue;
            }
            let Ok(v) = serde_json::from_str::<Value>(line) else {
                skipped += 1;
                continue;
            };
            if v.get("overflow").and_then(Value::as_bool) == Some(true) {
                truncated_by += v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
                continue;
            }
            if v.get("kind").and_then(Value::as_str) != Some("submit") {
                skipped += 1;
                continue;
            }
            let (Some(ts), Some(size)) = (
                v.get("ts_ns").and_then(Value::as_u64),
                v.get("size").and_then(Value::as_u64),
            ) else {
                skipped += 1;
                continue;
            };
            let tenant = match v.get("rail").and_then(Value::as_u64) {
                Some(r) => format!("rail{r}"),
                None => format!(
                    "node{}",
                    v.get("actor").and_then(Value::as_u64).unwrap_or(0)
                ),
            };
            raw.push((ts, size, tenant));
        }
        if raw.is_empty() {
            return Err("trace contains no submit events to replay".into());
        }
        raw.sort_by_key(|&(ts, _, _)| ts);
        let t0 = raw[0].0;
        let mut tenants: Vec<String> = Vec::new();
        let events = raw
            .into_iter()
            .map(|(ts, size, name)| {
                let tenant = match tenants.iter().position(|t| *t == name) {
                    Some(i) => i,
                    None => {
                        tenants.push(name);
                        tenants.len() - 1
                    }
                };
                ReplayEvent {
                    t_ns: ts - t0,
                    size,
                    tenant,
                }
            })
            .collect();
        Ok(ReplayTrace {
            events,
            tenants,
            skipped,
            truncated_by,
        })
    }

    /// Trace span from first to last submit.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.events.last().map_or(0, |e| e.t_ns))
    }

    /// Total replayed payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.size).sum()
    }

    /// Per-tenant schedule summary, same shape as the synthetic
    /// generator's [`preview`] so `nmad loadgen` renders both alike.
    pub fn preview(&self) -> Vec<SchedulePreview> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut events = 0usize;
                let mut total = 0u64;
                let mut max_size = 0u64;
                let mut gap_sum = 0.0f64;
                let mut gap_max = 0.0f64;
                let mut prev_t: Option<u64> = None;
                for e in self.events.iter().filter(|e| e.tenant == i) {
                    events += 1;
                    total += e.size;
                    max_size = max_size.max(e.size);
                    if let Some(p) = prev_t {
                        let gap = (e.t_ns - p) as f64 / 1e3;
                        gap_sum += gap;
                        gap_max = gap_max.max(gap);
                    }
                    prev_t = Some(e.t_ns);
                }
                SchedulePreview {
                    name: name.clone(),
                    mode: "replay".to_string(),
                    events,
                    total_bytes: total,
                    mean_size: total as f64 / events.max(1) as f64,
                    max_size,
                    mean_gap_us: gap_sum / (events.saturating_sub(1)).max(1) as f64,
                    max_gap_us: gap_max,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_respects_bounds_and_tail() {
        let d = BoundedPareto::new(64, 1 << 20, 1.2);
        let mut rng = Xoshiro256StarStar::new(7);
        let mut small = 0usize;
        let mut seen_large = false;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((64..=1 << 20).contains(&s), "sample {s} out of bounds");
            if s < 256 {
                small += 1;
            }
            if s > 256 << 10 {
                seen_large = true;
            }
        }
        // Heavy tail: most samples are near the floor, yet the cap
        // region is still reached.
        assert!(small > n / 2, "tail not heavy: {small}/{n} small");
        assert!(seen_large, "cap region never sampled");
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut rng = Xoshiro256StarStar::new(11);
        let mut s = ArrivalSampler::new(Arrivals::Poisson { rate_hz: 1000.0 }, &mut rng);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| s.next_gap(&mut rng).as_secs_f64()).sum();
        let mean_ms = total / n as f64 * 1e3;
        assert!(
            (0.9..1.1).contains(&mean_ms),
            "mean gap {mean_ms} ms, expected ~1 ms"
        );
    }

    #[test]
    fn mmpp_bursts_faster_than_quiet() {
        let mut rng = Xoshiro256StarStar::new(13);
        let model = Arrivals::Mmpp2 {
            quiet_hz: 10.0,
            burst_hz: 1000.0,
            mean_sojourn_s: 0.2,
        };
        let mut s = ArrivalSampler::new(model, &mut rng);
        let n = 20_000;
        let gaps: Vec<f64> = (0..n).map(|_| s.next_gap(&mut rng).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / n as f64;
        // The blended rate sits strictly between the two states' rates.
        assert!(
            mean < 1.0 / 10.0 && mean > 1.0 / 1000.0,
            "blended mean gap {mean}"
        );
        // Bursts exist: a meaningful share of gaps is at burst pacing.
        let fast = gaps.iter().filter(|g| **g < 5e-3).count();
        assert!(fast > n / 10, "no burst phase visible: {fast}/{n}");
    }

    #[test]
    fn schedules_are_replayable_from_seed() {
        let spec = TrafficSpec::standard(42);
        let a = preview(&spec, 500);
        let b = preview(&spec, 500);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_bytes, y.total_bytes);
            assert_eq!(x.max_size, y.max_size);
            assert_eq!(x.mean_gap_us, y.mean_gap_us);
        }
        let c = preview(&TrafficSpec::standard(43), 500);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.total_bytes != y.total_bytes),
            "different seeds must give different schedules"
        );
    }

    #[test]
    fn preview_renders_every_tenant() {
        let spec = TrafficSpec::standard(1);
        let rows = preview(&spec, 100);
        let table = render_preview(&rows);
        for t in &spec.tenants {
            assert!(table.contains(t.name), "{table}");
        }
    }

    fn sample_trace() -> String {
        // The exact shape `nmad trace --format jsonl` emits, with an
        // overflow marker, submits from two actors, one rail-attributed
        // submit, and non-submit noise lines.
        [
            r#"{"overflow":true,"dropped":12,"resume_ts_ns":1000}"#,
            r#"{"ts_ns":1000,"kind":"submit","cat":"api","actor":0,"rail":null,"seq":1,"size":4096,"aux":1}"#,
            r#"{"ts_ns":1500,"kind":"tx_post","cat":"tx","actor":0,"rail":0,"seq":1,"size":4096,"aux":0}"#,
            r#"{"ts_ns":2500,"kind":"submit","cat":"api","actor":1,"rail":null,"seq":2,"size":64,"aux":1}"#,
            r#"{"ts_ns":4000,"kind":"submit","cat":"api","actor":0,"rail":null,"seq":3,"size":1024,"aux":1}"#,
            r#"{"ts_ns":5000,"kind":"submit","cat":"api","actor":0,"rail":1,"seq":4,"size":256,"aux":1}"#,
            "not json at all",
        ]
        .join("\n")
    }

    #[test]
    fn replay_parses_submits_and_maps_tenants() {
        let t = ReplayTrace::parse(&sample_trace()).expect("parses");
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.tenants, vec!["node0", "node1", "rail1"]);
        assert_eq!(t.truncated_by, 12);
        assert_eq!(t.skipped, 2, "tx_post and the garbage line");
        // Re-based to the first submit, order preserved.
        assert_eq!(
            t.events[0],
            ReplayEvent {
                t_ns: 0,
                size: 4096,
                tenant: 0
            }
        );
        assert_eq!(
            t.events[1],
            ReplayEvent {
                t_ns: 1500,
                size: 64,
                tenant: 1
            }
        );
        assert_eq!(
            t.events[3],
            ReplayEvent {
                t_ns: 4000,
                size: 256,
                tenant: 2
            }
        );
        assert_eq!(t.duration(), Duration::from_nanos(4000));
        assert_eq!(t.total_bytes(), 4096 + 64 + 1024 + 256);
    }

    #[test]
    fn replay_is_deterministic_and_previews_like_the_generator() {
        let a = ReplayTrace::parse(&sample_trace()).unwrap();
        let b = ReplayTrace::parse(&sample_trace()).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.tenants, b.tenants);
        let rows = a.preview();
        assert_eq!(rows.len(), 3);
        let node0 = &rows[0];
        assert_eq!(node0.mode, "replay");
        assert_eq!(node0.events, 2);
        assert_eq!(node0.total_bytes, 4096 + 1024);
        // node0 submits at 0 and 3000ns -> one 3.0us gap.
        assert!(
            (node0.mean_gap_us - 3.0).abs() < 1e-9,
            "{}",
            node0.mean_gap_us
        );
        let table = render_preview(&rows);
        assert!(
            table.contains("node0") && table.contains("rail1"),
            "{table}"
        );
    }

    #[test]
    fn replay_rejects_traces_without_submits() {
        assert!(ReplayTrace::parse("").is_err());
        let only_tx = r#"{"ts_ns":1,"kind":"tx_post","cat":"tx","actor":0,"rail":0,"seq":1,"size":10,"aux":0}"#;
        assert!(ReplayTrace::parse(only_tx).is_err());
    }
}
