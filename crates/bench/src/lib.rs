//! # nmad-bench — the figure/table harness
//!
//! One function per figure of the paper's evaluation section; each returns
//! the labelled series of that figure and can render it as an aligned
//! text table (what `cargo bench` prints) and as JSON (written under
//! `target/figures/` for EXPERIMENTS.md).
//!
//! | Paper figure | Function | Bench target |
//! |---|---|---|
//! | Fig 2 (a/b) | [`figures::fig2_myri`] | `fig2_myri` |
//! | Fig 3 (a/b) | [`figures::fig3_quadrics`] | `fig3_quadrics` |
//! | Fig 4 (a/b) | [`figures::fig4_greedy2`] | `fig4_greedy2` |
//! | Fig 5 (a/b) | [`figures::fig5_greedy4`] | `fig5_greedy4` |
//! | Fig 6 | [`figures::fig6_aggregate`] | `fig6_aggregate` |
//! | Fig 7 | [`figures::fig7_split`] | `fig7_split` |
//!
//! Plus ablations (`ablate_*`) for the design choices DESIGN.md calls out.

#![warn(missing_docs)]

pub mod calibration;
pub mod cycles;
pub mod datapath;
pub mod figures;
pub mod loadgen;
pub mod obs_bench;
pub mod parallel;
pub mod reactor;
pub mod report;
pub mod soak;
pub mod tournament;
pub mod workload;

pub use figures::FigureResult;
pub use report::{render_table, write_json};
