//! Beyond the paper's ping-pong: bursty, mixed-size workloads.
//!
//! Section 2 motivates the NIC-driven engine with communication-bounded
//! phases: "the communication support accumulates packets while the NIC is
//! busy and once the NIC becomes idle, the optimizer processes the backlog
//! of accumulated packets". A ping-pong never builds a deep backlog; this
//! experiment does — a burst of messages with a realistic size mix is
//! submitted at once, and we measure the makespan (time until the last
//! message is delivered) per strategy.

use bytes::Bytes;
use nmad_core::request::{RecvId, SendId};
use nmad_core::{EngineConfig, EngineStats, StrategyKind};
use nmad_model::platform;
use nmad_runtime_sim::world::{AppLogic, NodeApi, SimWorld};
use nmad_sim::{SimTime, Xoshiro256StarStar};
use nmad_wire::reassembly::MessageAssembly;
use serde::{ser, Serialize, Value};

/// Message-size pattern of a burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstPattern {
    /// Random mix controlled by `small_fraction`.
    Mixed,
    /// Strictly alternating large (2 MiB) / tiny (4 KiB).
    AlternatingLargeSmall,
    /// All messages 2 MiB — with an odd count and the slow rail listed
    /// first, a static rotation gives the slow rail the extra message
    /// while just-in-time scheduling hands it to whichever rail frees up
    /// first (the fast one).
    UniformLarge,
}

/// Burst workload description.
#[derive(Clone, Debug)]
pub struct BurstSpec {
    /// Number of messages in the burst.
    pub messages: usize,
    /// PRNG seed for sizes and payloads.
    pub seed: u64,
    /// Fraction of small (< 1 KiB) messages; the rest split between
    /// medium (4–32 KiB) and large (256 KiB – 2 MiB) at 2:1.
    pub small_fraction: f64,
    /// Size pattern.
    pub pattern: BurstPattern,
    /// List the slow (Quadrics) rail as rail 0 — the configuration where
    /// naive static rotations pay most.
    pub slow_rail_first: bool,
}

impl Default for BurstSpec {
    fn default() -> Self {
        BurstSpec {
            messages: 64,
            seed: 2007,
            small_fraction: 0.6,
            pattern: BurstPattern::Mixed,
            slow_rail_first: false,
        }
    }
}

impl BurstSpec {
    /// Generate the message sizes of this burst (deterministic per seed).
    pub fn sizes(&self) -> Vec<usize> {
        match self.pattern {
            BurstPattern::AlternatingLargeSmall => (0..self.messages)
                .map(|i| if i % 2 == 0 { 2 << 20 } else { 4 << 10 })
                .collect(),
            BurstPattern::UniformLarge => vec![2 << 20; self.messages],
            BurstPattern::Mixed => {
                let mut rng = Xoshiro256StarStar::new(self.seed);
                (0..self.messages)
                    .map(|_| {
                        let u = rng.next_f64();
                        if u < self.small_fraction {
                            rng.range_usize(16, 1024)
                        } else if u < self.small_fraction + (1.0 - self.small_fraction) * 2.0 / 3.0
                        {
                            rng.range_usize(4 << 10, 32 << 10)
                        } else {
                            rng.range_usize(256 << 10, 2 << 20)
                        }
                    })
                    .collect()
            }
        }
    }

    /// Total bytes in the burst.
    pub fn total_bytes(&self) -> usize {
        self.sizes().iter().sum()
    }
}

/// Result of one burst run.
#[derive(Clone, Debug)]
pub struct BurstResult {
    /// Strategy label.
    pub strategy: String,
    /// Time until the last message was delivered, µs.
    pub makespan_us: f64,
    /// Aggregate goodput over the makespan, MB/s.
    pub goodput_mbs: f64,
    /// Aggregate containers built (how much the strategy batched).
    pub aggregates: u64,
    /// Chunks emitted (how much it split).
    pub chunks: u64,
    /// Fraction of payload bytes on rail 0.
    pub rail0_share: f64,
}

impl Serialize for BurstResult {
    fn to_value(&self) -> Value {
        ser::object([
            ("strategy", ser::v(&self.strategy)),
            ("makespan_us", ser::v(&self.makespan_us)),
            ("goodput_mbs", ser::v(&self.goodput_mbs)),
            ("aggregates", ser::v(&self.aggregates)),
            ("chunks", ser::v(&self.chunks)),
            ("rail0_share", ser::v(&self.rail0_share)),
        ])
    }
}

struct BurstSender {
    sizes: Vec<usize>,
    seed: u64,
}
impl AppLogic for BurstSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        let mut rng = Xoshiro256StarStar::new(self.seed ^ 0x5EED);
        for &size in &self.sizes {
            let mut v = vec![0u8; size];
            rng.fill_bytes(&mut v);
            api.submit_send(0, vec![Bytes::from(v)]);
        }
    }
    fn on_send_complete(&mut self, _s: SendId, _api: &mut NodeApi<'_>) {}
}

struct BurstReceiver {
    expected: usize,
    got: usize,
    last_at: SimTime,
}
impl AppLogic for BurstReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for _ in 0..self.expected {
            api.post_recv(0);
        }
    }
    fn on_recv_complete(&mut self, _r: RecvId, _m: MessageAssembly, api: &mut NodeApi<'_>) {
        self.got += 1;
        self.last_at = api.now();
    }
}

/// Run the burst under one strategy; returns makespan and behaviour.
pub fn run_burst(spec: &BurstSpec, kind: StrategyKind) -> (BurstResult, EngineStats) {
    let sizes = spec.sizes();
    let total: usize = sizes.iter().sum();
    let plat = if spec.slow_rail_first {
        nmad_model::Platform::new(
            platform::opteron_node(),
            vec![platform::quadrics_qm500(), platform::myri_10g()],
        )
    } else {
        platform::paper_platform()
    };
    let mut world = SimWorld::new(
        &plat,
        EngineConfig::with_strategy(kind),
        BurstSender {
            sizes: sizes.clone(),
            seed: spec.seed,
        },
        BurstReceiver {
            expected: sizes.len(),
            got: 0,
            last_at: SimTime::ZERO,
        },
    );
    world.open_conn();
    world.run(50_000_000);
    assert_eq!(
        world.app1().got,
        sizes.len(),
        "{}: burst did not fully deliver",
        kind.label()
    );
    let makespan = world.app1().last_at;
    let stats = world.node(0).engine.stats().clone();
    let result = BurstResult {
        strategy: kind.label().to_string(),
        makespan_us: makespan.as_us_f64(),
        goodput_mbs: total as f64 / makespan.as_secs_f64() / 1e6,
        aggregates: stats.aggregates_built,
        chunks: stats.chunks_sent,
        rail0_share: stats.rail_share(0),
    };
    (result, stats)
}

/// Run the burst under every multi-rail-relevant strategy.
pub fn burst_comparison(spec: &BurstSpec) -> Vec<BurstResult> {
    [
        StrategyKind::SingleRail(0),
        StrategyKind::SingleRail(1),
        StrategyKind::StaticRoundRobin,
        StrategyKind::Greedy,
        StrategyKind::AggregateEager,
        StrategyKind::AdaptiveSplit,
    ]
    .into_iter()
    .map(|k| run_burst(spec, k).0)
    .collect()
}

/// Render the comparison as a text table.
pub fn render_burst_table(spec: &BurstSpec, rows: &[BurstResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "burst: {} messages, {:.2} MB total (seed {})",
        spec.messages,
        spec.total_bytes() as f64 / 1e6,
        spec.seed
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "strategy", "makespan us", "goodput MB/s", "aggs", "chunks", "rail0 %"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12.1} {:>12.1} {:>8} {:>8} {:>10.1}",
            r.strategy,
            r.makespan_us,
            r.goodput_mbs,
            r.aggregates,
            r.chunks,
            100.0 * r.rail0_share
        );
    }
    out
}

/// The §2 "optimization window" experiment: an application interleaves
/// computation with small submits. While the CPU computes, the engine
/// cannot run — requests pile up in the backlog, and when the scheduler
/// finally runs, an aggregating strategy ships the whole window in one
/// packet. Returns `(makespan_us, physical_packets, aggregates)`.
pub fn run_compute_window(kind: StrategyKind, messages: usize, compute_us: u64) -> (f64, u64, u64) {
    use nmad_sim::SimDuration;

    struct ComputeSender {
        messages: usize,
        compute: SimDuration,
    }
    impl AppLogic for ComputeSender {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for i in 0..self.messages {
                api.submit_send(0, vec![Bytes::from(vec![i as u8; 64])]);
                api.compute(self.compute);
            }
        }
    }
    struct Counter {
        expected: usize,
        got: usize,
        last_at: SimTime,
    }
    impl AppLogic for Counter {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for _ in 0..self.expected {
                api.post_recv(0);
            }
        }
        fn on_recv_complete(&mut self, _r: RecvId, _m: MessageAssembly, api: &mut NodeApi<'_>) {
            self.got += 1;
            self.last_at = api.now();
        }
    }
    let mut world = SimWorld::new(
        &platform::paper_platform(),
        EngineConfig::with_strategy(kind),
        ComputeSender {
            messages,
            compute: SimDuration::from_us(compute_us),
        },
        Counter {
            expected: messages,
            got: 0,
            last_at: SimTime::ZERO,
        },
    );
    world.open_conn();
    world.run(10_000_000);
    assert_eq!(world.app1().got, messages, "window run did not deliver");
    let s = world.node(0).engine.stats();
    (
        world.app1().last_at.as_us_f64(),
        s.total_packets(),
        s.aggregates_built,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_sizes_are_deterministic_and_mixed() {
        let spec = BurstSpec::default();
        let a = spec.sizes();
        let b = spec.sizes();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().any(|&s| s < 1024), "has smalls");
        assert!(a.iter().any(|&s| s > 256 << 10), "has larges");
    }

    #[test]
    fn compute_window_aggregates_and_saves_packets() {
        // With 3 us of computation between 8 tiny submits, the aggregating
        // strategy ships far fewer physical packets than one-per-message
        // and finishes sooner than the non-aggregating baseline.
        let (t_agg, pkts_agg, aggs) = run_compute_window(StrategyKind::AggregateEager, 8, 3);
        let (t_plain, pkts_plain, _) = run_compute_window(StrategyKind::Greedy, 8, 3);
        assert!(aggs >= 1, "window must aggregate");
        assert!(
            pkts_agg < pkts_plain,
            "aggregation must save packets: {pkts_agg} vs {pkts_plain}"
        );
        assert!(
            t_agg <= t_plain,
            "aggregated window must not be slower: {t_agg} vs {t_plain}"
        );
    }

    #[test]
    fn jit_scheduling_beats_static_round_robin() {
        // §3.5: "we take our scheduling decisions just-in-time". A static
        // round-robin binding ignores message sizes and rail idleness, so
        // on a mixed burst it parks large messages on the slow rail while
        // the fast one idles.
        let spec = BurstSpec {
            messages: 3,
            pattern: BurstPattern::UniformLarge,
            slow_rail_first: true,
            ..Default::default()
        };
        let (jit, jit_stats) = run_burst(&spec, StrategyKind::Greedy);
        let (stat, stat_stats) = run_burst(&spec, StrategyKind::StaticRoundRobin);
        // Mechanism: the rotation gives the slow rail (rail 0) two of the
        // three messages; greedy gives the extra one to the fast rail.
        assert!(
            stat_stats.rail_share(0) > 0.6,
            "rotation must overload the slow rail (got {})",
            stat_stats.rail_share(0)
        );
        assert!(
            jit_stats.rail_share(0) < 0.5,
            "greedy must favour the fast rail (got {})",
            jit_stats.rail_share(0)
        );
        // Cost: a clear makespan gap.
        assert!(
            jit.makespan_us < stat.makespan_us * 0.85,
            "JIT greedy ({}) must clearly beat static binding ({})",
            jit.makespan_us,
            stat.makespan_us
        );
    }

    #[test]
    fn multirail_strategies_beat_single_rail_on_bursts() {
        let spec = BurstSpec {
            messages: 24,
            ..Default::default()
        };
        let rows = burst_comparison(&spec);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.strategy == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let single_best = get("single-rail").makespan_us; // rail 0 (Myri)
        let adaptive = get("adaptive-split").makespan_us;
        let greedy = get("greedy").makespan_us;
        assert!(
            adaptive < single_best,
            "adaptive ({adaptive}) must beat single rail ({single_best})"
        );
        assert!(
            greedy < single_best,
            "greedy ({greedy}) must beat single rail ({single_best})"
        );
        // The final strategy batches smalls AND splits larges.
        let a = get("adaptive-split");
        assert!(a.aggregates > 0, "burst must trigger aggregation");
        assert!(a.chunks > 0, "burst must trigger splitting");
        assert!(a.rail0_share > 0.2 && a.rail0_share < 0.9);
    }
}
