//! Chaos soak: minutes of multi-tenant traffic over the parallel engine
//! while a seeded schedule turns every fault dial at once, gated on SLOs
//! (`nmad soak`, `ablate_soak`, `BENCH_soak.json`).
//!
//! The unit tests each exercise one failure mode in isolation; the soak
//! asks the question production asks: does the engine stay correct and
//! *bounded* when outages, corruption, reordering, drop storms and
//! bandwidth drift all land on top of live load — and does it return to
//! nominal once the faults heal? Concretely the gates are:
//!
//! * **Latency SLO** — p99 / p999 over the whole run (chaos included)
//!   under a ceiling. Catches unbounded retry loops and requests parked
//!   on dead rails.
//! * **No permanent degradation** — closed-loop throughput of the last
//!   (clean) windows within 10 % of the first (clean) windows. The chaos
//!   schedule only fires in the middle of the run and heals before the
//!   tail, so head and tail compare clean against clean.
//! * **No leaks** — the BufferPool ledger on both endpoints reads zero
//!   unaccounted buffers after the drain.
//! * **No stuck requests** — every accepted send acks within the drain
//!   deadline after the final fault heals.
//!
//! Everything is replayable: the traffic schedules, the fault spec and
//! the chaos dial timeline all derive from one recorded seed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use nmad_core::{
    ChaosState, EngineConfig, StrategyKind, SubmitError, TelemetryConfig, WatchdogConfig,
};
use nmad_model::platform;
use nmad_sim::Xoshiro256StarStar;
use nmad_transport_mem::{pair, Endpoint, FabricConfig, FaultSpec, RailOutage};
use nmad_wire::ConnId;
use serde::{ser, Serialize, Value};

use crate::loadgen::{ArrivalSampler, LoopMode, TrafficSpec};

/// One timed turn of a live chaos dial.
#[derive(Clone, Copy, Debug)]
pub struct DialEvent {
    /// When to apply, relative to soak start.
    pub at: Duration,
    /// Rail whose dial turns.
    pub rail: usize,
    /// What turns.
    pub kind: DialKind,
}

/// Which dial a [`DialEvent`] turns.
#[derive(Clone, Copy, Debug)]
pub enum DialKind {
    /// Set the rail's bandwidth multiplier (PR 4 drift, live).
    Bandwidth(f64),
    /// Set the rail's additive drop probability.
    DropBoost(f64),
}

/// The deterministic chaos plan for one soak: construction-time faults
/// (outages + corruption/dup/reorder probabilities, PR 1) plus a
/// timeline of live dial turns (drop storms + bandwidth drift), plus
/// the heal point. Derived entirely from the recorded seed.
#[derive(Clone, Debug)]
pub struct ChaosSchedule {
    /// Live dial turns, sorted by time.
    pub dials: Vec<DialEvent>,
    /// Scheduled hard outages (100 % loss windows).
    pub outages: Vec<RailOutage>,
    /// Background corruption probability (exercises CRC + retransmit).
    pub corrupt_prob: f64,
    /// Background duplication probability.
    pub dup_prob: f64,
    /// Background pairwise-reorder probability.
    pub reorder_prob: f64,
    /// When every dial resets to identity. After this the fabric runs
    /// fault-free (the background probabilities above are the only
    /// noise), so the run's tail is a recovery check.
    pub heal_at: Duration,
}

impl ChaosSchedule {
    /// Build the plan for a run of `duration` over two rails.
    ///
    /// Invariants the generator maintains (and the tests pin down):
    /// chaos fires only inside the middle `[27 %, 65 %]` of the run so
    /// the head and tail windows are clean; the hard outage hits rail 0
    /// only and the drop storms hit rail 1 only *after* the outage has
    /// ended, so at least one rail can always make forward progress and
    /// latency stays bounded by a few RTOs instead of an outage length.
    pub fn generate(seed: u64, duration: Duration) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed ^ 0xC4A0_5EED);
        let d = duration.as_secs_f64();
        let jitter = |rng: &mut Xoshiro256StarStar, frac: f64| {
            // +/- 2 % of the run around the nominal point.
            Duration::from_secs_f64(d * (frac + (rng.next_f64() - 0.5) * 0.04))
        };

        // Hard outage on rail 0: ~15 % of the run, many RTOs long.
        let down_at = jitter(&mut rng, 0.30);
        let up_at = jitter(&mut rng, 0.45);
        let outages = vec![RailOutage {
            rail: 0,
            down_at,
            up_at: Some(up_at),
        }];

        let mut dials = Vec::new();
        // Bandwidth drift on both rails across the chaos window: a slow
        // rail forces the online calibrator to re-split while traffic
        // flows.
        for (i, frac) in [0.27, 0.36, 0.45, 0.54].iter().enumerate() {
            dials.push(DialEvent {
                at: jitter(&mut rng, *frac),
                rail: i % 2,
                kind: DialKind::Bandwidth(0.3 + rng.next_f64() * 1.2),
            });
        }
        // Drop storms on rail 1 only, strictly after the rail-0 outage
        // is over (never blackhole both rails at once).
        let storm_floor = up_at.as_secs_f64() / d + 0.02;
        for frac in [storm_floor.max(0.48), 0.58] {
            dials.push(DialEvent {
                at: jitter(&mut rng, frac),
                rail: 1,
                kind: DialKind::DropBoost(0.2 + rng.next_f64() * 0.3),
            });
        }
        dials.sort_by_key(|e| e.at);

        ChaosSchedule {
            dials,
            outages,
            corrupt_prob: 0.0005,
            dup_prob: 0.0005,
            reorder_prob: 0.001,
            heal_at: Duration::from_secs_f64(d * 0.70),
        }
    }
}

/// Soak parameters. `smoke()` fits the CI budget; `full()` is the
/// minutes-long scheduled run.
#[derive(Clone, Debug)]
pub struct SoakSpec {
    /// Master seed — recorded in the report; replays the whole run.
    pub seed: u64,
    /// Load phase length (drain comes on top).
    pub duration: Duration,
    /// Windows the run is sliced into for throughput accounting.
    pub windows: usize,
    /// Fabric rate shaping (wall seconds per modelled second); must be
    /// > 0 or bandwidth drift has nothing to stretch.
    pub time_scale: f64,
    /// The tenant mix.
    pub traffic: TrafficSpec,
    /// p99 ack-latency ceiling over the whole run.
    pub p99_ceiling: Duration,
    /// p999 ack-latency ceiling over the whole run.
    pub p999_ceiling: Duration,
    /// Max tolerated head→tail closed-loop throughput decay, percent.
    pub max_decay_pct: f64,
    /// Budget for draining outstanding requests after the load phase.
    pub drain_deadline: Duration,
    /// Whether the chaos schedule applies. A clean run (false) has no
    /// outage, no dial turns and no background fault probabilities —
    /// it exercises the watchdog's false-positive contract: zero
    /// alerts, or the gate fails.
    pub chaos: bool,
    /// Continuous-telemetry window interval. `Duration::ZERO` disables
    /// the telemetry pipeline and the watchdog entirely (the pre-PR-7
    /// soak behaviour).
    pub telemetry_window: Duration,
}

impl SoakSpec {
    /// CI smoke: ~8 s of load, finishes well inside a minute.
    pub fn smoke(seed: u64) -> Self {
        SoakSpec {
            seed,
            duration: Duration::from_secs(8),
            windows: 8,
            time_scale: 20.0,
            traffic: TrafficSpec::standard(seed),
            // Ceilings sized from the chaos plan, not from hope: a
            // message caught in-flight when the outage lands can pay
            // most of the outage (~15 % of the run) plus an RTO chain;
            // the gates catch anything *unbounded* beyond that.
            p99_ceiling: Duration::from_millis(2_500),
            p999_ceiling: Duration::from_millis(5_000),
            max_decay_pct: 10.0,
            drain_deadline: Duration::from_secs(30),
            chaos: true,
            telemetry_window: Duration::from_millis(250),
        }
    }

    /// Scheduled full soak: minutes of load, same gates.
    pub fn full(seed: u64) -> Self {
        SoakSpec {
            duration: Duration::from_secs(180),
            windows: 12,
            drain_deadline: Duration::from_secs(120),
            ..SoakSpec::smoke(seed)
        }
    }
}

/// Watchdog thresholds scaled to the soak's shaped fabric (the
/// defaults are sized for real links, not a time-scaled mem fabric):
/// lower retransmit floor so a drop storm on sub-second windows trips
/// the rule, everything else on the quiet-side defaults. The clean
/// soak runs the same config and must fire nothing.
fn soak_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        enabled: true,
        retransmit_floor: 6,
        ..WatchdogConfig::default()
    }
}

/// One ack-latency sample.
#[derive(Clone, Copy)]
struct Sample {
    /// When the ack was observed, ns since soak start.
    at_ns: u64,
    /// Submit→ack latency, ns.
    lat_ns: u64,
}

/// What one tenant thread brings home.
struct TenantRun {
    accepted: u64,
    shed: u64,
    acked: u64,
    bytes_acked: u64,
    stuck: u64,
    samples: Vec<Sample>,
}

/// Per-tenant slice of the report.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// "open" or "closed/N".
    pub mode: String,
    /// Sends the admission layer accepted.
    pub accepted: u64,
    /// Sends shed with `WouldBlock` (counted, not crashed).
    pub shed: u64,
    /// Sends acked end-to-end.
    pub acked: u64,
    /// Payload bytes acked.
    pub bytes_acked: u64,
    /// Median ack latency, microseconds.
    pub p50_us: u64,
    /// p99 ack latency, microseconds.
    pub p99_us: u64,
    /// p999 ack latency, microseconds.
    pub p999_us: u64,
}

impl Serialize for TenantOutcome {
    fn to_value(&self) -> Value {
        ser::object([
            ("name", ser::v(&self.name)),
            ("mode", ser::v(&self.mode)),
            ("accepted", ser::v(&self.accepted)),
            ("shed", ser::v(&self.shed)),
            ("acked", ser::v(&self.acked)),
            ("bytes_acked", ser::v(&self.bytes_acked)),
            ("p50_us", ser::v(&self.p50_us)),
            ("p99_us", ser::v(&self.p99_us)),
            ("p999_us", ser::v(&self.p999_us)),
        ])
    }
}

/// The soak result — what `BENCH_soak.json` records.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Seed that replays the run (traffic + faults + dial timeline).
    pub seed: u64,
    /// Load-phase length, seconds.
    pub duration_s: f64,
    /// Throughput windows.
    pub windows: usize,
    /// Fabric time scale.
    pub time_scale: f64,
    /// Per-tenant outcomes.
    pub tenants: Vec<TenantOutcome>,
    /// Closed-loop messages acked per window (the decay metric's input).
    pub closed_msgs_per_window: Vec<u64>,
    /// Closed-loop ack rate over the first two (clean) windows, msgs/s.
    pub head_rate_hz: f64,
    /// Closed-loop ack rate over the last two (clean) windows, msgs/s.
    pub tail_rate_hz: f64,
    /// Head→tail decay, percent (negative = tail faster).
    pub decay_pct: f64,
    /// Overall p50 ack latency, microseconds.
    pub p50_us: u64,
    /// Overall p99 ack latency, microseconds.
    pub p99_us: u64,
    /// Overall p999 ack latency, microseconds.
    pub p999_us: u64,
    /// Engine retransmissions on the sender.
    pub retransmits: u64,
    /// Frames the fault injector ate on the sender's tx side.
    pub tx_dropped: u64,
    /// Frames the receiver rejected (CRC/decode).
    pub rx_errors: u64,
    /// Submissions shed at the queue-depth bound.
    pub shed_queue: u64,
    /// Submissions shed by per-tenant admission.
    pub shed_admission: u64,
    /// Submissions shed at the pool watermark.
    pub shed_watermark: u64,
    /// Unaccounted pool buffers on the sender after drain (gate: 0).
    pub pool_leaks_a: u64,
    /// Unaccounted pool buffers on the receiver after drain (gate: 0).
    pub pool_leaks_b: u64,
    /// Requests that never acked within the drain deadline (gate: 0).
    pub stuck: u64,
    /// Live dial turns applied.
    pub dial_events: usize,
    /// Hard outages scheduled.
    pub outage_count: usize,
    /// Heal point, seconds into the run.
    pub heal_at_s: f64,
    /// Gate: p99 ceiling, microseconds.
    pub p99_ceiling_us: u64,
    /// Gate: p999 ceiling, microseconds.
    pub p999_ceiling_us: u64,
    /// Gate: max decay, percent.
    pub max_decay_pct: f64,
    /// Whether the chaos schedule was applied (false = clean run,
    /// exercising the watchdog's zero-false-positive contract).
    pub chaos: bool,
    /// Telemetry window interval, seconds (0 = telemetry off).
    pub telemetry_window_s: f64,
    /// Telemetry windows closed on the sender by the end of the drain.
    pub telemetry_windows: u64,
    /// Watchdog alerts fired on the sender, in firing order.
    pub alerts: Vec<AlertOutcome>,
    /// Watchdog verdict (`None` = watchdog off).
    pub watchdog_clean: Option<bool>,
    /// First rail-0 outage start, seconds into the run (-1 when clean).
    pub outage_down_s: f64,
    /// First rail-1 drop storm, seconds into the run (-1 when clean).
    pub storm_at_s: f64,
    /// Full JSONL telemetry time series from the sender — written as
    /// its own artifact by callers, not serialized into the gate JSON.
    pub telemetry_jsonl: Option<String>,
    /// Machine-readable watchdog verdict (same policy as the series).
    pub verdict_json: Option<String>,
}

/// One watchdog alert, flattened for the report.
#[derive(Clone, Debug)]
pub struct AlertOutcome {
    /// Rule label (`retransmit_storm`, ...).
    pub kind: String,
    /// Telemetry window ordinal that tripped it.
    pub window: u64,
    /// Engine-clock fire time, seconds into the run.
    pub t_s: f64,
    /// Offending rail, when rail-scoped.
    pub rail: Option<u64>,
    /// Measured value.
    pub value: f64,
    /// EWMA baseline at fire time.
    pub baseline: f64,
}

impl Serialize for AlertOutcome {
    fn to_value(&self) -> Value {
        ser::object([
            ("kind", ser::v(&self.kind)),
            ("window", ser::v(&self.window)),
            ("t_s", ser::v(&self.t_s)),
            ("rail", ser::v(&self.rail)),
            ("value", ser::v(&self.value)),
            ("baseline", ser::v(&self.baseline)),
        ])
    }
}

impl Serialize for SoakReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("seed", ser::v(&self.seed)),
            ("duration_s", ser::v(&self.duration_s)),
            ("windows", ser::v(&self.windows)),
            ("time_scale", ser::v(&self.time_scale)),
            ("tenants", ser::v(&self.tenants)),
            (
                "closed_msgs_per_window",
                ser::v(&self.closed_msgs_per_window),
            ),
            ("head_rate_hz", ser::v(&self.head_rate_hz)),
            ("tail_rate_hz", ser::v(&self.tail_rate_hz)),
            ("decay_pct", ser::v(&self.decay_pct)),
            ("p50_us", ser::v(&self.p50_us)),
            ("p99_us", ser::v(&self.p99_us)),
            ("p999_us", ser::v(&self.p999_us)),
            ("retransmits", ser::v(&self.retransmits)),
            ("tx_dropped", ser::v(&self.tx_dropped)),
            ("rx_errors", ser::v(&self.rx_errors)),
            ("shed_queue", ser::v(&self.shed_queue)),
            ("shed_admission", ser::v(&self.shed_admission)),
            ("shed_watermark", ser::v(&self.shed_watermark)),
            ("pool_leaks_a", ser::v(&self.pool_leaks_a)),
            ("pool_leaks_b", ser::v(&self.pool_leaks_b)),
            ("stuck", ser::v(&self.stuck)),
            ("dial_events", ser::v(&self.dial_events)),
            ("outage_count", ser::v(&self.outage_count)),
            ("heal_at_s", ser::v(&self.heal_at_s)),
            ("p99_ceiling_us", ser::v(&self.p99_ceiling_us)),
            ("p999_ceiling_us", ser::v(&self.p999_ceiling_us)),
            ("max_decay_pct", ser::v(&self.max_decay_pct)),
            ("chaos", ser::v(&self.chaos)),
            ("telemetry_window_s", ser::v(&self.telemetry_window_s)),
            ("telemetry_windows", ser::v(&self.telemetry_windows)),
            ("alerts", ser::v(&self.alerts)),
            ("watchdog_clean", ser::v(&self.watchdog_clean)),
            ("outage_down_s", ser::v(&self.outage_down_s)),
            ("storm_at_s", ser::v(&self.storm_at_s)),
        ])
    }
}

/// Fast-failure health so the soak's RTOs and probes fit the run length
/// (the defaults are sized for real links, not a shaped fabric).
fn soak_health(engine: &mut EngineConfig) {
    engine.health = nmad_core::HealthConfig {
        initial_rto_ns: 20_000_000,
        min_rto_ns: 5_000_000,
        // Cap backoff at 200 ms: the latency tail under a drop storm is
        // dominated by the last RTO in the chain, and the SLO cares
        // about boundedness, not patience.
        max_rto_ns: 200_000_000,
        probe_interval_ns: 50_000_000,
        probe_timeout_ns: 20_000_000,
        ..engine.health
    };
}

/// Run one soak. Blocks for `duration` plus however much of the drain
/// budget the tail needs.
pub fn run(spec: &SoakSpec) -> SoakReport {
    let schedule = spec
        .chaos
        .then(|| ChaosSchedule::generate(spec.seed, spec.duration));
    let chaos = ChaosState::new(2);

    let mut engine = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    engine.parallel = true;
    engine.acked = true;
    soak_health(&mut engine);
    engine.calibration.enabled = true;
    // Bounded everything: the soak must shed, not grow.
    engine.overload.max_submission_depth = 4096;
    engine.overload.max_tenant_inflight = 32;
    engine.overload.pool_watermark = 1 << 15;
    let telemetry_on = spec.telemetry_window > Duration::ZERO;
    if telemetry_on {
        // The aggregator tails the recorder ring; size it so a fold per
        // scheduler pass never misses events.
        engine.record_capacity = engine.record_capacity.max(1 << 15);
        engine.telemetry = TelemetryConfig {
            window_ns: spec.telemetry_window.as_nanos() as u64,
            windows: 512,
        };
        engine.watchdog = soak_watchdog();
    }

    let mut cfg = FabricConfig::new(platform::paper_platform(), engine);
    cfg.conns = spec.traffic.tenants.len();
    cfg.time_scale = spec.time_scale;
    cfg.chaos = Some(chaos.clone());
    if let Some(schedule) = &schedule {
        cfg.faults = Some(FaultSpec {
            corrupt_prob: schedule.corrupt_prob,
            dup_prob: schedule.dup_prob,
            reorder_prob: schedule.reorder_prob,
            seed: spec.seed,
            outages: schedule.outages.clone(),
            ..FaultSpec::default()
        });
    }

    let (a, b) = pair(cfg);
    let conns = a.conns().to_vec();
    let start = Instant::now();
    let dial_count = AtomicU64::new(0);

    let runs: Vec<TenantRun> = thread::scope(|s| {
        // Chaos driver: walk the dial timeline, then heal.
        if let Some(schedule) = &schedule {
            let chaos = &chaos;
            let dial_count = &dial_count;
            s.spawn(move || {
                for ev in &schedule.dials {
                    sleep_until(start, ev.at);
                    match ev.kind {
                        DialKind::Bandwidth(m) => chaos.set_bandwidth_mult(ev.rail, m),
                        DialKind::DropBoost(p) => chaos.set_drop_boost(ev.rail, p),
                    }
                    dial_count.fetch_add(1, Ordering::Relaxed);
                }
                sleep_until(start, schedule.heal_at);
                chaos.heal_all();
            });
        }

        let handles: Vec<_> = spec
            .traffic
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let rng = spec.traffic.tenant_rng(i);
                let (a, b, conn) = (&a, &b, conns[i]);
                let tenant = t.clone();
                let spec = &*spec;
                s.spawn(move || tenant_loop(a, b, conn, &tenant, rng, start, spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    // Everything is drained: read the ledgers and counters.
    let st = a.stats();
    let ov = a.overload_stats();
    let window_len = spec.duration.as_secs_f64() / spec.windows as f64;

    // Closed-loop acked messages per window (decay metric input).
    let mut per_window = vec![0u64; spec.windows];
    let mut all_lat: Vec<u64> = Vec::new();
    for (i, r) in runs.iter().enumerate() {
        for smp in &r.samples {
            all_lat.push(smp.lat_ns);
            if matches!(spec.traffic.tenants[i].mode, LoopMode::Closed { .. }) {
                let w = (smp.at_ns as f64 / 1e9 / window_len) as usize;
                if w < spec.windows {
                    per_window[w] += 1;
                }
            }
        }
    }
    all_lat.sort_unstable();
    let head: u64 = per_window.iter().take(2).sum();
    let tail: u64 = per_window.iter().rev().take(2).sum();
    let head_rate = head as f64 / (2.0 * window_len);
    let tail_rate = tail as f64 / (2.0 * window_len);
    let decay_pct = if head > 0 {
        (head as f64 - tail as f64) / head as f64 * 100.0
    } else {
        100.0
    };

    let tenants = runs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut lat: Vec<u64> = r.samples.iter().map(|s| s.lat_ns).collect();
            lat.sort_unstable();
            TenantOutcome {
                name: spec.traffic.tenants[i].name.to_string(),
                mode: match spec.traffic.tenants[i].mode {
                    LoopMode::Open => "open".to_string(),
                    LoopMode::Closed { window } => format!("closed/{window}"),
                },
                accepted: r.accepted,
                shed: r.shed,
                acked: r.acked,
                bytes_acked: r.bytes_acked,
                p50_us: pct_us(&lat, 0.50),
                p99_us: pct_us(&lat, 0.99),
                p999_us: pct_us(&lat, 0.999),
            }
        })
        .collect();

    // Telemetry + watchdog verdicts off the sender (the endpoint the
    // chaos bites: retransmits and failovers are sender-side calls).
    let telemetry_jsonl = a.telemetry_jsonl();
    let verdict_json = a.watchdog_verdict();
    let telemetry_windows = a.telemetry_latest().map_or(0, |w| w.ordinal + 1);
    let alerts: Vec<AlertOutcome> = a
        .alerts()
        .iter()
        .map(|al| AlertOutcome {
            kind: al.kind.label().to_string(),
            window: al.window,
            t_s: al.ts_ns as f64 / 1e9,
            rail: al.rail.map(|r| r as u64),
            value: al.value,
            baseline: al.baseline,
        })
        .collect();
    let watchdog_clean = telemetry_on.then_some(alerts.is_empty());
    let outage_down_s = schedule
        .as_ref()
        .and_then(|s| s.outages.first())
        .map_or(-1.0, |o| o.down_at.as_secs_f64());
    let storm_at_s = schedule
        .as_ref()
        .and_then(|s| {
            s.dials
                .iter()
                .find(|d| matches!(d.kind, DialKind::DropBoost(_)))
        })
        .map_or(-1.0, |d| d.at.as_secs_f64());

    SoakReport {
        seed: spec.seed,
        duration_s: spec.duration.as_secs_f64(),
        windows: spec.windows,
        time_scale: spec.time_scale,
        tenants,
        closed_msgs_per_window: per_window,
        head_rate_hz: head_rate,
        tail_rate_hz: tail_rate,
        decay_pct,
        p50_us: pct_us(&all_lat, 0.50),
        p99_us: pct_us(&all_lat, 0.99),
        p999_us: pct_us(&all_lat, 0.999),
        retransmits: st.retransmits,
        tx_dropped: a.tx_dropped(),
        rx_errors: b.rx_errors(),
        shed_queue: ov.queue_rejections,
        shed_admission: ov.admission_rejections,
        shed_watermark: ov.watermark_rejections,
        pool_leaks_a: a.pool_leaks(),
        pool_leaks_b: b.pool_leaks(),
        stuck: runs.iter().map(|r| r.stuck).sum(),
        dial_events: dial_count.load(Ordering::Relaxed) as usize,
        outage_count: schedule.as_ref().map_or(0, |s| s.outages.len()),
        heal_at_s: schedule.as_ref().map_or(0.0, |s| s.heal_at.as_secs_f64()),
        p99_ceiling_us: spec.p99_ceiling.as_micros() as u64,
        p999_ceiling_us: spec.p999_ceiling.as_micros() as u64,
        max_decay_pct: spec.max_decay_pct,
        chaos: spec.chaos,
        telemetry_window_s: spec.telemetry_window.as_secs_f64(),
        telemetry_windows,
        alerts,
        watchdog_clean,
        outage_down_s,
        storm_at_s,
        telemetry_jsonl,
        verdict_json,
    }
}

/// One tenant: paced submissions through the admission boundary, acks
/// reaped as latency samples, full drain at the end.
fn tenant_loop(
    a: &Endpoint,
    b: &Endpoint,
    conn: ConnId,
    tenant: &crate::loadgen::TenantSpec,
    mut rng: Xoshiro256StarStar,
    start: Instant,
    spec: &SoakSpec,
) -> TenantRun {
    /// Open-loop backlog hard cap: past this the tenant self-throttles
    /// by blocking on the oldest request (the generator must not become
    /// its own unbounded queue).
    const OPEN_BACKLOG_CAP: usize = 1024;

    let mut arrivals = ArrivalSampler::new(tenant.arrivals, &mut rng);
    let mut out = TenantRun {
        accepted: 0,
        shed: 0,
        acked: 0,
        bytes_acked: 0,
        stuck: 0,
        samples: Vec::new(),
    };
    // Outstanding requests, oldest first: (send, recv, submitted, bytes).
    let mut backlog: VecDeque<(
        nmad_transport_mem::SendHandle,
        nmad_transport_mem::RecvHandle,
        Instant,
        u64,
    )> = VecDeque::new();
    let drain_end = start + spec.duration + spec.drain_deadline;

    // Reap the oldest entry. Blocking variant waits out the remaining
    // drain budget; a miss there is a stuck request, the soak's cardinal
    // failure.
    let reap = |backlog: &mut VecDeque<_>, out: &mut TenantRun, block: bool| -> bool {
        let Some((s, r, submitted, bytes)): Option<(
            nmad_transport_mem::SendHandle,
            nmad_transport_mem::RecvHandle,
            Instant,
            u64,
        )> = backlog.pop_front() else {
            return false;
        };
        let timeout = if block {
            drain_end.saturating_duration_since(Instant::now())
        } else {
            Duration::ZERO
        };
        if s.wait_acked(timeout) {
            let lat = submitted.elapsed();
            out.acked += 1;
            out.bytes_acked += bytes;
            out.samples.push(Sample {
                at_ns: start.elapsed().as_nanos() as u64,
                lat_ns: lat.as_nanos() as u64,
            });
            // Ack means the receiver reassembled it; claim the assembly
            // so buffered messages don't pile up behind the soak.
            if r.wait(Duration::from_secs(10)).is_none() {
                out.stuck += 1;
            }
            true
        } else if block {
            out.stuck += 1;
            true
        } else {
            backlog.push_front((s, r, submitted, bytes));
            false
        }
    };

    while start.elapsed() < spec.duration {
        // Reap what's done; closed loops also enforce their window here.
        while reap(&mut backlog, &mut out, false) {}
        match tenant.mode {
            LoopMode::Closed { window } => {
                while backlog.len() >= window {
                    reap(&mut backlog, &mut out, true);
                }
            }
            LoopMode::Open => {
                while backlog.len() >= OPEN_BACKLOG_CAP {
                    reap(&mut backlog, &mut out, true);
                }
            }
        }

        // Pace, then offer one message to the admission boundary.
        thread::sleep(arrivals.next_gap(&mut rng).min(Duration::from_millis(100)));
        if start.elapsed() >= spec.duration {
            break;
        }
        let size = tenant.sizes.sample(&mut rng) as usize;
        let payload = Bytes::from(vec![0x5Au8; size]);
        match a.try_send(conn, vec![payload]) {
            Ok(s) => {
                let r = b.recv(conn);
                backlog.push_back((s, r, Instant::now(), size as u64));
                out.accepted += 1;
            }
            Err(SubmitError::WouldBlock) => out.shed += 1,
            Err(SubmitError::Shutdown) => break,
        }
    }

    // Drain: after the final heal every outstanding request must ack.
    while !backlog.is_empty() {
        reap(&mut backlog, &mut out, true);
    }
    out
}

fn sleep_until(start: Instant, at: Duration) {
    let target = start + at;
    let now = Instant::now();
    if target > now {
        thread::sleep(target - now);
    }
}

/// Percentile of a sorted ns vector, reported in microseconds.
fn pct_us(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] / 1_000
}

/// SLO gate. Empty = pass. Latency and decay messages carry "timing"
/// so the bench main can classify load-sensitive failures for its
/// retry-once policy; the ledger gates (leaks, stuck) are deterministic
/// and never retried.
pub fn check(r: &SoakReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.stuck > 0 {
        v.push(format!(
            "{} requests stuck after the final fault healed (gate: 0)",
            r.stuck
        ));
    }
    if r.pool_leaks_a > 0 || r.pool_leaks_b > 0 {
        v.push(format!(
            "BufferPool ledger leaked: sender {} / receiver {} unaccounted buffers (gate: 0)",
            r.pool_leaks_a, r.pool_leaks_b
        ));
    }
    for t in &r.tenants {
        if t.accepted == 0 || t.acked == 0 {
            v.push(format!(
                "tenant {} made no progress: accepted {}, acked {}",
                t.name, t.accepted, t.acked
            ));
        }
    }
    if r.chaos && r.retransmits == 0 && r.tx_dropped == 0 {
        v.push("chaos never bit: zero retransmits and zero injected drops".to_string());
    }
    // Watchdog contract. Chaos run: the injected incidents must be
    // *reported*, promptly — an alert blaming rail 0 within two windows
    // of the outage landing, and a retransmit-storm alert blaming
    // rail 1 within two windows of the first drop storm. Clean run:
    // nothing may fire at all. (The detection gates are load-sensitive,
    // hence "timing" for the retry-once policy; a false positive on a
    // clean fabric is deterministic and never retried.)
    if let Some(clean) = r.watchdog_clean {
        let w = r.telemetry_window_s;
        // Alert timestamps are engine-clock (fabric epoch); injection
        // times are relative to the load start a few ms later. One
        // window of slack on the early side absorbs the skew.
        let within = |t: f64, inject: f64| t >= inject - w && t <= inject + 2.0 * w;
        if !r.chaos {
            if !clean {
                v.push(format!(
                    "clean run fired {} watchdog alert(s): {:?}",
                    r.alerts.len(),
                    r.alerts.iter().map(|a| a.kind.as_str()).collect::<Vec<_>>()
                ));
            }
        } else {
            if !r
                .alerts
                .iter()
                .any(|a| a.rail == Some(0) && within(a.t_s, r.outage_down_s))
            {
                v.push(format!(
                    "timing: no watchdog alert blamed rail 0 within 2 windows of the outage at {:.2}s (alerts: {:?})",
                    r.outage_down_s,
                    r.alerts
                ));
            }
            if !r.alerts.iter().any(|a| {
                a.kind == "retransmit_storm" && a.rail == Some(1) && within(a.t_s, r.storm_at_s)
            }) {
                v.push(format!(
                    "timing: no retransmit-storm alert blamed rail 1 within 2 windows of the drop storm at {:.2}s (alerts: {:?})",
                    r.storm_at_s,
                    r.alerts
                ));
            }
        }
    }
    if r.p99_us > r.p99_ceiling_us {
        v.push(format!(
            "timing: p99 {} us over the {} us ceiling",
            r.p99_us, r.p99_ceiling_us
        ));
    }
    if r.p999_us > r.p999_ceiling_us {
        v.push(format!(
            "timing: p999 {} us over the {} us ceiling",
            r.p999_us, r.p999_ceiling_us
        ));
    }
    if r.decay_pct > r.max_decay_pct {
        v.push(format!(
            "timing: closed-loop throughput decayed {:.1}% head->tail (gate {:.0}%): {:.1} -> {:.1} msgs/s",
            r.decay_pct, r.max_decay_pct, r.head_rate_hz, r.tail_rate_hz
        ));
    }
    v
}

/// Aligned text summary.
pub fn render(r: &SoakReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos soak: seed {} | {:.0}s load, {} windows | {} dial turns, {} outage(s), heal at {:.1}s",
        r.seed, r.duration_s, r.windows, r.dial_events, r.outage_count, r.heal_at_s
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>9} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "tenant", "mode", "accepted", "shed", "acked", "bytes", "p50 us", "p99 us", "p999 us"
    );
    for t in &r.tenants {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>9} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9}",
            t.name,
            t.mode,
            t.accepted,
            t.shed,
            t.acked,
            t.bytes_acked,
            t.p50_us,
            t.p99_us,
            t.p999_us
        );
    }
    let _ = writeln!(
        out,
        "latency: p50 {} us, p99 {} us (ceiling {}), p999 {} us (ceiling {})",
        r.p50_us, r.p99_us, r.p99_ceiling_us, r.p999_us, r.p999_ceiling_us
    );
    let _ = writeln!(
        out,
        "throughput: head {:.1} -> tail {:.1} closed msgs/s ({:+.1}% decay, gate {:.0}%)",
        r.head_rate_hz, r.tail_rate_hz, r.decay_pct, r.max_decay_pct
    );
    let _ = writeln!(
        out,
        "faults: {} retransmits, {} injected drops, {} rx rejects | shed q/adm/wm {}/{}/{}",
        r.retransmits, r.tx_dropped, r.rx_errors, r.shed_queue, r.shed_admission, r.shed_watermark
    );
    let _ = writeln!(
        out,
        "ledgers: pool leaks {}/{} | stuck {}",
        r.pool_leaks_a, r.pool_leaks_b, r.stuck
    );
    if let Some(clean) = r.watchdog_clean {
        let _ = writeln!(
            out,
            "watchdog: {} | {} telemetry windows of {:.0} ms | outage at {:.2}s, storm at {:.2}s",
            if clean { "clean" } else { "alerts fired" },
            r.telemetry_windows,
            r.telemetry_window_s * 1e3,
            r.outage_down_s,
            r.storm_at_s
        );
        for a in &r.alerts {
            let _ = writeln!(
                out,
                "  alert {:>17} at {:>7.2}s window {:>3} rail {:>4} value {:>12.1} baseline {:>10.1}",
                a.kind,
                a.t_s,
                a.window,
                a.rail.map_or("-".to_string(), |x| x.to_string()),
                a.value,
                a.baseline
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let d = Duration::from_secs(100);
        let a = ChaosSchedule::generate(7, d);
        let b = ChaosSchedule::generate(7, d);
        assert_eq!(a.dials.len(), b.dials.len());
        for (x, y) in a.dials.iter().zip(&b.dials) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.rail, y.rail);
        }
        // Chaos only in the middle; heal after every event; head and
        // tail stay clean.
        for ev in &a.dials {
            assert!(ev.at >= Duration::from_secs_f64(100.0 * 0.25), "{ev:?}");
            assert!(ev.at < a.heal_at, "{ev:?} after heal");
        }
        assert!(a.heal_at <= Duration::from_secs_f64(100.0 * 0.75));
        for o in &a.outages {
            assert!(o.down_at >= Duration::from_secs_f64(100.0 * 0.25));
            assert!(o.up_at.expect("soak outages must end") < a.heal_at);
        }
    }

    #[test]
    fn schedule_never_blackholes_both_rails() {
        for seed in 0..32 {
            let s = ChaosSchedule::generate(seed, Duration::from_secs(60));
            let outage_end = s.outages.iter().filter_map(|o| o.up_at).max().unwrap();
            for ev in &s.dials {
                if let DialKind::DropBoost(p) = ev.kind {
                    // Storms only off the outage rail, only after the
                    // outage, and never total loss.
                    assert_ne!(ev.rail, 0, "storm on the outage rail (seed {seed})");
                    assert!(ev.at >= outage_end, "storm during outage (seed {seed})");
                    assert!(p < 0.9, "storm too close to blackhole (seed {seed})");
                }
            }
        }
    }

    /// A miniature end-to-end soak: every machinery piece (traffic,
    /// dials, outage, heal, drain, ledgers) in ~2 s of load.
    #[test]
    fn mini_soak_runs_clean() {
        let mut spec = SoakSpec::smoke(5);
        spec.duration = Duration::from_secs(2);
        spec.windows = 4;
        let r = run(&spec);
        assert_eq!(r.stuck, 0, "{}", render(&r));
        assert_eq!(r.pool_leaks_a + r.pool_leaks_b, 0, "{}", render(&r));
        for t in &r.tenants {
            assert!(t.accepted > 0 && t.acked > 0, "{}", render(&r));
        }
        assert!(r.dial_events > 0, "chaos driver never fired");
        assert!(
            r.retransmits > 0 || r.tx_dropped > 0,
            "chaos had no effect: {}",
            render(&r)
        );
        // The report replays: serialization carries the seed.
        let json = serde_json::to_string(&r).expect("serializable");
        assert!(json.contains("\"seed\""));
    }

    /// The watchdog correctness gate in miniature: the rail-0 outage
    /// and the rail-1 drop storm must each be reported within two
    /// telemetry windows of injection.
    #[test]
    fn chaos_soak_watchdog_reports_the_injected_incidents() {
        let mut spec = SoakSpec::smoke(11);
        spec.duration = Duration::from_secs(3);
        spec.windows = 4;
        spec.telemetry_window = Duration::from_millis(125);
        let r = run(&spec);
        assert!(r.telemetry_windows > 0, "{}", render(&r));
        let w = r.telemetry_window_s;
        let within = |t: f64, inject: f64| t >= inject - w && t <= inject + 2.0 * w;
        assert!(
            r.alerts
                .iter()
                .any(|a| a.rail == Some(0) && within(a.t_s, r.outage_down_s)),
            "rail-0 outage at {:.2}s unreported: {}",
            r.outage_down_s,
            render(&r)
        );
        assert!(
            r.alerts.iter().any(|a| a.kind == "retransmit_storm"
                && a.rail == Some(1)
                && within(a.t_s, r.storm_at_s)),
            "rail-1 drop storm at {:.2}s unreported: {}",
            r.storm_at_s,
            render(&r)
        );
        let verdict = r.verdict_json.as_deref().expect("watchdog verdict");
        assert!(verdict.contains("\"clean\":false"), "{verdict}");
        // The time series went along for the ride.
        let jsonl = r.telemetry_jsonl.as_deref().expect("telemetry series");
        assert!(jsonl.lines().count() as u64 >= r.telemetry_windows.min(8));
    }

    /// The false-positive half of the contract: a clean fabric under
    /// the same load and the same thresholds fires nothing.
    #[test]
    fn clean_soak_fires_no_alerts() {
        let mut spec = SoakSpec::smoke(11);
        spec.duration = Duration::from_secs(2);
        spec.windows = 4;
        spec.chaos = false;
        spec.telemetry_window = Duration::from_millis(125);
        let r = run(&spec);
        assert_eq!(r.watchdog_clean, Some(true), "{}", render(&r));
        assert!(r.alerts.is_empty(), "{}", render(&r));
        assert!(r.telemetry_windows > 0, "telemetry never closed a window");
        let verdict = r.verdict_json.as_deref().expect("watchdog verdict");
        assert!(verdict.contains("\"clean\":true"), "{verdict}");
        assert_eq!(r.outage_count, 0);
        assert_eq!(r.tx_dropped, 0, "clean run must inject nothing");
        // check() must agree: no watchdog violations on a clean run.
        for v in check(&r) {
            assert!(
                !v.contains("watchdog") && !v.contains("alert"),
                "clean-run watchdog violation: {v}"
            );
        }
    }
}
