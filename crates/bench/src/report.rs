//! Rendering figure results as text tables and JSON.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use nmad_runtime_sim::Sweep;

use crate::figures::FigureResult;

fn fmt_size(size: u64) -> String {
    if size >= 1 << 20 {
        format!("{}M", size >> 20)
    } else if size >= 1024 {
        format!("{}K", size >> 10)
    } else {
        format!("{size}")
    }
}

/// Render one panel (latency or bandwidth) as an aligned text table:
/// sizes down the rows, one column per series.
pub fn render_panel(title: &str, series: &[Sweep], bandwidth: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    if series.is_empty() {
        let _ = writeln!(out, "(no panel)");
        return out;
    }
    let width = 14usize;
    let _ = write!(out, "{:>10}", "size");
    for s in series {
        // Head column label: compress long legend names.
        let label: String = s.label.chars().take(width - 1).collect();
        let _ = write!(out, " {label:>width$}");
    }
    let _ = writeln!(out);
    for (i, p) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{:>10}", fmt_size(p.size));
        for s in series {
            let q = &s.points[i];
            debug_assert_eq!(q.size, p.size);
            let v = if bandwidth {
                q.bandwidth_mbs
            } else {
                q.one_way_us
            };
            let _ = write!(out, " {v:>width$.2}");
        }
        let _ = writeln!(out);
    }
    // Legend with full labels.
    for (i, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  [{i}] {}", s.label);
    }
    out
}

/// Render a full figure result: caption, latency panel (µs), bandwidth
/// panel (MB/s).
pub fn render_table(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} — {} ===", fig.id, fig.caption);
    if !fig.latency.is_empty() {
        out.push_str(&render_panel(
            &format!("{}a: transfer time (us)", fig.id),
            &fig.latency,
            false,
        ));
    }
    if !fig.bandwidth.is_empty() {
        out.push_str(&render_panel(
            &format!("{}b: bandwidth (MB/s)", fig.id),
            &fig.bandwidth,
            true,
        ));
    }
    out
}

/// Directory where figure JSON dumps land.
pub fn figures_dir() -> PathBuf {
    // target/ lives at the workspace root; CARGO_MANIFEST_DIR is
    // crates/bench.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

/// The workspace root — where the `ablate_*` gates write their
/// `BENCH_*.json` snapshots so regression baselines live in version
/// control next to the code they measure (unlike the figure dumps,
/// which are scratch output under `target/`).
pub fn repo_root_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    dir.canonicalize().unwrap_or(dir)
}

/// Write a gate report as pretty JSON to `BENCH_<name>.json` at the
/// repo root; failures are reported to stderr, not fatal (the gate's
/// exit code comes from its violations, not from filesystem luck).
pub fn write_gate_json(name: &str, json: &[u8]) {
    let path = repo_root_dir().join(format!("BENCH_{name}.json"));
    match fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Write the figure as JSON under `target/figures/<id>.json`; returns the
/// path. Failures are reported, not fatal (benches still print tables).
pub fn write_json(fig: &FigureResult) -> std::io::Result<PathBuf> {
    let dir = figures_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", fig.id));
    fs::write(&path, serde_json::to_vec_pretty(fig).expect("serializable"))?;
    Ok(path)
}

/// Render one panel as CSV: `size,<series...>` — ready for gnuplot or a
/// spreadsheet.
pub fn render_csv(series: &[Sweep], bandwidth: bool) -> String {
    let mut out = String::new();
    if series.is_empty() {
        return out;
    }
    let _ = write!(out, "size");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    let _ = writeln!(out);
    for (i, p) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{}", p.size);
        for s in series {
            let q = &s.points[i];
            let v = if bandwidth {
                q.bandwidth_mbs
            } else {
                q.one_way_us
            };
            let _ = write!(out, ",{v:.4}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Write CSV dumps for a figure's panels under `target/figures/`.
pub fn write_csv(fig: &FigureResult) -> std::io::Result<Vec<PathBuf>> {
    let dir = figures_dir();
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    if !fig.latency.is_empty() {
        let path = dir.join(format!("{}_latency.csv", fig.id));
        fs::write(&path, render_csv(&fig.latency, false))?;
        written.push(path);
    }
    if !fig.bandwidth.is_empty() {
        let path = dir.join(format!("{}_bandwidth.csv", fig.id));
        fs::write(&path, render_csv(&fig.bandwidth, true))?;
        written.push(path);
    }
    Ok(written)
}

/// Standard main body for a figure bench target: run, print, dump.
pub fn run_figure_bench(name: &str, run: impl FnOnce() -> FigureResult) {
    eprintln!("running {name} (deterministic simulation)...");
    let fig = run();
    println!("{}", render_table(&fig));
    match write_json(&fig) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write JSON dump: {e}"),
    }
    match write_csv(&fig) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("could not write CSV dump: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_runtime_sim::SeriesPoint;

    fn sweep(label: &str) -> Sweep {
        Sweep {
            label: label.into(),
            points: vec![
                SeriesPoint {
                    size: 4,
                    one_way_us: 1.7,
                    bandwidth_mbs: 2.3,
                },
                SeriesPoint {
                    size: 8 << 20,
                    one_way_us: 9000.0,
                    bandwidth_mbs: 930.0,
                },
            ],
        }
    }

    #[test]
    fn table_contains_values_and_legend() {
        let fig = FigureResult {
            id: "figX".into(),
            caption: "test".into(),
            latency: vec![sweep("series one")],
            bandwidth: vec![sweep("series two")],
        };
        let t = render_table(&fig);
        assert!(t.contains("figX"));
        assert!(t.contains("1.70"), "latency value present: {t}");
        assert!(t.contains("930.00"), "bandwidth value present: {t}");
        assert!(t.contains("series one") && t.contains("series two"));
        assert!(t.contains("8M"), "sizes formatted: {t}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = render_csv(&[sweep("a"), sweep("b, with comma")], true);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,a,b; with comma"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("4,2.3000,"), "{row}");
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(4), "4");
        assert_eq!(fmt_size(2048), "2K");
        assert_eq!(fmt_size(8 << 20), "8M");
    }
}
