//! Rendering figure results as text tables and JSON.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use nmad_runtime_sim::Sweep;

use crate::figures::FigureResult;

fn fmt_size(size: u64) -> String {
    if size >= 1 << 20 {
        format!("{}M", size >> 20)
    } else if size >= 1024 {
        format!("{}K", size >> 10)
    } else {
        format!("{size}")
    }
}

/// Render one panel (latency or bandwidth) as an aligned text table:
/// sizes down the rows, one column per series.
pub fn render_panel(title: &str, series: &[Sweep], bandwidth: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    if series.is_empty() {
        let _ = writeln!(out, "(no panel)");
        return out;
    }
    let width = 14usize;
    let _ = write!(out, "{:>10}", "size");
    for s in series {
        // Head column label: compress long legend names.
        let label: String = s.label.chars().take(width - 1).collect();
        let _ = write!(out, " {label:>width$}");
    }
    let _ = writeln!(out);
    for (i, p) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{:>10}", fmt_size(p.size));
        for s in series {
            let q = &s.points[i];
            debug_assert_eq!(q.size, p.size);
            let v = if bandwidth {
                q.bandwidth_mbs
            } else {
                q.one_way_us
            };
            let _ = write!(out, " {v:>width$.2}");
        }
        let _ = writeln!(out);
    }
    // Legend with full labels.
    for (i, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  [{i}] {}", s.label);
    }
    out
}

/// Render a full figure result: caption, latency panel (µs), bandwidth
/// panel (MB/s).
pub fn render_table(fig: &FigureResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} — {} ===", fig.id, fig.caption);
    if !fig.latency.is_empty() {
        out.push_str(&render_panel(
            &format!("{}a: transfer time (us)", fig.id),
            &fig.latency,
            false,
        ));
    }
    if !fig.bandwidth.is_empty() {
        out.push_str(&render_panel(
            &format!("{}b: bandwidth (MB/s)", fig.id),
            &fig.bandwidth,
            true,
        ));
    }
    out
}

/// Directory where figure JSON dumps land.
pub fn figures_dir() -> PathBuf {
    // target/ lives at the workspace root; CARGO_MANIFEST_DIR is
    // crates/bench.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

/// The workspace root — where the `ablate_*` gates write their
/// `BENCH_*.json` snapshots so regression baselines live in version
/// control next to the code they measure (unlike the figure dumps,
/// which are scratch output under `target/`).
pub fn repo_root_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    dir.canonicalize().unwrap_or(dir)
}

/// Write a gate report as pretty JSON to `BENCH_<name>.json` at the
/// repo root; failures are reported to stderr, not fatal (the gate's
/// exit code comes from its violations, not from filesystem luck).
pub fn write_gate_json(name: &str, json: &[u8]) {
    let path = repo_root_dir().join(format!("BENCH_{name}.json"));
    match fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Write the figure as JSON under `target/figures/<id>.json`; returns the
/// path. Failures are reported, not fatal (benches still print tables).
pub fn write_json(fig: &FigureResult) -> std::io::Result<PathBuf> {
    let dir = figures_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", fig.id));
    fs::write(&path, serde_json::to_vec_pretty(fig).expect("serializable"))?;
    Ok(path)
}

// ---------------------------------------------------------------------
// Shared wall-clock noise policy
//
// Every wall-clock gate in this crate fights the same enemy: transient
// background load on the measuring box. The defense is the same three
// moves everywhere, so they live here once (obs_bench, ablate_parallel
// and ablate_cycles all use them):
//
// 1. warm up, then take MANY short samples rather than few long windows;
// 2. estimate with the lowest-quartile mean — noise is strictly
//    additive, so the cleanest 25% of samples is the signal;
// 3. if (and only if) a load-sensitive gate trips, re-measure once and
//    keep the better run. Deterministic gates (ledgers, counts,
//    coverage) are never retried.
// ---------------------------------------------------------------------

/// SplitMix64 finalizer: a deterministic bit mixer (no RNG state, no
/// seed from the clock) used to derandomize per-sample decisions such
/// as leg order, so periodic system noise (scheduler ticks, frequency
/// scaling) cannot phase-lock onto one leg of a fixed alternation.
pub fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mean of the lowest quartile of `samples` (sorted in place). A single
/// minimum is itself an extreme-value statistic and jitters; averaging
/// the cleanest 25% of samples converges much faster while still
/// rejecting every noise burst in the upper tail.
pub fn lower_quartile_mean(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    let keep = (samples.len() / 4).max(1);
    samples[..keep].iter().sum::<u64>() / keep as u64
}

/// The shared one-retry policy for wall-clock gates: if
/// `is_timing_flake` classifies `first`'s violations as timing-only,
/// run the measurement once more and keep the run `better` prefers
/// (`better(second, first)`). A real regression fails both attempts;
/// deterministic gate failures must return `false` from
/// `is_timing_flake` so they are never masked by a lucky rerun.
pub fn retry_once_on_timing<R>(
    name: &str,
    first: R,
    is_timing_flake: impl FnOnce(&R) -> bool,
    rerun: impl FnOnce() -> R,
    better: impl FnOnce(&R, &R) -> bool,
) -> R {
    if is_timing_flake(&first) {
        eprintln!("{name}: timing gate tripped; retrying once to rule out background load");
        let second = rerun();
        if better(&second, &first) {
            return second;
        }
    }
    first
}

/// Render one panel as CSV: `size,<series...>` — ready for gnuplot or a
/// spreadsheet.
pub fn render_csv(series: &[Sweep], bandwidth: bool) -> String {
    let mut out = String::new();
    if series.is_empty() {
        return out;
    }
    let _ = write!(out, "size");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    let _ = writeln!(out);
    for (i, p) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{}", p.size);
        for s in series {
            let q = &s.points[i];
            let v = if bandwidth {
                q.bandwidth_mbs
            } else {
                q.one_way_us
            };
            let _ = write!(out, ",{v:.4}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Write CSV dumps for a figure's panels under `target/figures/`.
pub fn write_csv(fig: &FigureResult) -> std::io::Result<Vec<PathBuf>> {
    let dir = figures_dir();
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    if !fig.latency.is_empty() {
        let path = dir.join(format!("{}_latency.csv", fig.id));
        fs::write(&path, render_csv(&fig.latency, false))?;
        written.push(path);
    }
    if !fig.bandwidth.is_empty() {
        let path = dir.join(format!("{}_bandwidth.csv", fig.id));
        fs::write(&path, render_csv(&fig.bandwidth, true))?;
        written.push(path);
    }
    Ok(written)
}

/// Standard main body for a figure bench target: run, print, dump.
pub fn run_figure_bench(name: &str, run: impl FnOnce() -> FigureResult) {
    eprintln!("running {name} (deterministic simulation)...");
    let fig = run();
    println!("{}", render_table(&fig));
    match write_json(&fig) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write JSON dump: {e}"),
    }
    match write_csv(&fig) {
        Ok(paths) => {
            for p in paths {
                eprintln!("wrote {}", p.display());
            }
        }
        Err(e) => eprintln!("could not write CSV dump: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_runtime_sim::SeriesPoint;

    fn sweep(label: &str) -> Sweep {
        Sweep {
            label: label.into(),
            points: vec![
                SeriesPoint {
                    size: 4,
                    one_way_us: 1.7,
                    bandwidth_mbs: 2.3,
                },
                SeriesPoint {
                    size: 8 << 20,
                    one_way_us: 9000.0,
                    bandwidth_mbs: 930.0,
                },
            ],
        }
    }

    #[test]
    fn table_contains_values_and_legend() {
        let fig = FigureResult {
            id: "figX".into(),
            caption: "test".into(),
            latency: vec![sweep("series one")],
            bandwidth: vec![sweep("series two")],
        };
        let t = render_table(&fig);
        assert!(t.contains("figX"));
        assert!(t.contains("1.70"), "latency value present: {t}");
        assert!(t.contains("930.00"), "bandwidth value present: {t}");
        assert!(t.contains("series one") && t.contains("series two"));
        assert!(t.contains("8M"), "sizes formatted: {t}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = render_csv(&[sweep("a"), sweep("b, with comma")], true);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,a,b; with comma"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("4,2.3000,"), "{row}");
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(4), "4");
        assert_eq!(fmt_size(2048), "2K");
        assert_eq!(fmt_size(8 << 20), "8M");
    }

    #[test]
    fn lower_quartile_mean_rejects_upper_tail() {
        // 12 clean samples around 100 plus 4 noise bursts: the estimate
        // must come from the clean floor, not the bursts.
        let mut s = vec![
            100, 101, 99, 100, 102, 100, 98, 101, 100, 99, 100, 101, 900, 1500, 700, 2000,
        ];
        let est = lower_quartile_mean(&mut s);
        assert!(
            (98..=101).contains(&est),
            "estimate {est} polluted by noise tail"
        );
        let mut one = vec![42];
        assert_eq!(lower_quartile_mean(&mut one), 42);
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(7), mix(7));
        // Parity of consecutive mixes must not be constant (that would
        // re-introduce the fixed alternation it exists to break).
        let parities: Vec<u64> = (0..16).map(|i| mix(i) & 1).collect();
        assert!(parities.contains(&0) && parities.contains(&1));
    }

    #[test]
    fn retry_policy_keeps_better_run_only_on_timing_flakes() {
        // Timing flake: rerun happens, better run wins.
        let r = retry_once_on_timing("t", 10u64, |&r| r > 5, || 3u64, |&s, &f| s < f);
        assert_eq!(r, 3);
        // Rerun worse: first kept.
        let r = retry_once_on_timing("t", 10u64, |&r| r > 5, || 20u64, |&s, &f| s < f);
        assert_eq!(r, 10);
        // Deterministic failure (not a timing flake): no rerun.
        let r = retry_once_on_timing("t", 10u64, |_| false, || unreachable!(), |&s, &f| s < f);
        assert_eq!(r, 10);
    }
}
