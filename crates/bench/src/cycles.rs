//! Per-packet CPU-cycles gate (the `ablate_cycles` target).
//!
//! The paper's engine lives or dies on raw per-packet cost: a scheduler
//! that picks the perfect rail is worthless if checksumming, syscalls or
//! allocator traffic eat the budget first. This ablation measures the
//! three hot-path costs the raw-speed work attacks and gates each one:
//!
//! * **Checksum kernels** — GiB/s of every available CRC-32 kernel
//!   (scalar, slicing-by-16, PCLMUL folding). Gate: slice16 at least
//!   [`SLICE16_SPEEDUP_GATE`]× scalar, SIMD at least
//!   [`SIMD_SPEEDUP_GATE`]× scalar where the CPU supports it.
//! * **Syscalls per packet** — a pipelined eager workload through the
//!   parallel TCP fabric at 2 rails with a deep rail pipeline; the TX
//!   workers must coalesce outbox batches into few `write_vectored`
//!   calls. Gate: fewer than [`TX_SYSCALLS_PER_PACKET_GATE`] TX
//!   syscalls per transmitted frame.
//! * **Pool magazines** — a soak-shaped aggregation workload; takes
//!   must be served lock-free from the per-worker magazine caches.
//!   Gate: hit rate at least [`MAGAZINE_HIT_RATE_GATE`].
//! * **Per-packet CPU** — the same CRC-on workload timed with the
//!   checksum kernel forced to scalar vs. the best available kernel,
//!   interleaved like `ablate_obs`. Gate: the fast kernel's per-message
//!   cost strictly below the scalar baseline (the SIMD work must be
//!   visible end to end, not just in a microbenchmark).
//!
//! The result is written to `BENCH_cycles.json` at the repo root; the
//! smoke variant (`NMAD_CYCLES_SMOKE=1`) runs in `scripts/verify.sh`.

use std::time::{Duration, Instant};

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::{EngineConfig, StrategyKind, SyscallStats};
use nmad_model::{platform, RailId};
use nmad_wire::checksum::{self, Kernel};
use serde::{ser, Serialize, Value};

use crate::report::{lower_quartile_mean, mix};

/// Minimum slicing-by-16 throughput, as a multiple of the scalar kernel.
pub const SLICE16_SPEEDUP_GATE: f64 = 3.0;

/// Minimum PCLMUL-folding throughput, as a multiple of the scalar
/// kernel (applied only where the CPU reports the features).
pub const SIMD_SPEEDUP_GATE: f64 = 8.0;

/// Maximum TX syscalls per transmitted frame under the batched
/// parallel fabric at 2 rails.
pub const TX_SYSCALLS_PER_PACKET_GATE: f64 = 0.5;

/// Minimum fraction of pool takes served lock-free from a magazine.
pub const MAGAZINE_HIT_RATE_GATE: f64 = 0.90;

/// Give up on the fabric leg after this long (a wedged pipeline must
/// fail the gate, not hang CI).
const FABRIC_DEADLINE: Duration = Duration::from_secs(120);

/// One checksum kernel's measured throughput.
#[derive(Clone, Debug)]
pub struct KernelPoint {
    /// Kernel name (`scalar`, `slice16`, `simd`).
    pub kernel: &'static str,
    /// Lowest-quartile-mean throughput, GiB/s.
    pub gib_s: f64,
    /// Throughput relative to the scalar kernel in the same run.
    pub speedup: f64,
}

impl Serialize for KernelPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("kernel", ser::v(&self.kernel.to_string())),
            ("gib_s", ser::v(&self.gib_s)),
            ("speedup", ser::v(&self.speedup)),
        ])
    }
}

/// Magazine traffic of the aggregation workload.
#[derive(Clone, Debug)]
pub struct MagazinePoint {
    /// Pool takes across both engines.
    pub takes: u64,
    /// Takes served lock-free from a magazine.
    pub magazine_hits: u64,
    /// Batch refills that took the shared lock.
    pub refills: u64,
    /// Takes that allocated fresh memory.
    pub allocs: u64,
    /// `magazine_hits / takes`.
    pub hit_rate: f64,
}

impl Serialize for MagazinePoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("takes", ser::v(&self.takes)),
            ("magazine_hits", ser::v(&self.magazine_hits)),
            ("refills", ser::v(&self.refills)),
            ("allocs", ser::v(&self.allocs)),
            ("hit_rate", ser::v(&self.hit_rate)),
        ])
    }
}

/// Per-message CPU cost of the CRC-on workload, scalar vs. best kernel.
#[derive(Clone, Debug)]
pub struct PerPacketPoint {
    /// Message size, bytes.
    pub size: u64,
    /// Interleaved samples per leg.
    pub samples: usize,
    /// Lowest-quartile-mean per-message wall-clock, kernel forced
    /// scalar, ns.
    pub scalar_ns: u64,
    /// Same with the best available kernel, ns.
    pub fast_ns: u64,
    /// Which kernel the fast leg used.
    pub fast_kernel: &'static str,
}

impl Serialize for PerPacketPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("size", ser::v(&self.size)),
            ("samples", ser::v(&self.samples)),
            ("scalar_ns", ser::v(&self.scalar_ns)),
            ("fast_ns", ser::v(&self.fast_ns)),
            ("fast_kernel", ser::v(&self.fast_kernel.to_string())),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct CyclesReport {
    /// One point per available checksum kernel.
    pub kernels: Vec<KernelPoint>,
    /// Whether the PCLMUL kernel was available on this CPU.
    pub simd_available: bool,
    /// Syscall tallies of the fabric leg: TX side from the sender, RX
    /// side from the receiver.
    pub syscalls: SyscallStats,
    /// Messages pushed through the fabric leg.
    pub fabric_messages: u64,
    /// Whether every fabric send/recv completed before the deadline.
    pub fabric_completed: bool,
    /// Magazine traffic of the aggregation workload.
    pub magazine: MagazinePoint,
    /// Scalar-vs-fast per-message CPU comparison.
    pub per_packet: PerPacketPoint,
    /// Gates applied by [`check`].
    pub slice16_gate: f64,
    /// See [`SIMD_SPEEDUP_GATE`].
    pub simd_gate: f64,
    /// See [`TX_SYSCALLS_PER_PACKET_GATE`].
    pub tx_syscall_gate: f64,
    /// See [`MAGAZINE_HIT_RATE_GATE`].
    pub magazine_gate: f64,
}

impl Serialize for CyclesReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("kernels", ser::v(&self.kernels)),
            ("simd_available", ser::v(&self.simd_available)),
            ("tx_calls", ser::v(&self.syscalls.tx_calls)),
            ("tx_frames", ser::v(&self.syscalls.tx_frames)),
            ("tx_per_packet", ser::v(&self.syscalls.tx_per_packet())),
            ("rx_calls", ser::v(&self.syscalls.rx_calls)),
            ("rx_frames", ser::v(&self.syscalls.rx_frames)),
            ("rx_per_packet", ser::v(&self.syscalls.rx_per_packet())),
            ("fabric_messages", ser::v(&self.fabric_messages)),
            ("fabric_completed", ser::v(&self.fabric_completed)),
            ("magazine", ser::v(&self.magazine)),
            ("per_packet", ser::v(&self.per_packet)),
            ("slice16_gate", ser::v(&self.slice16_gate)),
            ("simd_gate", ser::v(&self.simd_gate)),
            ("tx_syscall_gate", ser::v(&self.tx_syscall_gate)),
            ("magazine_gate", ser::v(&self.magazine_gate)),
        ])
    }
}

/// Deterministic pseudo-random buffer (no clock, no RNG state): CRC
/// tables are data-independent, but a patterned buffer would let the
/// prefetcher flatter the slower kernels.
fn noise_buf(len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut i = 0u64;
    while v.len() < len {
        v.extend_from_slice(&mix(i).to_le_bytes());
        i += 1;
    }
    v.truncate(len);
    v
}

/// Throughput of every available kernel over `len` bytes,
/// `samples` passes each, interleaved round-robin so a noise burst
/// taxes all kernels alike.
fn measure_kernels(len: usize, samples: usize) -> (Vec<KernelPoint>, bool) {
    let buf = noise_buf(len);
    let kernels = checksum::available_kernels();
    // All kernels must agree before we time anything (the proptests
    // prove this exhaustively; this is the cheap in-run sanity check).
    let want = checksum::update_with(Kernel::Scalar, checksum::crc32_init(), &buf);
    for &k in &kernels {
        assert_eq!(
            checksum::update_with(k, checksum::crc32_init(), &buf),
            want,
            "kernel {} disagrees with scalar",
            k.name()
        );
    }
    let mut times: Vec<Vec<u64>> = vec![Vec::with_capacity(samples); kernels.len()];
    for s in 0..samples {
        // Rotate the starting kernel per round so cache state at round
        // boundaries does not systematically favour one kernel.
        let rot = (mix(s as u64) % kernels.len() as u64) as usize;
        for j in 0..kernels.len() {
            let ki = (j + rot) % kernels.len();
            let t0 = Instant::now();
            let crc = checksum::update_with(kernels[ki], checksum::crc32_init(), &buf);
            let ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(crc, want); // keeps the compute from being optimized out
            times[ki].push(ns);
        }
    }
    let ns: Vec<u64> = times.iter_mut().map(|t| lower_quartile_mean(t)).collect();
    let gib = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            len as f64 / (ns as f64 / 1e9) / (1u64 << 30) as f64
        }
    };
    let scalar_ns = ns[0].max(1);
    let points = kernels
        .iter()
        .zip(&ns)
        .map(|(&k, &t)| KernelPoint {
            kernel: k.name(),
            gib_s: gib(t),
            speedup: scalar_ns as f64 / t.max(1) as f64,
        })
        .collect();
    (points, Kernel::Simd.is_available())
}

/// Pipelined eager messages through the parallel TCP fabric at 2 rails
/// with a deep rail pipeline, so the TX workers see full outboxes.
/// Returns (syscalls, messages, completed).
fn measure_fabric_syscalls(messages: usize, size: usize) -> (SyscallStats, u64, bool) {
    use nmad_transport_tcp::{pair_localhost, TcpConfig};

    let mut engine = EngineConfig::with_strategy(StrategyKind::Greedy);
    engine.parallel = true;
    // Deep pipeline: the scheduler may queue a whole outbox of frames
    // per rail between completions — the precondition for the TX
    // worker's one-write_vectored-per-batch coalescing.
    engine.rail_pipeline = 8;
    let (a, b) = pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
        .expect("localhost fabric");
    let conn = a.conns()[0];
    let payload = Bytes::from(noise_buf(size));
    let recvs: Vec<_> = (0..messages).map(|_| b.recv(conn)).collect();
    let sends: Vec<_> = (0..messages)
        .map(|_| a.send(conn, vec![payload.clone()]))
        .collect();
    let mut completed = true;
    for s in &sends {
        completed &= s.wait(FABRIC_DEADLINE);
    }
    for r in recvs {
        completed &= r.wait(FABRIC_DEADLINE).is_some();
    }
    // TX tallies live on the sender, RX tallies on the receiver.
    let tx = a.stats().syscalls;
    let rx = b.stats().syscalls;
    (
        SyscallStats {
            tx_calls: tx.tx_calls,
            tx_frames: tx.tx_frames,
            rx_calls: rx.rx_calls,
            rx_frames: rx.rx_frames,
        },
        messages as u64,
        completed,
    )
}

fn engine_pair(strategy: StrategyKind, crc: bool) -> (Engine, Engine) {
    let mut cfg = EngineConfig::with_strategy(strategy);
    cfg.crc = crc;
    let mk = || Engine::new(cfg.clone(), platform::paper_platform().rails, vec![]);
    let (mut a, mut b) = (mk(), mk());
    a.conn_open();
    b.conn_open();
    (a, b)
}

/// Drive both engines until neither makes progress.
fn pump(a: &mut Engine, b: &mut Engine) {
    for _ in 0..1_000_000 {
        let mut progressed = false;
        for dir in 0..2 {
            let (tx, rx) = if dir == 0 {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).expect("tx_done");
                    rx.on_frame(rail, &d.frame).expect("on_frame");
                }
            }
        }
        if !progressed {
            return;
        }
    }
    panic!("engines did not quiesce");
}

/// Soak-shaped magazine workload: windows of small messages under the
/// aggregating strategy, so every window takes head buffers and staging
/// slabs from the pool and reclaims them at completion — steady-state
/// reuse is exactly what the magazines exist to serve lock-free.
///
/// Unlike [`pump`], this loop mirrors a real runtime's buffer
/// lifecycle: the frame is delivered and dropped, and the receiving app
/// consumes its message (releasing the zero-copy slices into the
/// staging slab), *before* the sender's `on_tx_done` tries to reclaim
/// head and slab — otherwise every reclaim is a refcount miss and
/// nothing ever returns to the magazine.
fn measure_magazine(rounds: usize, window: usize) -> MagazinePoint {
    let (mut a, mut b) = engine_pair(StrategyKind::AggregateEager, false);
    let payload = Bytes::from(noise_buf(256));
    for _ in 0..rounds {
        let rids: Vec<_> = (0..window).map(|_| b.post_recv(0)).collect();
        for _ in 0..window {
            a.submit_send(0, vec![payload.clone()]);
        }
        loop {
            let mut progressed = false;
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = a.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    let (frame, token) = (d.frame, d.token);
                    b.on_frame(rail, &frame).expect("on_frame");
                    drop(frame);
                    for &rid in &rids {
                        let _ = b.try_recv(rid); // consume + drop delivered messages
                    }
                    a.on_tx_done(rail, token).expect("tx_done");
                }
            }
            if !progressed {
                break;
            }
        }
    }
    let (da, db) = (a.stats().datapath.clone(), b.stats().datapath.clone());
    let takes = da.pool_hits + da.hot_path_allocs + db.pool_hits + db.hot_path_allocs;
    let magazine_hits = da.pool_magazine_hits + db.pool_magazine_hits;
    MagazinePoint {
        takes,
        magazine_hits,
        refills: da.pool_magazine_refills + db.pool_magazine_refills,
        allocs: da.hot_path_allocs + db.hot_path_allocs,
        hit_rate: if takes == 0 {
            0.0
        } else {
            magazine_hits as f64 / takes as f64
        },
    }
}

/// Send one message through the pair and return its wall-clock ns.
fn one_msg(a: &mut Engine, b: &mut Engine, payload: &Bytes) -> u64 {
    let start = Instant::now();
    b.post_recv(0);
    a.submit_send(0, vec![payload.clone()]);
    pump(a, b);
    start.elapsed().as_nanos() as u64
}

/// The CRC-on workload timed with the checksum kernel forced to scalar
/// vs. the best available kernel, finely interleaved (`ablate_obs`
/// noise discipline). Restores the best kernel before returning.
fn measure_per_packet(size: usize, samples: usize) -> PerPacketPoint {
    let fast = *checksum::available_kernels()
        .last()
        .expect("scalar always available");
    let (mut a_s, mut b_s) = engine_pair(StrategyKind::AdaptiveSplit, true);
    let (mut a_f, mut b_f) = engine_pair(StrategyKind::AdaptiveSplit, true);
    let payload = Bytes::from(noise_buf(size));
    // Warm both pairs (allocator, page faults, split tables).
    checksum::set_kernel(Kernel::Scalar);
    one_msg(&mut a_s, &mut b_s, &payload);
    checksum::set_kernel(fast);
    one_msg(&mut a_f, &mut b_f, &payload);
    let mut scalar = Vec::with_capacity(samples);
    let mut fastv = Vec::with_capacity(samples);
    for i in 0..samples {
        let scalar_first = mix(i as u64) & 1 == 0;
        for leg in 0..2 {
            if (leg == 0) == scalar_first {
                checksum::set_kernel(Kernel::Scalar);
                scalar.push(one_msg(&mut a_s, &mut b_s, &payload));
            } else {
                checksum::set_kernel(fast);
                fastv.push(one_msg(&mut a_f, &mut b_f, &payload));
            }
        }
    }
    checksum::set_kernel(fast);
    PerPacketPoint {
        size: size as u64,
        samples,
        scalar_ns: lower_quartile_mean(&mut scalar),
        fast_ns: lower_quartile_mean(&mut fastv),
        fast_kernel: fast.name(),
    }
}

/// Run the ablation. `smoke` shrinks buffer sizes and repetition counts
/// for the CI gate.
pub fn run(smoke: bool) -> CyclesReport {
    let (kernels, simd_available) = if smoke {
        measure_kernels(1 << 20, 24)
    } else {
        measure_kernels(4 << 20, 64)
    };
    let (syscalls, fabric_messages, fabric_completed) = if smoke {
        measure_fabric_syscalls(256, 4 << 10)
    } else {
        measure_fabric_syscalls(1024, 4 << 10)
    };
    let magazine = if smoke {
        measure_magazine(64, 16)
    } else {
        measure_magazine(512, 16)
    };
    let per_packet = if smoke {
        measure_per_packet(64 << 10, 48)
    } else {
        measure_per_packet(64 << 10, 256)
    };
    CyclesReport {
        kernels,
        simd_available,
        syscalls,
        fabric_messages,
        fabric_completed,
        magazine,
        per_packet,
        slice16_gate: SLICE16_SPEEDUP_GATE,
        simd_gate: SIMD_SPEEDUP_GATE,
        tx_syscall_gate: TX_SYSCALLS_PER_PACKET_GATE,
        magazine_gate: MAGAZINE_HIT_RATE_GATE,
    }
}

/// Gate violations (empty = the hot path holds its claims). Timing-
/// sensitive messages carry "speedup", "syscalls" or "per-packet" so
/// the bench main can classify them for the shared retry-once policy;
/// the coverage gates (completion, zero frames, zero takes) are
/// deterministic and never retried.
pub fn check(report: &CyclesReport) -> Vec<String> {
    let mut v = Vec::new();
    for p in &report.kernels {
        let gate = match p.kernel {
            "slice16" => report.slice16_gate,
            "simd" => report.simd_gate,
            _ => continue,
        };
        if p.speedup < gate {
            v.push(format!(
                "{} speedup {:.2}x below the {:.1}x gate",
                p.kernel, p.speedup, gate
            ));
        }
    }
    if !report.fabric_completed {
        v.push("fabric leg did not complete all sends/recvs before the deadline".into());
    }
    if report.syscalls.tx_frames == 0 {
        v.push("fabric leg transmitted no frames (syscall ratio unmeasured)".into());
    } else if report.syscalls.tx_per_packet() >= report.tx_syscall_gate {
        v.push(format!(
            "{:.3} TX syscalls per packet at or above the {:.1} gate ({} calls / {} frames)",
            report.syscalls.tx_per_packet(),
            report.tx_syscall_gate,
            report.syscalls.tx_calls,
            report.syscalls.tx_frames
        ));
    }
    if report.magazine.takes == 0 {
        v.push("magazine workload took no pool buffers".into());
    } else if report.magazine.hit_rate < report.magazine_gate {
        v.push(format!(
            "magazine hit rate {:.1}% below the {:.0}% gate ({} lock-free of {} takes)",
            report.magazine.hit_rate * 100.0,
            report.magazine_gate * 100.0,
            report.magazine.magazine_hits,
            report.magazine.takes
        ));
    }
    if report.per_packet.fast_ns >= report.per_packet.scalar_ns {
        v.push(format!(
            "per-packet CPU with {} ({} ns) not below the scalar baseline ({} ns)",
            report.per_packet.fast_kernel, report.per_packet.fast_ns, report.per_packet.scalar_ns
        ));
    }
    v
}

/// Human-readable table.
pub fn render(report: &CyclesReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>10} {:>9}", "kernel", "GiB/s", "speedup");
    for p in &report.kernels {
        let _ = writeln!(out, "{:>8} {:>10.2} {:>8.1}x", p.kernel, p.gib_s, p.speedup);
    }
    if !report.simd_available {
        let _ = writeln!(out, "(pclmul kernel unavailable on this CPU)");
    }
    let s = &report.syscalls;
    let _ = writeln!(
        out,
        "fabric: {} msgs, {} wr / {} frames = {:.3} tx syscalls/pkt, \
         {} rd / {} frames = {:.3} rx syscalls/pkt",
        report.fabric_messages,
        s.tx_calls,
        s.tx_frames,
        s.tx_per_packet(),
        s.rx_calls,
        s.rx_frames,
        s.rx_per_packet()
    );
    let m = &report.magazine;
    let _ = writeln!(
        out,
        "magazines: {} takes, {} lock-free ({:.1}%), {} refills, {} allocs",
        m.takes,
        m.magazine_hits,
        m.hit_rate * 100.0,
        m.refills,
        m.allocs
    );
    let pp = &report.per_packet;
    let _ = writeln!(
        out,
        "per-packet CPU ({} B, crc on): scalar {:.1} us, {} {:.1} us ({:.2}x)",
        pp.size,
        pp.scalar_ns as f64 / 1e3,
        pp.fast_kernel,
        pp.fast_ns as f64 / 1e3,
        pp.scalar_ns as f64 / pp.fast_ns.max(1) as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report() -> CyclesReport {
        CyclesReport {
            kernels: vec![
                KernelPoint {
                    kernel: "scalar",
                    gib_s: 0.3,
                    speedup: 1.0,
                },
                KernelPoint {
                    kernel: "slice16",
                    gib_s: 1.5,
                    speedup: 5.0,
                },
                KernelPoint {
                    kernel: "simd",
                    gib_s: 12.0,
                    speedup: 40.0,
                },
            ],
            simd_available: true,
            syscalls: SyscallStats {
                tx_calls: 40,
                tx_frames: 256,
                rx_calls: 30,
                rx_frames: 256,
            },
            fabric_messages: 256,
            fabric_completed: true,
            magazine: MagazinePoint {
                takes: 1000,
                magazine_hits: 970,
                refills: 10,
                allocs: 20,
                hit_rate: 0.97,
            },
            per_packet: PerPacketPoint {
                size: 64 << 10,
                samples: 48,
                scalar_ns: 400_000,
                fast_ns: 60_000,
                fast_kernel: "simd",
            },
            slice16_gate: SLICE16_SPEEDUP_GATE,
            simd_gate: SIMD_SPEEDUP_GATE,
            tx_syscall_gate: TX_SYSCALLS_PER_PACKET_GATE,
            magazine_gate: MAGAZINE_HIT_RATE_GATE,
        }
    }

    #[test]
    fn check_passes_clean_and_flags_each_gate() {
        let clean = clean_report();
        assert!(check(&clean).is_empty(), "{:?}", check(&clean));

        let mut r = clean.clone();
        r.kernels[1].speedup = 2.0; // slice16 under 3x
        r.kernels[2].speedup = 5.0; // simd under 8x
        r.syscalls.tx_calls = 200; // 0.78 per packet
        r.magazine.hit_rate = 0.5;
        r.per_packet.fast_ns = r.per_packet.scalar_ns; // not strictly below
        r.fabric_completed = false;
        assert_eq!(check(&r).len(), 6, "{:?}", check(&r));
    }

    #[test]
    fn zero_denominators_are_coverage_failures() {
        let mut r = clean_report();
        r.syscalls.tx_frames = 0;
        r.magazine.takes = 0;
        let v = check(&r);
        assert!(v.iter().any(|s| s.contains("no frames")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("no pool buffers")), "{v:?}");
    }

    #[test]
    fn kernel_measurement_orders_kernels_sanely() {
        // Tiny run: the point is agreement + plumbing, not stable timing.
        let (points, _) = measure_kernels(64 << 10, 8);
        assert_eq!(points[0].kernel, "scalar");
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points.len() >= 2, "slice16 must always be available");
    }

    #[test]
    fn magazine_workload_reuses_buffers() {
        let m = measure_magazine(16, 8);
        assert!(m.takes > 0, "workload must touch the pool");
        assert!(m.hit_rate > 0.5, "steady-state reuse must dominate: {m:?}");
    }

    #[test]
    fn render_mentions_every_section() {
        let s = render(&clean_report());
        assert!(s.contains("slice16") && s.contains("syscalls/pkt"));
        assert!(s.contains("magazines:") && s.contains("per-packet CPU"));
    }
}
