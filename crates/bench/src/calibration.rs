//! Online-recalibration ablation (the `ablate_calibration` target).
//!
//! The scenario DESIGN.md's "Online recalibration" section is built
//! around: a pipelined transfer loses half of one rail's bandwidth
//! mid-run. With frozen init-time tables the adaptive split keeps
//! shipping the seed byte share down the degraded rail and the pipeline
//! drags; with the [`nmad_core::OnlineCalibrator`] enabled the
//! completion-path samples rebuild the tables and the split converges to
//! the new equal-time ratio.
//!
//! Both legs run the *same* deterministic simulation (same platform,
//! same fault plan, same recording settings) — the only difference is
//! `EngineConfig::calibration.enabled`. The run doubles as a regression
//! gate (used by `scripts/verify.sh`): [`check`] fails unless the
//! calibrated leg strictly beats the frozen leg on pipeline completion
//! time AND the split ratio leaves the seed band within a bounded number
//! of rebuilds after drift onset. The result is written to
//! `target/figures/BENCH_calibration.json`.

use bytes::Bytes;
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::platform;
use nmad_runtime_sim::{AppLogic, BandwidthDrift, FaultPlan, NodeApi, SimWorld};
use nmad_sim::{SimDuration, SimTime};
use serde::{ser, Serialize, Value};

/// Bandwidth multiplier applied to the degraded rail mid-run.
pub const DRIFT_FACTOR: f64 = 0.5;

/// Virtual time at which the degradation begins, µs.
pub const DRIFT_ONSET_US: u64 = 2_000;

/// Rebuild budget: the calibrated split must fall below half (the seed
/// band gives the degraded Myri rail ~58%) within this many rebuilds.
pub const CONVERGENCE_BUDGET_REBUILDS: u64 = 12;

/// One calibrator history entry, serialized for the JSON report.
#[derive(Clone, Debug)]
pub struct RatioPoint {
    /// Rebuild ordinal (1-based).
    pub rebuild: u64,
    /// Accepted samples ingested up to this rebuild.
    pub samples: u64,
    /// Per-rail permille share of the reference-size split.
    pub permille: Vec<u16>,
}

impl Serialize for RatioPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("rebuild", ser::v(&self.rebuild)),
            ("samples", ser::v(&self.samples)),
            ("permille", ser::v(&self.permille)),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Messages in the pipeline.
    pub messages: usize,
    /// Bytes per message.
    pub message_size: usize,
    /// Bandwidth factor applied to rail 0 from [`DRIFT_ONSET_US`] on.
    pub drift_factor: f64,
    /// Pipeline completion virtual time with frozen seed tables, ns.
    pub frozen_ns: u64,
    /// Pipeline completion virtual time with online calibration, ns.
    pub calibrated_ns: u64,
    /// Rebuilds the calibrator performed.
    pub rebuilds: u64,
    /// First rebuild ordinal whose degraded-rail share fell below 500‰
    /// (0 = never converged).
    pub converged_rebuild: u64,
    /// Per-rail permille split after the final rebuild.
    pub final_permille: Vec<u16>,
    /// The whole ratio trajectory, one point per rebuild.
    pub history: Vec<RatioPoint>,
    /// The gate applied by [`check`].
    pub budget_rebuilds: u64,
}

impl CalibrationReport {
    /// Completion-time gain of calibrating, percent (positive = faster).
    pub fn improvement_pct(&self) -> f64 {
        if self.frozen_ns == 0 {
            return 0.0;
        }
        (self.frozen_ns as f64 - self.calibrated_ns as f64) * 100.0 / self.frozen_ns as f64
    }
}

impl Serialize for CalibrationReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("messages", ser::v(&self.messages)),
            ("message_size", ser::v(&self.message_size)),
            ("drift_factor", ser::v(&self.drift_factor)),
            ("drift_onset_us", ser::v(&DRIFT_ONSET_US)),
            ("frozen_ns", ser::v(&self.frozen_ns)),
            ("calibrated_ns", ser::v(&self.calibrated_ns)),
            ("improvement_pct", ser::v(&self.improvement_pct())),
            ("rebuilds", ser::v(&self.rebuilds)),
            ("converged_rebuild", ser::v(&self.converged_rebuild)),
            ("final_permille", ser::v(&self.final_permille)),
            ("history", ser::v(&self.history)),
            ("budget_rebuilds", ser::v(&self.budget_rebuilds)),
        ])
    }
}

/// Sender half: a serial chain — message `i+1` is submitted only once
/// message `i`'s injection completes. Serialization is what makes the
/// split ratio visible in completion time: each message finishes when its
/// *slowest* rail finishes, so a stale ratio leaves the healthy rail idle
/// while the degraded rail drags (a saturated backlog would hide this —
/// both rails stay busy no matter how badly each message is split).
struct PipeSender {
    messages: usize,
    size: usize,
    submitted: usize,
}

impl PipeSender {
    fn submit_next(&mut self, api: &mut NodeApi<'_>) {
        if self.submitted < self.messages {
            let tag = self.submitted as u8;
            api.submit_send(0, vec![Bytes::from(vec![tag; self.size])]);
            self.submitted += 1;
        }
    }
}

impl AppLogic for PipeSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.submit_next(api);
    }
    fn on_send_complete(&mut self, _send: nmad_core::SendId, api: &mut NodeApi<'_>) {
        self.submit_next(api);
    }
}

/// Receiver half: records when the last message lands.
struct PipeReceiver {
    messages: usize,
    delivered: usize,
    done_ns: u64,
}

impl AppLogic for PipeReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for _ in 0..self.messages {
            api.post_recv(0);
        }
    }
    fn on_recv_complete(
        &mut self,
        _recv: nmad_core::RecvId,
        _msg: nmad_wire::reassembly::MessageAssembly,
        api: &mut NodeApi<'_>,
    ) {
        self.delivered += 1;
        if self.delivered == self.messages {
            self.done_ns = api.now().0 / 1_000;
        }
    }
}

/// Run one leg of the scenario; returns the world after completion.
fn run_leg(messages: usize, size: usize, calibrated: bool) -> SimWorld<PipeSender, PipeReceiver> {
    let p = platform::paper_platform();
    let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    cfg.calibration.enabled = calibrated;
    cfg.calibration.rebuild_every = 8;
    cfg.calibration.min_samples = 8;
    let mut w = SimWorld::new(
        &p,
        cfg,
        PipeSender {
            messages,
            size,
            submitted: 0,
        },
        PipeReceiver {
            messages,
            delivered: 0,
            done_ns: 0,
        },
    );
    w.open_conn();
    // Both legs record so both see the same exact (non-tick-quantized)
    // engine clock — the comparison isolates the calibrator itself.
    w.enable_recording(8192);
    w.enable_faults(FaultPlan::drift_only(
        BandwidthDrift {
            rail: 0,
            from: SimTime::from_us(DRIFT_ONSET_US),
            to: SimTime::from_us(10_000_000),
            factor: DRIFT_FACTOR,
        },
        SimDuration::from_us(50),
        SimTime::from_us(400_000),
    ));
    w.run(500_000_000);
    assert_eq!(
        w.app1().delivered,
        messages,
        "drift pipeline must complete (calibrated={calibrated})"
    );
    w
}

/// Execute the ablation. `smoke` shrinks the pipeline for CI.
pub fn run(smoke: bool) -> CalibrationReport {
    let messages = if smoke { 24 } else { 64 };
    let size = 1 << 20;

    let frozen = run_leg(messages, size, false);
    let calibrated = run_leg(messages, size, true);

    let cal = calibrated
        .node(0)
        .engine
        .calibrator()
        .expect("calibration enabled on this leg");
    let history: Vec<RatioPoint> = cal
        .history()
        .iter()
        .map(|s| RatioPoint {
            rebuild: s.rebuild,
            samples: s.samples,
            permille: s.permille.clone(),
        })
        .collect();
    let converged_rebuild = history
        .iter()
        .find(|p| p.permille.first().copied().unwrap_or(1000) < 500)
        .map_or(0, |p| p.rebuild);
    let final_permille = history
        .last()
        .map(|p| p.permille.clone())
        .unwrap_or_default();

    CalibrationReport {
        messages,
        message_size: size,
        drift_factor: DRIFT_FACTOR,
        frozen_ns: frozen.app1().done_ns,
        calibrated_ns: calibrated.app1().done_ns,
        rebuilds: cal.rebuilds(),
        converged_rebuild,
        final_permille,
        history,
        budget_rebuilds: CONVERGENCE_BUDGET_REBUILDS,
    }
}

/// Regression gate: returns human-readable violations (empty = pass).
pub fn check(r: &CalibrationReport) -> Vec<String> {
    let mut v = Vec::new();
    if r.calibrated_ns == 0 || r.frozen_ns == 0 {
        v.push("a leg did not record a completion time".to_string());
        return v;
    }
    if r.calibrated_ns >= r.frozen_ns {
        v.push(format!(
            "calibrated leg must strictly beat frozen tables under drift: \
             {} ns vs {} ns",
            r.calibrated_ns, r.frozen_ns
        ));
    }
    if r.converged_rebuild == 0 {
        v.push(format!(
            "split never left the seed band (final {:?})",
            r.final_permille
        ));
    } else if r.converged_rebuild > r.budget_rebuilds {
        v.push(format!(
            "convergence took {} rebuilds (budget {})",
            r.converged_rebuild, r.budget_rebuilds
        ));
    }
    if r.final_permille.first().copied().unwrap_or(1000) >= 500 {
        v.push(format!(
            "degraded rail must end below half share: {:?}",
            r.final_permille
        ));
    }
    v
}

/// Text table for the bench output.
pub fn render(r: &CalibrationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ablate_calibration — {} x {} KiB pipeline, rail 0 at {:.0}% bandwidth from {} µs\n",
        r.messages,
        r.message_size >> 10,
        r.drift_factor * 100.0,
        DRIFT_ONSET_US
    ));
    out.push_str(&format!(
        "  frozen tables : {:>12} ns\n  calibrated    : {:>12} ns  ({:+.2}%)\n",
        r.frozen_ns,
        r.calibrated_ns,
        -r.improvement_pct()
    ));
    out.push_str(&format!(
        "  rebuilds: {}   converged at rebuild {} (budget {})   final split {:?}\n",
        r.rebuilds, r.converged_rebuild, r.budget_rebuilds, r.final_permille
    ));
    out.push_str("  rebuild  samples  permille\n");
    for p in &r.history {
        out.push_str(&format!(
            "  {:>7}  {:>7}  {:?}\n",
            p.rebuild, p.samples, p.permille
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_gate() {
        let r = run(true);
        let v = check(&r);
        assert!(v.is_empty(), "violations: {v:?}");
    }
}
