//! Reactor-transport ablation (the `ablate_reactor` target).
//!
//! Two legs, one claim: the readiness-driven reactor serves *many*
//! connections on a *fixed* thread pool without giving up the paper's
//! multi-rail throughput.
//!
//! * **scale** — one [`nmad_transport_tcp::reactor::ReactorPool`] echo
//!   server (≤ `min(cores, 4)` threads) against 10k+ loopback client
//!   connections driven by a single epoll client loop in this bench.
//!   Each client runs a closed loop of Pareto-sized echo round trips
//!   (loadgen-shaped: the same heavy-tailed sizes the soak uses).
//!   Gated on completion, sustained connection count, fd sheds, p99
//!   round-trip latency, and the zero-hot-path-allocation tripwire.
//! * **perthread** — the reactor endpoint versus the thread-per-rail
//!   parallel endpoint over the same 2-rail message pump, compared on
//!   throughput *per I/O thread*: the reactor drives both rails on
//!   `worker_count` threads where thread-per-rail burns four (TX+RX per
//!   rail), so per-thread throughput must not regress
//!   ([`PER_THREAD_GATE`]).
//!
//! Latency and throughput gates are wall-clock and ride CI noise, so
//! their violations carry the shared `timing:` prefix and get the
//! one-retry policy ([`crate::report::retry_once_on_timing`]); the
//! completion / shed / allocation gates are deterministic and never
//! retried. The result is written to `BENCH_reactor.json`.
//!
//! On targets without the raw epoll layer (non-Linux, exotic arch) the
//! whole ablation reports `supported: false` and gates vacuously pass —
//! the reactor is an opt-in runtime there anyway.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use nmad_core::{EngineConfig, SharedPool, StrategyKind};
use nmad_model::platform;
use nmad_sim::Xoshiro256StarStar;
use nmad_transport_tcp::reactor::{self, sys, Poller, ReactorPool};
use nmad_transport_tcp::TcpConfig;
use serde::{ser, Serialize, Value};

use crate::loadgen::BoundedPareto;

/// Per-I/O-thread throughput ratio (reactor over thread-per-rail) the
/// perthread leg must reach. The reactor runs both rails on fewer
/// threads, so ≥ 1.0 means "same or better work per thread".
pub const PER_THREAD_GATE: f64 = 1.0;

/// Heavy-tailed echo message sizes (bytes): min, max, tail index.
pub const SIZE_MIN: u64 = 64;
/// See [`SIZE_MIN`].
pub const SIZE_MAX: u64 = 16 * 1024;
/// See [`SIZE_MIN`].
pub const SIZE_ALPHA: f64 = 1.2;

/// Give up on a leg after this long (a wedged reactor must fail the
/// gate, not hang CI).
const DEADLINE: Duration = Duration::from_secs(120);

/// What one run measures. `smoke` shrinks the connection herd for the
/// CI gate; the full run drives the paper-scale 10k+.
#[derive(Clone, Copy, Debug)]
pub struct ReactorSpec {
    /// Concurrent echo connections the scale leg asks for.
    pub conns: usize,
    /// Echo round trips per connection.
    pub rounds: u32,
    /// p99 round-trip ceiling, µs (closed-loop: queueing behind the
    /// whole herd is part of the measurement, so this scales with
    /// `conns`).
    pub p99_gate_us: u64,
    /// Messages per endpoint in the perthread leg.
    pub messages: usize,
    /// Message size in the perthread leg, bytes.
    pub msg_size: usize,
    /// RNG seed for the size distribution.
    pub seed: u64,
}

impl ReactorSpec {
    /// CI smoke: a few hundred connections, seconds of wall clock.
    pub fn smoke(seed: u64) -> Self {
        ReactorSpec {
            conns: 256,
            rounds: 4,
            p99_gate_us: 500_000,
            messages: 48,
            msg_size: 64 << 10,
            seed,
        }
    }

    /// Full run: the 10k-connection claim.
    pub fn full(seed: u64) -> Self {
        ReactorSpec {
            conns: 10_000,
            rounds: 2,
            p99_gate_us: 5_000_000,
            messages: 256,
            msg_size: 256 << 10,
            seed,
        }
    }
}

/// Scale-leg outcome: the echo herd against the fixed pool.
#[derive(Clone, Debug, Default)]
pub struct ScaleLeg {
    /// Connections originally requested.
    pub target_conns: usize,
    /// Connections actually driven (smaller only if the fd limit could
    /// not be raised far enough — recorded, not hidden).
    pub driven_conns: usize,
    /// Peak concurrent connections the server observed (excluding the
    /// listener registration).
    pub sustained_conns: u64,
    /// Reactor worker threads serving the herd.
    pub threads: u64,
    /// Every round trip on every connection completed in time.
    pub completed: bool,
    /// Round trips that failed on a socket error.
    pub errors: u64,
    /// Wall clock for the echo phase, ns.
    pub elapsed_ns: u64,
    /// Payload bytes echoed back to clients.
    pub echoed_bytes: u64,
    /// Median round trip, µs.
    pub p50_us: u64,
    /// 99th-percentile round trip, µs.
    pub p99_us: u64,
    /// Server-side accepts shed on fd exhaustion (must be zero — the
    /// bench raises `RLIMIT_NOFILE` to fit the herd first).
    pub fd_shed: u64,
    /// Event-loop allocations outside the pre-allocated pool blocks
    /// (tripwire, must be zero).
    pub hot_path_allocs: u64,
    /// Writes that armed WRITE interest (backpressure actually
    /// exercised; informational).
    pub write_stalls: u64,
    /// `epoll_wait` returns observed by the pool.
    pub polls: u64,
    /// Readiness events delivered.
    pub events: u64,
    /// Mean events per non-empty wakeup.
    pub events_per_wake: f64,
    /// Busy fraction of the worker loops over the leg.
    pub loop_utilization: f64,
}

impl ScaleLeg {
    /// Aggregate echo throughput, MB/s.
    pub fn mbs(&self) -> f64 {
        mbs(self.echoed_bytes, self.elapsed_ns)
    }

    /// Echo throughput per reactor thread, MB/s.
    pub fn per_thread_mbs(&self) -> f64 {
        if self.threads == 0 {
            return 0.0;
        }
        self.mbs() / self.threads as f64
    }
}

impl Serialize for ScaleLeg {
    fn to_value(&self) -> Value {
        ser::object([
            ("target_conns", ser::v(&self.target_conns)),
            ("driven_conns", ser::v(&self.driven_conns)),
            ("sustained_conns", ser::v(&self.sustained_conns)),
            ("threads", ser::v(&self.threads)),
            ("completed", ser::v(&self.completed)),
            ("errors", ser::v(&self.errors)),
            ("elapsed_ns", ser::v(&self.elapsed_ns)),
            ("echoed_bytes", ser::v(&self.echoed_bytes)),
            ("mbs", ser::v(&self.mbs())),
            ("per_thread_mbs", ser::v(&self.per_thread_mbs())),
            ("p50_us", ser::v(&self.p50_us)),
            ("p99_us", ser::v(&self.p99_us)),
            ("fd_shed", ser::v(&self.fd_shed)),
            ("hot_path_allocs", ser::v(&self.hot_path_allocs)),
            ("write_stalls", ser::v(&self.write_stalls)),
            ("polls", ser::v(&self.polls)),
            ("events", ser::v(&self.events)),
            ("events_per_wake", ser::v(&self.events_per_wake)),
            ("loop_utilization", ser::v(&self.loop_utilization)),
        ])
    }
}

/// Perthread-leg outcome: reactor vs thread-per-rail endpoints.
#[derive(Clone, Debug, Default)]
pub struct PerThreadLeg {
    /// Both endpoints finished their message pump in time.
    pub completed: bool,
    /// Reactor-endpoint wall clock, ns.
    pub reactor_ns: u64,
    /// Thread-per-rail endpoint wall clock, ns.
    pub parallel_ns: u64,
    /// Payload bytes pumped per endpoint.
    pub payload_bytes: u64,
    /// Reactor I/O threads.
    pub reactor_threads: u64,
    /// Thread-per-rail I/O threads (TX+RX per rail).
    pub parallel_threads: u64,
}

impl PerThreadLeg {
    /// Reactor aggregate throughput, MB/s.
    pub fn reactor_mbs(&self) -> f64 {
        mbs(self.payload_bytes, self.reactor_ns)
    }

    /// Thread-per-rail aggregate throughput, MB/s.
    pub fn parallel_mbs(&self) -> f64 {
        mbs(self.payload_bytes, self.parallel_ns)
    }

    /// Per-I/O-thread throughput ratio, reactor over thread-per-rail.
    pub fn per_thread_ratio(&self) -> f64 {
        let par = self.parallel_mbs() / self.parallel_threads.max(1) as f64;
        if par == 0.0 {
            return 0.0;
        }
        (self.reactor_mbs() / self.reactor_threads.max(1) as f64) / par
    }
}

impl Serialize for PerThreadLeg {
    fn to_value(&self) -> Value {
        ser::object([
            ("completed", ser::v(&self.completed)),
            ("reactor_ns", ser::v(&self.reactor_ns)),
            ("parallel_ns", ser::v(&self.parallel_ns)),
            ("payload_bytes", ser::v(&self.payload_bytes)),
            ("reactor_threads", ser::v(&self.reactor_threads)),
            ("parallel_threads", ser::v(&self.parallel_threads)),
            ("reactor_mbs", ser::v(&self.reactor_mbs())),
            ("parallel_mbs", ser::v(&self.parallel_mbs())),
            ("per_thread_ratio", ser::v(&self.per_thread_ratio())),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct ReactorReport {
    /// False when the target has no raw epoll layer: every gate
    /// vacuously passes (the reactor is opt-in there).
    pub supported: bool,
    /// The spec that was run.
    pub spec_conns: usize,
    /// See [`ReactorSpec::rounds`].
    pub spec_rounds: u32,
    /// See [`ReactorSpec::p99_gate_us`].
    pub p99_gate_us: u64,
    /// See [`PER_THREAD_GATE`].
    pub per_thread_gate: f64,
    /// RNG seed used.
    pub seed: u64,
    /// Scale leg (echo herd).
    pub scale: ScaleLeg,
    /// Perthread leg (endpoint vs endpoint).
    pub perthread: PerThreadLeg,
}

impl Serialize for ReactorReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("supported", ser::v(&self.supported)),
            ("spec_conns", ser::v(&self.spec_conns)),
            ("spec_rounds", ser::v(&self.spec_rounds)),
            ("p99_gate_us", ser::v(&self.p99_gate_us)),
            ("per_thread_gate", ser::v(&self.per_thread_gate)),
            ("seed", ser::v(&self.seed)),
            ("scale", ser::v(&self.scale)),
            ("perthread", ser::v(&self.perthread)),
        ])
    }
}

fn mbs(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 / (ns as f64 / 1e9) / 1e6
}

// ---------------------------------------------------------------------
// Scale leg: one client event loop vs the reactor echo server
// ---------------------------------------------------------------------

struct ScaleClient {
    stream: TcpStream,
    msg: Vec<u8>,
    sent: usize,
    rcvd: usize,
    rounds_left: u32,
    t0: Instant,
    done: bool,
}

enum ClientStep {
    /// Blocked on the socket; wait for the next edge.
    Blocked,
    /// All rounds finished (socket stays open to hold the herd).
    Finished,
    /// Socket error; the round trip is lost.
    Failed,
}

impl ScaleClient {
    /// Drive this client as far as it will go: write the current round,
    /// read the echo, start the next round. Edge-triggered safe — only
    /// returns on `WouldBlock`, completion, or error.
    fn pump(&mut self, scratch: &mut [u8], rtts: &mut Vec<u64>, echoed: &mut u64) -> ClientStep {
        loop {
            if self.done {
                return ClientStep::Finished;
            }
            while self.sent < self.msg.len() {
                match self.stream.write(&self.msg[self.sent..]) {
                    Ok(0) => return ClientStep::Failed,
                    Ok(n) => self.sent += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return ClientStep::Blocked,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return ClientStep::Failed,
                }
            }
            while self.rcvd < self.msg.len() {
                let want = (self.msg.len() - self.rcvd).min(scratch.len());
                match self.stream.read(&mut scratch[..want]) {
                    Ok(0) => return ClientStep::Failed,
                    Ok(n) => {
                        self.rcvd += n;
                        *echoed += n as u64;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return ClientStep::Blocked,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return ClientStep::Failed,
                }
            }
            rtts.push(self.t0.elapsed().as_micros() as u64);
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                self.done = true;
                return ClientStep::Finished;
            }
            self.sent = 0;
            self.rcvd = 0;
            self.t0 = Instant::now();
        }
    }
}

/// What one client herd measured (in-process or in the child).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientOutcome {
    /// Round trips lost to socket errors.
    pub errors: u64,
    /// Clients that never finished before the deadline.
    pub unfinished: u64,
    /// Payload bytes echoed back.
    pub echoed_bytes: u64,
    /// Wall clock of the echo phase, ns.
    pub elapsed_ns: u64,
    /// Median round trip, µs.
    pub p50_us: u64,
    /// 99th-percentile round trip, µs.
    pub p99_us: u64,
}

/// Connect `conns` loopback clients and run the closed echo loop —
/// everything one process' worth of fds can hold. `on_connected` fires
/// after the whole herd is connected and still open, so the caller can
/// take a deterministic concurrency reading off the server.
fn drive_clients(
    addr: std::net::SocketAddr,
    conns: usize,
    rounds: u32,
    seed: u64,
    on_connected: impl FnOnce(),
) -> io::Result<ClientOutcome> {
    // Connect the herd (sequential blocking connects: the kernel
    // completes loopback handshakes against the deepened backlog while
    // the reactor drains accepts concurrently).
    let mut rng = Xoshiro256StarStar::new(seed);
    let sizes = BoundedPareto::new(SIZE_MIN, SIZE_MAX, SIZE_ALPHA);
    let mut clients = Vec::with_capacity(conns);
    let poller = Poller::new()?;
    for i in 0..conns {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let len = sizes.sample(&mut rng) as usize;
        let mut msg = vec![0u8; len];
        rng.fill_bytes(&mut msg);
        use std::os::fd::AsRawFd;
        poller.add(stream.as_raw_fd(), i as u64, true)?;
        clients.push(ScaleClient {
            stream,
            msg,
            sent: 0,
            rcvd: 0,
            rounds_left: rounds,
            t0: Instant::now(),
            done: false,
        });
    }

    on_connected();

    // Echo phase: closed-loop round trips, all driven from one client
    // event loop.
    let mut rtts = Vec::with_capacity(conns * rounds as usize);
    let mut echoed = 0u64;
    let mut errors = 0u64;
    let mut scratch = vec![0u8; 64 << 10];
    let mut remaining = conns;
    let t0 = Instant::now();
    for c in &mut clients {
        c.t0 = Instant::now();
        match c.pump(&mut scratch, &mut rtts, &mut echoed) {
            ClientStep::Blocked => {}
            ClientStep::Finished => remaining -= 1,
            ClientStep::Failed => {
                errors += 1;
                c.done = true;
                remaining -= 1;
            }
        }
    }
    let mut events = vec![sys::EpollEvent::zeroed(); 1024];
    let deadline = t0 + DEADLINE;
    while remaining > 0 && Instant::now() < deadline {
        let n = poller.wait(&mut events, 100)?;
        for e in &events[..n] {
            let i = e.token() as usize;
            if i >= clients.len() || clients[i].done {
                continue;
            }
            match clients[i].pump(&mut scratch, &mut rtts, &mut echoed) {
                ClientStep::Blocked => {}
                ClientStep::Finished => remaining -= 1,
                ClientStep::Failed => {
                    errors += 1;
                    clients[i].done = true;
                    remaining -= 1;
                }
            }
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    rtts.sort_unstable();
    let q = |f: f64| -> u64 {
        if rtts.is_empty() {
            return 0;
        }
        let idx = ((rtts.len() - 1) as f64 * f) as usize;
        rtts[idx]
    };
    Ok(ClientOutcome {
        errors,
        unfinished: remaining as u64,
        echoed_bytes: echoed,
        elapsed_ns,
        p50_us: q(0.50),
        p99_us: q(0.99),
    })
}

/// Env var the child-process client herd reads its marching orders
/// from: `<addr> <conns> <rounds> <seed>`.
pub const CLIENT_ENV: &str = "NMAD_REACTOR_CLIENT";

/// Child-process entry point: when [`CLIENT_ENV`] is set, run the herd
/// against the given server and print one parseable outcome line. The
/// bench binary calls this before anything else; returns false when the
/// env var is absent (normal run).
pub fn client_main() -> bool {
    let Ok(orders) = std::env::var(CLIENT_ENV) else {
        return false;
    };
    let parts: Vec<&str> = orders.split_whitespace().collect();
    let parsed = (|| -> Option<(std::net::SocketAddr, usize, u32, u64)> {
        Some((
            parts.first()?.parse().ok()?,
            parts.get(1)?.parse().ok()?,
            parts.get(2)?.parse().ok()?,
            parts.get(3)?.parse().ok()?,
        ))
    })();
    let Some((addr, conns, rounds, seed)) = parsed else {
        eprintln!("malformed {CLIENT_ENV}: {orders:?}");
        std::process::exit(2);
    };
    // The child only needs its own ends of the herd.
    let _ = sys::raise_nofile_limit(conns as u64 + 512);
    match drive_clients(addr, conns, rounds, seed, || {}) {
        Ok(o) => {
            println!(
                "REACTOR_CLIENT errors={} unfinished={} echoed={} elapsed_ns={} p50_us={} p99_us={}",
                o.errors, o.unfinished, o.echoed_bytes, o.elapsed_ns, o.p50_us, o.p99_us
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("client herd failed: {e}");
            std::process::exit(3);
        }
    }
}

fn parse_client_line(stdout: &str) -> Option<ClientOutcome> {
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("REACTOR_CLIENT "))?;
    let mut o = ClientOutcome::default();
    for kv in line.split_whitespace().skip(1) {
        let (k, val) = kv.split_once('=')?;
        let n: u64 = val.parse().ok()?;
        match k {
            "errors" => o.errors = n,
            "unfinished" => o.unfinished = n,
            "echoed" => o.echoed_bytes = n,
            "elapsed_ns" => o.elapsed_ns = n,
            "p50_us" => o.p50_us = n,
            "p99_us" => o.p99_us = n,
            _ => return None,
        }
    }
    Some(o)
}

/// `Err(Unsupported)` means no epoll on this target — the caller turns
/// that into `supported: false`, any other error is a real failure.
///
/// `client_exe` is the bench binary itself (which dispatches to
/// [`client_main`]): when the per-process fd limit cannot hold both
/// ends of the herd, the client side runs in a child process so each
/// process only needs one fd per connection. Without a child hook the
/// herd scales down gracefully instead.
fn run_scale(spec: &ReactorSpec, client_exe: Option<&std::path::Path>) -> io::Result<ScaleLeg> {
    // Probe epoll support before touching limits or sockets.
    drop(Poller::new()?);

    // Both ends in one process need two fds per connection plus
    // headroom for listeners, epoll instances, eventfds and stdio.
    let both_ends = (spec.conns as u64) * 2 + 512;
    let one_end = spec.conns as u64 + 512;
    let soft = sys::raise_nofile_limit(both_ends)
        .map(|(s, _)| s)
        .unwrap_or(0);
    let mut driven = spec.conns;
    let use_child = soft < both_ends && soft >= one_end && client_exe.is_some();
    if soft < both_ends && !use_child {
        // Graceful scale-down: drive what fits and say so.
        driven = (soft.saturating_sub(512) / 2) as usize;
        eprintln!(
            "fd limit {soft} below the {both_ends} needed for {} connections; driving {driven}",
            spec.conns
        );
    }

    let threads = reactor::worker_count(0);
    let mut pool = ReactorPool::new(threads, SharedPool::new(256))?;
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    pool.add_listener(listener)?;

    let outcome: ClientOutcome;
    let sustained: u64;
    if use_child {
        eprintln!(
            "fd limit {soft} cannot hold both ends of {driven} connections; \
             driving the client herd from a child process"
        );
        let mut child = std::process::Command::new(client_exe.unwrap())
            .env(
                CLIENT_ENV,
                format!("{addr} {driven} {} {}", spec.rounds, spec.seed),
            )
            .stdout(std::process::Stdio::piped())
            .spawn()?;
        // Sample the server's concurrency peak while the child runs.
        let mut peak = 0u64;
        let hard_deadline = Instant::now() + DEADLINE + Duration::from_secs(60);
        loop {
            peak = peak.max(pool.conns().saturating_sub(1));
            if child.try_wait()?.is_some() || Instant::now() > hard_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let out = child.wait_with_output()?;
        let stdout = String::from_utf8_lossy(&out.stdout);
        outcome = parse_client_line(&stdout).ok_or_else(|| {
            io::Error::other(format!(
                "client child produced no outcome (status {:?})",
                out.status
            ))
        })?;
        sustained = peak;
    } else {
        // In-process: read the server's gauge the moment the whole herd
        // is connected and still open — registration can lag the last
        // connect by a beat, so wait it out (the gauge counts the
        // listener registration too).
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let peak = Arc::new(AtomicU64::new(0));
        let shared = pool.handle();
        let hook_peak = peak.clone();
        outcome = drive_clients(addr, driven, spec.rounds, spec.seed, move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let c = shared.snapshot().conns.saturating_sub(1);
                hook_peak.fetch_max(c, Ordering::Relaxed);
                if c >= driven as u64 || Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })?;
        sustained = peak.load(Ordering::Relaxed);
    }

    let stats = pool.stats();
    pool.shutdown();

    Ok(ScaleLeg {
        target_conns: spec.conns,
        driven_conns: driven,
        sustained_conns: sustained,
        threads: stats.workers,
        completed: outcome.errors == 0 && outcome.unfinished == 0,
        errors: outcome.errors,
        elapsed_ns: outcome.elapsed_ns,
        echoed_bytes: outcome.echoed_bytes,
        p50_us: outcome.p50_us,
        p99_us: outcome.p99_us,
        fd_shed: stats.fd_shed,
        hot_path_allocs: stats.hot_path_allocs,
        write_stalls: stats.write_stalls,
        polls: stats.polls,
        events: stats.events,
        events_per_wake: stats.mean_events_per_wake(),
        loop_utilization: stats.loop_utilization(),
    })
}

// ---------------------------------------------------------------------
// Perthread leg: reactor endpoint vs thread-per-rail endpoint
// ---------------------------------------------------------------------

/// Pump `messages` rendezvous-size messages through one localhost
/// endpoint pair; returns (wall ns, completed).
fn run_endpoint(reactor_mode: bool, messages: usize, msg_size: usize) -> (u64, bool) {
    let mut engine = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    if reactor_mode {
        engine.reactor = true;
    } else {
        engine.parallel = true;
    }
    let (a, b) =
        nmad_transport_tcp::pair_localhost(TcpConfig::new(platform::paper_platform(), engine))
            .expect("localhost pair");
    let c = a.conns()[0];
    let payload = Bytes::from(vec![0x6Bu8; msg_size]);
    let t0 = Instant::now();
    let recvs: Vec<_> = (0..messages).map(|_| b.recv(c)).collect();
    let sends: Vec<_> = (0..messages)
        .map(|_| a.send(c, vec![payload.clone()]))
        .collect();
    let mut completed = true;
    for s in &sends {
        completed &= s.wait(DEADLINE);
    }
    for r in recvs {
        completed &= r.wait(DEADLINE).is_some();
    }
    (t0.elapsed().as_nanos() as u64, completed)
}

fn run_perthread(spec: &ReactorSpec) -> PerThreadLeg {
    let rails = platform::paper_platform().rail_count() as u64;
    let (parallel_ns, par_ok) = run_endpoint(false, spec.messages, spec.msg_size);
    let (reactor_ns, rea_ok) = run_endpoint(true, spec.messages, spec.msg_size);
    PerThreadLeg {
        completed: par_ok && rea_ok,
        reactor_ns,
        parallel_ns,
        payload_bytes: (spec.messages * spec.msg_size) as u64,
        reactor_threads: reactor::worker_count(0) as u64,
        parallel_threads: rails * 2,
    }
}

/// Run both legs. `client_exe` should be the bench binary itself (its
/// `main` dispatches to [`client_main`]) so an fd-limited environment
/// can still drive the full herd from a child process.
pub fn run(spec: &ReactorSpec, client_exe: Option<&std::path::Path>) -> ReactorReport {
    let scale = match run_scale(spec, client_exe) {
        Ok(leg) => leg,
        Err(e) if e.kind() == ErrorKind::Unsupported => {
            eprintln!("no epoll layer on this target; reactor ablation skipped");
            return ReactorReport {
                supported: false,
                spec_conns: spec.conns,
                spec_rounds: spec.rounds,
                p99_gate_us: spec.p99_gate_us,
                per_thread_gate: PER_THREAD_GATE,
                seed: spec.seed,
                scale: ScaleLeg::default(),
                perthread: PerThreadLeg::default(),
            };
        }
        Err(e) => panic!("scale leg failed outright: {e}"),
    };
    let perthread = run_perthread(spec);
    ReactorReport {
        supported: true,
        spec_conns: spec.conns,
        spec_rounds: spec.rounds,
        p99_gate_us: spec.p99_gate_us,
        per_thread_gate: PER_THREAD_GATE,
        seed: spec.seed,
        scale,
        perthread,
    }
}

/// Gate violations (empty = the reactor holds its claims). Wall-clock
/// gates carry the `timing:` prefix for the shared retry policy.
pub fn check(report: &ReactorReport) -> Vec<String> {
    let mut v = Vec::new();
    if !report.supported {
        return v;
    }
    let s = &report.scale;
    if !s.completed {
        v.push(format!(
            "scale leg incomplete: {} errors, {} conns driven",
            s.errors, s.driven_conns
        ));
    }
    if s.driven_conns < s.target_conns {
        v.push(format!(
            "fd limit capped the herd at {} of {} connections",
            s.driven_conns, s.target_conns
        ));
    }
    if s.sustained_conns < s.driven_conns as u64 {
        v.push(format!(
            "server sustained {} of {} connections",
            s.sustained_conns, s.driven_conns
        ));
    }
    if s.threads > reactor::DEFAULT_MAX_WORKERS as u64 {
        v.push(format!(
            "{} reactor threads exceed the fixed-pool cap {}",
            s.threads,
            reactor::DEFAULT_MAX_WORKERS
        ));
    }
    if s.fd_shed != 0 {
        v.push(format!(
            "{} accepts shed on fd exhaustion despite the raised limit",
            s.fd_shed
        ));
    }
    if s.hot_path_allocs != 0 {
        v.push(format!(
            "{} event-loop allocations outside the pool (tripwire must be zero)",
            s.hot_path_allocs
        ));
    }
    if s.p99_us > report.p99_gate_us {
        v.push(format!(
            "timing: p99 round trip {} us above the {} us gate",
            s.p99_us, report.p99_gate_us
        ));
    }
    let p = &report.perthread;
    if !p.completed {
        v.push("perthread leg did not complete all messages".into());
    }
    if p.per_thread_ratio() < report.per_thread_gate {
        v.push(format!(
            "timing: per-thread throughput ratio {:.2} below the {:.1} gate \
             (reactor {:.1} MB/s on {} threads vs thread-per-rail {:.1} MB/s on {} threads)",
            p.per_thread_ratio(),
            report.per_thread_gate,
            p.reactor_mbs(),
            p.reactor_threads,
            p.parallel_mbs(),
            p.parallel_threads
        ));
    }
    v
}

/// Human-readable summary.
pub fn render(report: &ReactorReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !report.supported {
        let _ = writeln!(out, "reactor ablation skipped: no epoll on this target");
        return out;
    }
    let s = &report.scale;
    let _ = writeln!(
        out,
        "scale: {} conns on {} threads, {} round trips, {:.1} MB/s ({:.1}/thread)",
        s.sustained_conns,
        s.threads,
        s.driven_conns * report.spec_rounds as usize,
        s.mbs(),
        s.per_thread_mbs()
    );
    let _ = writeln!(
        out,
        "       rtt p50 {} us, p99 {} us (gate {} us); fd_shed {}, hot allocs {}, stalls {}",
        s.p50_us, s.p99_us, report.p99_gate_us, s.fd_shed, s.hot_path_allocs, s.write_stalls
    );
    let _ = writeln!(
        out,
        "       {} polls, {} events ({:.1}/wake), loop utilization {:.1}%",
        s.polls,
        s.events,
        s.events_per_wake,
        s.loop_utilization * 100.0
    );
    let p = &report.perthread;
    let _ = writeln!(
        out,
        "perthread: reactor {:.1} MB/s / {} threads vs thread-per-rail {:.1} MB/s / {} threads \
         = ratio {:.2} (gate {:.1})",
        p.reactor_mbs(),
        p.reactor_threads,
        p.parallel_mbs(),
        p.parallel_threads,
        p.per_thread_ratio(),
        report.per_thread_gate
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passing_report() -> ReactorReport {
        ReactorReport {
            supported: true,
            spec_conns: 4,
            spec_rounds: 2,
            p99_gate_us: 1000,
            per_thread_gate: PER_THREAD_GATE,
            seed: 1,
            scale: ScaleLeg {
                target_conns: 4,
                driven_conns: 4,
                sustained_conns: 4,
                threads: 1,
                completed: true,
                errors: 0,
                elapsed_ns: 1_000_000,
                echoed_bytes: 1 << 20,
                p50_us: 10,
                p99_us: 100,
                ..ScaleLeg::default()
            },
            perthread: PerThreadLeg {
                completed: true,
                reactor_ns: 1_000_000,
                parallel_ns: 1_000_000,
                payload_bytes: 1 << 20,
                reactor_threads: 1,
                parallel_threads: 4,
            },
        }
    }

    #[test]
    fn check_passes_and_flags() {
        let mut r = passing_report();
        assert!(check(&r).is_empty(), "{:?}", check(&r));

        r.scale.hot_path_allocs = 1;
        r.scale.fd_shed = 2;
        r.scale.p99_us = 5000;
        r.perthread.reactor_ns = 100_000_000; // ratio collapses
        let v = check(&r);
        assert_eq!(v.len(), 4, "{v:?}");
        // Wall-clock gates are marked for the retry policy; the
        // deterministic ones are not.
        assert_eq!(v.iter().filter(|s| s.starts_with("timing:")).count(), 2);
    }

    #[test]
    fn unsupported_report_vacuously_passes() {
        let mut r = passing_report();
        r.supported = false;
        r.scale = ScaleLeg::default();
        r.perthread = PerThreadLeg::default();
        assert!(check(&r).is_empty());
    }

    /// A miniature herd end-to-end (skips where epoll is absent).
    #[test]
    fn tiny_scale_leg_round_trips() {
        let spec = ReactorSpec {
            conns: 8,
            rounds: 2,
            p99_gate_us: u64::MAX,
            messages: 1,
            msg_size: 1024,
            seed: 7,
        };
        match run_scale(&spec, None) {
            Ok(leg) => {
                assert!(leg.completed, "tiny herd must finish: {leg:?}");
                assert_eq!(leg.sustained_conns, 8);
                assert_eq!(leg.errors, 0);
                assert_eq!(leg.hot_path_allocs, 0);
                assert!(leg.echoed_bytes > 0);
            }
            Err(e) if e.kind() == ErrorKind::Unsupported => {}
            Err(e) => panic!("tiny scale leg failed: {e}"),
        }
    }
}
