//! Lock-contention ablation for the parallel progress engine (the
//! `ablate_parallel` target).
//!
//! The single-threaded runtimes hold the engine lock across the
//! transport write, so two rails never overlap their wire time — the
//! multi-rail bandwidth claim dies on lock hold time, not on the wire.
//! This ablation measures exactly that serialization: both legs drive a
//! real engine through the same eager workload where every frame
//! injection costs its wire-paced duration (`sleep(bytes / pace)` stands
//! in for the slow transport write; sleeps overlap across threads even
//! on a single-core CI box).
//!
//! * **baseline** — today's discipline: one thread owns the engine and
//!   sleeps out each frame's wire time before completing it, so rails
//!   take turns.
//! * **parallel** — the real [`ParallelHub`] pipeline: the scheduler
//!   publishes decisions into per-rail outboxes and per-rail TX workers
//!   sleep out the wire time *outside* the engine lock, concurrently.
//!
//! [`check`] is the regression gate used by `scripts/verify.sh`: with
//! two or more rails the parallel pipeline must reach at least
//! [`SPEEDUP_GATE`]× the baseline's aggregate throughput, every rail
//! must actually carry frames, and the scheduler's lock-hold histogram
//! must prove the short-critical-section claim was exercised. The
//! result is written to `BENCH_parallel.json` at the repo root.

use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::{Completion, EngineConfig, ParallelHub, SendId, StrategyKind};
use nmad_model::{platform, NicModel, RailId};
use serde::{ser, Serialize, Value};

/// Minimum aggregate-throughput ratio (parallel over baseline) the gate
/// demands from every multi-rail point.
pub const SPEEDUP_GATE: f64 = 1.5;

/// Wire pacing: nanoseconds of injection time per KiB of wire bytes
/// (~32 MB/s per rail). Slow enough that per-frame sleeps dwarf
/// scheduler overhead and `thread::sleep` slack on a loaded CI box.
pub const PACE_NS_PER_KIB: u64 = 32_000;

/// Message size: below the 32 KiB rendezvous threshold (no handshake,
/// so no receiver engine is needed — eager sends complete at tx-done)
/// and above the 16 KiB aggregation cap.
pub const MSG_SIZE: usize = 24 << 10;

/// Give up on a leg after this long (a wedged pipeline must fail the
/// gate, not hang CI).
const COMPLETION_DEADLINE: Duration = Duration::from_secs(120);

fn pace(wire_bytes: u64) -> Duration {
    Duration::from_nanos(wire_bytes.saturating_mul(PACE_NS_PER_KIB) / 1024)
}

/// Homogeneous rails so the ideal multi-rail speedup is the rail count.
fn rail_models(n: usize) -> Vec<NicModel> {
    (0..n).map(|_| platform::myri_10g()).collect()
}

fn mk_engine(rails: usize, parallel: bool) -> Engine {
    // Greedy hands the oldest backlog entry to whichever rail asks, so
    // a deep eager backlog loads every rail without rendezvous traffic.
    let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
    cfg.parallel = parallel;
    let mut eng = Engine::new(cfg, rail_models(rails), vec![]);
    eng.conn_open();
    eng
}

/// One thread owns the engine and pays each frame's wire time inline —
/// the single-lock discipline the threaded transports use today.
/// Returns the leg's wall-clock ns.
fn run_baseline(rails: usize, messages: usize) -> u64 {
    let mut eng = mk_engine(rails, false);
    let payload = Bytes::from(vec![0x5Au8; MSG_SIZE]);
    let t0 = Instant::now();
    let ids: Vec<SendId> = (0..messages)
        .map(|_| eng.submit_send(0, vec![payload.clone()]))
        .collect();
    loop {
        let mut progressed = false;
        for r in 0..rails {
            if let Some(d) = eng.next_tx(RailId(r)).expect("next_tx") {
                progressed = true;
                thread::sleep(pace(d.frame.wire_len() as u64));
                eng.on_tx_done(RailId(r), d.token).expect("tx_done");
            }
        }
        if !progressed {
            assert!(
                ids.iter().all(|&id| eng.send_complete(id)),
                "baseline leg quiesced with incomplete sends"
            );
            return t0.elapsed().as_nanos() as u64;
        }
    }
}

/// What the parallel leg measured, plus the scheduler's own evidence.
struct ParallelOutcome {
    ns: u64,
    completed: bool,
    lock_hold_passes: u64,
    lock_hold_p50_ns: u64,
    lock_hold_max_ns: u64,
    completion_batch_mean: f64,
    rail_packets: Vec<u64>,
}

/// The real sharded pipeline: scheduler thread + one wire-paced TX
/// worker per rail, sleeps overlapping outside the engine lock.
fn run_parallel(rails: usize, messages: usize) -> ParallelOutcome {
    let eng = mk_engine(rails, true);
    let (hub, senders, receivers) = ParallelHub::new(eng);
    let epoch = Instant::now();
    let mut workers = Vec::new();
    for (rail, mut rx) in receivers.into_iter().enumerate() {
        let hub = hub.clone();
        let h = thread::Builder::new()
            .name(format!("ablate-tx{rail}"))
            .spawn(move || loop {
                match rx.pop_wait(Duration::from_millis(2)) {
                    Some(d) => {
                        thread::sleep(pace(d.frame.wire_len() as u64));
                        hub.push_completion(
                            rail,
                            Completion::TxDone {
                                rail,
                                token: d.token,
                            },
                        );
                    }
                    None => {
                        if hub.is_shutdown() {
                            while let Some(d) = rx.pop() {
                                hub.push_completion(
                                    rail,
                                    Completion::TxDone {
                                        rail,
                                        token: d.token,
                                    },
                                );
                            }
                            return;
                        }
                    }
                }
            })
            .expect("spawn tx worker");
        workers.push(h);
    }
    let sched = {
        let hub = hub.clone();
        thread::Builder::new()
            .name("ablate-sched".into())
            .spawn(move || hub.run_scheduler(senders, epoch))
            .expect("spawn scheduler")
    };

    let payload = Bytes::from(vec![0x5Au8; MSG_SIZE]);
    let t0 = Instant::now();
    let ids: Vec<SendId> = (0..messages)
        .map(|_| {
            hub.submit_send(0, vec![payload.clone()])
                .expect("hub not shut down")
        })
        .collect();
    let completed = {
        let mut eng = hub.engine().lock();
        loop {
            if ids.iter().all(|&id| eng.send_complete(id)) {
                break true;
            }
            if t0.elapsed() > COMPLETION_DEADLINE {
                break false;
            }
            hub.app_cv().wait_for(&mut eng, Duration::from_millis(20));
        }
    };
    let ns = t0.elapsed().as_nanos() as u64;

    hub.begin_shutdown();
    for w in workers {
        w.join().expect("tx worker");
    }
    sched.join().expect("scheduler");

    let eng = hub.engine().lock();
    let obs = &eng.stats().obs;
    ParallelOutcome {
        ns,
        completed,
        lock_hold_passes: obs.lock_hold_ns.count(),
        lock_hold_p50_ns: obs.lock_hold_ns.approx_quantile(0.5).unwrap_or(0),
        lock_hold_max_ns: obs.lock_hold_ns.max().unwrap_or(0),
        completion_batch_mean: obs.completion_batch.mean().unwrap_or(0.0),
        rail_packets: eng.stats().rails.iter().map(|r| r.packets).collect(),
    }
}

/// One rail-count point: the same workload through both disciplines.
#[derive(Clone, Debug)]
pub struct ParallelPoint {
    /// Rail count of this point.
    pub rails: usize,
    /// Messages pushed through each leg.
    pub messages: usize,
    /// Application payload bytes moved per leg.
    pub payload_bytes: u64,
    /// Single-lock leg wall-clock, ns.
    pub baseline_ns: u64,
    /// Sharded-pipeline leg wall-clock, ns.
    pub parallel_ns: u64,
    /// Whether every send completed before the deadline (both legs;
    /// the baseline asserts, the parallel leg reports).
    pub completed: bool,
    /// Scheduler passes recorded in the lock-hold histogram.
    pub lock_hold_passes: u64,
    /// Median scheduler critical section, ns.
    pub lock_hold_p50_ns: u64,
    /// Worst scheduler critical section, ns.
    pub lock_hold_max_ns: u64,
    /// Mean completions drained per scheduler pass.
    pub completion_batch_mean: f64,
    /// Data packets each rail carried in the parallel leg.
    pub rail_packets: Vec<u64>,
}

impl ParallelPoint {
    /// Aggregate-throughput ratio: baseline time over parallel time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            return 0.0;
        }
        self.baseline_ns as f64 / self.parallel_ns as f64
    }

    /// Baseline aggregate throughput, MB/s.
    pub fn baseline_mbs(&self) -> f64 {
        mbs(self.payload_bytes, self.baseline_ns)
    }

    /// Parallel aggregate throughput, MB/s.
    pub fn parallel_mbs(&self) -> f64 {
        mbs(self.payload_bytes, self.parallel_ns)
    }
}

fn mbs(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 / (ns as f64 / 1e9) / 1e6
}

impl Serialize for ParallelPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("rails", ser::v(&self.rails)),
            ("messages", ser::v(&self.messages)),
            ("payload_bytes", ser::v(&self.payload_bytes)),
            ("baseline_ns", ser::v(&self.baseline_ns)),
            ("parallel_ns", ser::v(&self.parallel_ns)),
            ("baseline_mbs", ser::v(&self.baseline_mbs())),
            ("parallel_mbs", ser::v(&self.parallel_mbs())),
            ("speedup", ser::v(&self.speedup())),
            ("completed", ser::v(&self.completed)),
            ("lock_hold_passes", ser::v(&self.lock_hold_passes)),
            ("lock_hold_p50_ns", ser::v(&self.lock_hold_p50_ns)),
            ("lock_hold_max_ns", ser::v(&self.lock_hold_max_ns)),
            ("completion_batch_mean", ser::v(&self.completion_batch_mean)),
            ("rail_packets", ser::v(&self.rail_packets)),
        ])
    }
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// One point per rail count in the ladder.
    pub points: Vec<ParallelPoint>,
    /// The gate applied by [`check`] to every multi-rail point.
    pub speedup_gate: f64,
    /// Worst speedup across the multi-rail points (what the gate sees).
    pub multi_rail_speedup: f64,
    /// Wire pacing used, ns per KiB.
    pub pace_ns_per_kib: u64,
    /// Message size used, bytes.
    pub msg_size: u64,
}

impl Serialize for ParallelReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("points", ser::v(&self.points)),
            ("speedup_gate", ser::v(&self.speedup_gate)),
            ("multi_rail_speedup", ser::v(&self.multi_rail_speedup)),
            ("pace_ns_per_kib", ser::v(&self.pace_ns_per_kib)),
            ("msg_size", ser::v(&self.msg_size)),
        ])
    }
}

/// Run the ablation. `smoke` shrinks the rail ladder and message count
/// for the CI gate.
pub fn run(smoke: bool) -> ParallelReport {
    let (rail_ladder, messages): (Vec<usize>, usize) = if smoke {
        (vec![1, 2], 96)
    } else {
        (vec![1, 2, 4], 256)
    };
    let mut points = Vec::new();
    for &rails in &rail_ladder {
        let baseline_ns = run_baseline(rails, messages);
        let out = run_parallel(rails, messages);
        points.push(ParallelPoint {
            rails,
            messages,
            payload_bytes: (messages * MSG_SIZE) as u64,
            baseline_ns,
            parallel_ns: out.ns,
            completed: out.completed,
            lock_hold_passes: out.lock_hold_passes,
            lock_hold_p50_ns: out.lock_hold_p50_ns,
            lock_hold_max_ns: out.lock_hold_max_ns,
            completion_batch_mean: out.completion_batch_mean,
            rail_packets: out.rail_packets,
        });
    }
    let multi_rail_speedup = points
        .iter()
        .filter(|p| p.rails >= 2)
        .map(ParallelPoint::speedup)
        .fold(f64::INFINITY, f64::min);
    ParallelReport {
        points,
        speedup_gate: SPEEDUP_GATE,
        multi_rail_speedup,
        pace_ns_per_kib: PACE_NS_PER_KIB,
        msg_size: MSG_SIZE as u64,
    }
}

/// Gate violations (empty = pipeline holds its claims).
pub fn check(report: &ParallelReport) -> Vec<String> {
    let mut v = Vec::new();
    for p in &report.points {
        if !p.completed {
            v.push(format!(
                "parallel leg at {} rails did not complete all sends",
                p.rails
            ));
        }
        if p.lock_hold_passes == 0 {
            v.push(format!(
                "parallel leg at {} rails recorded no scheduler passes (lock-hold histogram empty)",
                p.rails
            ));
        }
        if p.rails < 2 {
            continue;
        }
        if p.speedup() < report.speedup_gate {
            v.push(format!(
                "speedup {:.2}x at {} rails below the {:.1}x gate",
                p.speedup(),
                p.rails,
                report.speedup_gate
            ));
        }
        for (i, &pk) in p.rail_packets.iter().enumerate() {
            if pk == 0 {
                v.push(format!(
                    "rail {i} carried no frames in the {}-rail parallel leg",
                    p.rails
                ));
            }
        }
    }
    v
}

/// Human-readable table.
pub fn render(report: &ParallelReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>10} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "rails", "msgs", "base (ms)", "par (ms)", "speedup", "lock p50", "lock max", "batch"
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>10.1} {:>10.1} {:>7.2}x {:>9} ns {:>9} ns {:>8.2}",
            p.rails,
            p.messages,
            p.baseline_ns as f64 / 1e6,
            p.parallel_ns as f64 / 1e6,
            p.speedup(),
            p.lock_hold_p50_ns,
            p.lock_hold_max_ns,
            p.completion_batch_mean
        );
    }
    let _ = writeln!(
        out,
        "multi-rail speedup {:.2}x (gate {:.1}x), pacing {} ns/KiB, {} B messages",
        report.multi_rail_speedup, report.speedup_gate, report.pace_ns_per_kib, report.msg_size
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_flags_slow_and_idle_rails() {
        let mut r = ParallelReport {
            points: vec![ParallelPoint {
                rails: 2,
                messages: 8,
                payload_bytes: 8 * MSG_SIZE as u64,
                baseline_ns: 100,
                parallel_ns: 90,
                completed: false,
                lock_hold_passes: 0,
                lock_hold_p50_ns: 0,
                lock_hold_max_ns: 0,
                completion_batch_mean: 0.0,
                rail_packets: vec![8, 0],
            }],
            speedup_gate: SPEEDUP_GATE,
            multi_rail_speedup: 100.0 / 90.0,
            pace_ns_per_kib: PACE_NS_PER_KIB,
            msg_size: MSG_SIZE as u64,
        };
        // Incomplete, no sched passes, speedup under gate, idle rail.
        assert_eq!(check(&r).len(), 4);
        let p = &mut r.points[0];
        p.completed = true;
        p.lock_hold_passes = 50;
        p.parallel_ns = 50;
        p.rail_packets = vec![4, 4];
        assert!(check(&r).is_empty());
    }

    #[test]
    fn both_legs_move_a_tiny_workload() {
        let base = run_baseline(2, 4);
        assert!(base > 0);
        let par = run_parallel(2, 4);
        assert!(par.completed, "parallel leg must finish 4 sends");
        assert!(par.lock_hold_passes > 0, "scheduler must have run");
        assert_eq!(par.rail_packets.iter().sum::<u64>(), 4);
    }
}
