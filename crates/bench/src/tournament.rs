//! Strategy-zoo tournament: every [`StrategyKind`] against every traffic
//! scenario (`nmad tournament`, `ablate_strategies`, `BENCH_strategies.json`).
//!
//! The zoo's three newcomers each claim a regime; the tournament is the
//! instrument that checks the claims instead of taking them on faith:
//!
//! * **srpt** — shortest-remaining-work with straggler re-striping must
//!   match greedy on heavy-tailed backlogs (the regime where serving the
//!   short messages first pays and a parked chunk hurts most);
//! * **idle-harvest** — on an asymmetric small-message flood, the rail
//!   the primary placement leaves idle must be put to work, measurably
//!   shortening the makespan;
//! * **latency-router** — under mixed load, pinning smalls to the
//!   low-latency rail must cut the small-message p99 versus letting them
//!   queue behind bulk.
//!
//! Six deterministic scenarios run on the discrete-event [`SimWorld`]
//! (virtual time, replayable from the seed): a uniform bulk burst, a
//! bounded-Pareto heavy-tail burst, MMPP bursty waves, mid-run bandwidth
//! drift, a hard rail outage under acked delivery, and the asymmetric
//! small-message flood. Every cell must deliver every message; the
//! claim gates above are checked by [`check`], and the winner table is
//! what EXPERIMENTS.md publishes.

use bytes::Bytes;
use nmad_core::obs::EventKind;
use nmad_core::request::{RecvId, SendId};
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::platform;
use nmad_runtime_sim::world::{AppLogic, BandwidthDrift, FaultPlan, NodeApi, SimWorld};
use nmad_sim::{SimDuration, SimTime, Xoshiro256StarStar};
use nmad_wire::reassembly::MessageAssembly;
use serde::{ser, Serialize, Value};

use crate::loadgen::{ArrivalSampler, Arrivals, BoundedPareto};

/// Messages at or below this are "small" for the latency metric — the
/// PIO-class traffic the latency router pins to the low-latency rail.
pub const SMALL_CUTOFF: usize = 4096;

/// One submission wave: `gap_us` of sender compute (think time) once the
/// previous wave fully completes, then `sizes` submitted back to back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wave {
    /// Think time before this wave, microseconds.
    pub gap_us: u64,
    /// Message sizes, bytes.
    pub sizes: Vec<usize>,
}

/// One tournament scenario: a deterministic submission schedule plus the
/// fabric conditions it runs under.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario label ("uniform", "heavy-tail", ...).
    pub name: &'static str,
    /// Submission schedule.
    pub waves: Vec<Wave>,
    /// Optional link fault (outage window and/or bandwidth drift).
    pub fault: Option<FaultPlan>,
    /// Run with end-to-end acks and fast-failure health timers (the
    /// outage scenario needs both to recover).
    pub acked: bool,
}

impl Scenario {
    /// Total messages across all waves.
    pub fn messages(&self) -> usize {
        self.waves.iter().map(|w| w.sizes.len()).sum()
    }

    /// Total payload bytes across all waves.
    pub fn total_bytes(&self) -> u64 {
        self.waves
            .iter()
            .flat_map(|w| w.sizes.iter())
            .map(|&s| s as u64)
            .sum()
    }
}

/// The six scenarios, deterministic in `seed`. `smoke` scales message
/// counts down for CI; the claim gates hold at both scales.
pub fn scenarios(seed: u64, smoke: bool) -> Vec<Scenario> {
    let n = |full: usize, smoke_n: usize| if smoke { smoke_n } else { full };
    let burst = |sizes: Vec<usize>| vec![Wave { gap_us: 0, sizes }];

    // Uniform bulk: every message identical, no regime to exploit — the
    // sanity baseline where nothing should catastrophically lose.
    let uniform = Scenario {
        name: "uniform",
        waves: burst(vec![512 << 10; n(24, 12)]),
        fault: None,
        acked: false,
    };

    // Bounded-Pareto heavy tail: many smalls, a few multi-MiB elephants
    // in one burst — SRPT's regime, and mixed load for the router's
    // small-p99 claim. A Pareto draw this short can miss the tail
    // entirely, so the elephants are pinned: the tail is the scenario.
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x7A11);
    let pareto = BoundedPareto::new(64, 256 << 10, 1.1);
    let mut heavy_sizes: Vec<usize> = (0..n(36, 24))
        .map(|_| pareto.sample(&mut rng) as usize)
        .collect();
    // Interleave them from the front so smalls contend with elephants
    // in flight — appended at the end they'd finish before any queueing
    // and the router/SRPT claims would measure nothing.
    let elephants = [2 << 20, 1 << 20, (3 << 20) / 2, 2 << 20];
    for (i, e) in elephants.iter().enumerate() {
        let at = (i * heavy_sizes.len() / elephants.len()).min(heavy_sizes.len());
        heavy_sizes.insert(at, *e);
    }
    let heavy = Scenario {
        name: "heavy-tail",
        waves: burst(heavy_sizes),
        fault: None,
        acked: false,
    };

    // MMPP bursty: quiet trickles and dense waves, sizes moderately
    // tailed. Wave boundaries come from the MMPP gap process: a gap
    // long enough to drain the pipeline starts a new wave.
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xB02);
    let sizes = BoundedPareto::new(256, 256 << 10, 1.3);
    let mut sampler = ArrivalSampler::new(
        Arrivals::Mmpp2 {
            quiet_hz: 900.0,
            burst_hz: 40_000.0,
            // Short sojourns: at 40 kHz a 2 ms burst would swallow the
            // whole smoke-sized draw in one wave.
            mean_sojourn_s: 0.0003,
        },
        &mut rng,
    );
    let mut waves = vec![Wave {
        gap_us: 0,
        sizes: Vec::new(),
    }];
    for _ in 0..n(36, 24) {
        let gap_us = sampler.next_gap(&mut rng).as_micros() as u64;
        if gap_us > 200 && !waves.last().unwrap().sizes.is_empty() {
            waves.push(Wave {
                gap_us,
                sizes: Vec::new(),
            });
        }
        let s = sizes.sample(&mut rng) as usize;
        waves.last_mut().unwrap().sizes.push(s);
    }
    let bursty = Scenario {
        name: "bursty",
        waves,
        fault: None,
        acked: false,
    };

    // Bandwidth drift: rail 0 (Myri, the bandwidth rail) loses half its
    // link rate shortly into a bulk pipeline and never recovers within
    // the run — the split ratios a strategy assumed go stale.
    let drift = Scenario {
        name: "drift",
        waves: burst(vec![1 << 20; n(16, 10)]),
        fault: Some(FaultPlan::drift_only(
            BandwidthDrift {
                rail: 0,
                from: SimTime::from_us(500),
                to: SimTime::from_us(1_000_000),
                factor: 0.45,
            },
            SimDuration::from_us(50),
            SimTime::from_us(60_000),
        )),
        acked: false,
    };

    // Hard outage: rail 0 silently eats every packet for most of the
    // run; acked delivery plus fast health timers must fail the traffic
    // over and still deliver everything.
    let outage = Scenario {
        name: "outage",
        waves: burst(vec![1 << 20; n(10, 6)]),
        fault: Some(FaultPlan {
            rail: 0,
            down_at: SimTime::from_us(100),
            up_at: SimTime::from_us(15_000),
            tick: SimDuration::from_us(50),
            until: SimTime::from_us(120_000),
            drift: None,
        }),
        acked: true,
    };

    // Asymmetric small flood: nothing but sub-chunk smalls. Primary
    // placement parks them all on the latency rail; the bandwidth rail
    // idles unless a strategy harvests it.
    let asym = Scenario {
        name: "asym-smalls",
        waves: burst(vec![4 << 10; n(64, 40)]),
        fault: None,
        acked: false,
    };

    vec![uniform, heavy, bursty, drift, outage, asym]
}

struct WaveSender {
    waves: Vec<Wave>,
    next_wave: usize,
    outstanding: usize,
    /// Sends already counted complete — under acked delivery a
    /// retransmitted message can report completion more than once.
    completed: std::collections::HashSet<SendId>,
}

impl WaveSender {
    fn launch_next(&mut self, api: &mut NodeApi<'_>) {
        let Some(w) = self.waves.get(self.next_wave).cloned() else {
            return;
        };
        self.next_wave += 1;
        if w.gap_us > 0 {
            api.compute(SimDuration::from_us(w.gap_us));
        }
        self.outstanding = w.sizes.len();
        for size in w.sizes {
            api.submit_send(0, vec![Bytes::from(vec![0x5Au8; size])]);
        }
    }
}

impl AppLogic for WaveSender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.launch_next(api);
    }
    fn on_send_complete(&mut self, s: SendId, api: &mut NodeApi<'_>) {
        if !self.completed.insert(s) {
            return;
        }
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.launch_next(api);
        }
    }
}

struct RecordingReceiver {
    expected: usize,
    /// (payload bytes, delivery time) per completed message.
    deliveries: Vec<(usize, SimTime)>,
}

impl AppLogic for RecordingReceiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        for _ in 0..self.expected {
            api.post_recv(0);
        }
    }
    fn on_recv_complete(&mut self, _r: RecvId, m: MessageAssembly, api: &mut NodeApi<'_>) {
        let size = m.segments.iter().map(Bytes::len).sum();
        self.deliveries.push((size, api.now()));
    }
}

/// One (scenario, strategy) cell of the tournament grid.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Scenario label.
    pub scenario: String,
    /// Strategy label.
    pub strategy: String,
    /// Messages delivered (gate: every message).
    pub delivered: usize,
    /// Messages expected.
    pub expected: usize,
    /// Time until the last delivery, µs of virtual time.
    pub makespan_us: f64,
    /// p99 delivery time of small (≤ [`SMALL_CUTOFF`]) messages, µs;
    /// 0 when the scenario has no smalls.
    pub small_p99_us: f64,
    /// Aggregate containers built.
    pub aggregates: u64,
    /// Chunks emitted.
    pub chunks: u64,
    /// Retransmissions (outage scenario recovery traffic).
    pub retransmits: u64,
    /// Straggler re-striping decisions (SRPT only).
    pub restripes: u64,
    /// Fraction of payload bytes on rail 0.
    pub rail0_share: f64,
}

impl Serialize for Cell {
    fn to_value(&self) -> Value {
        ser::object([
            ("scenario", ser::v(&self.scenario)),
            ("strategy", ser::v(&self.strategy)),
            ("delivered", ser::v(&self.delivered)),
            ("expected", ser::v(&self.expected)),
            ("makespan_us", ser::v(&self.makespan_us)),
            ("small_p99_us", ser::v(&self.small_p99_us)),
            ("aggregates", ser::v(&self.aggregates)),
            ("chunks", ser::v(&self.chunks)),
            ("retransmits", ser::v(&self.retransmits)),
            ("restripes", ser::v(&self.restripes)),
            ("rail0_share", ser::v(&self.rail0_share)),
        ])
    }
}

/// Winner-table row: the fastest strategy of one scenario.
#[derive(Clone, Debug)]
pub struct Winner {
    /// Scenario label.
    pub scenario: String,
    /// Strategy with the shortest makespan.
    pub strategy: String,
    /// Winning makespan, µs.
    pub makespan_us: f64,
    /// Second-best strategy.
    pub runner_up: String,
    /// Winner's margin over the runner-up, percent.
    pub margin_pct: f64,
}

impl Serialize for Winner {
    fn to_value(&self) -> Value {
        ser::object([
            ("scenario", ser::v(&self.scenario)),
            ("strategy", ser::v(&self.strategy)),
            ("makespan_us", ser::v(&self.makespan_us)),
            ("runner_up", ser::v(&self.runner_up)),
            ("margin_pct", ser::v(&self.margin_pct)),
        ])
    }
}

/// The tournament result — what `BENCH_strategies.json` records.
#[derive(Clone, Debug)]
pub struct TournamentReport {
    /// Seed that replays every schedule.
    pub seed: u64,
    /// Whether the CI-scaled message counts were used.
    pub smoke: bool,
    /// Strategies entered, in grid order.
    pub strategies: Vec<String>,
    /// Scenario labels, in grid order.
    pub scenarios: Vec<String>,
    /// The full grid, scenario-major.
    pub cells: Vec<Cell>,
    /// Fastest strategy per scenario.
    pub winners: Vec<Winner>,
}

impl Serialize for TournamentReport {
    fn to_value(&self) -> Value {
        ser::object([
            ("seed", ser::v(&self.seed)),
            ("smoke", ser::v(&self.smoke)),
            ("strategies", ser::v(&self.strategies)),
            ("scenarios", ser::v(&self.scenarios)),
            ("cells", ser::v(&self.cells)),
            ("winners", ser::v(&self.winners)),
        ])
    }
}

/// Percentile of an unsorted µs vector.
fn pct(mut v: Vec<f64>, q: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * q).round() as usize]
}

/// Run one cell: the scenario's schedule under one strategy.
pub fn run_cell(sc: &Scenario, kind: StrategyKind) -> Cell {
    let mut cfg = EngineConfig::with_strategy(kind);
    if sc.acked {
        cfg.acked = true;
        // Timers scaled to simulated microseconds, as in the sim-world
        // failover tests — the defaults are sized for wall-clock links.
        cfg.health.initial_rto_ns = 300_000;
        cfg.health.min_rto_ns = 100_000;
        cfg.health.max_rto_ns = 5_000_000;
        cfg.health.probe_interval_ns = 500_000;
        cfg.health.probe_timeout_ns = 300_000;
    }
    let expected = sc.messages();
    let mut w = SimWorld::new(
        &platform::paper_platform(),
        cfg,
        WaveSender {
            waves: sc.waves.clone(),
            next_wave: 0,
            outstanding: 0,
            completed: std::collections::HashSet::new(),
        },
        RecordingReceiver {
            expected,
            deliveries: Vec::new(),
        },
    );
    w.open_conn();
    // Recording forwards virtual time into the engines — SRPT's straggler
    // ages and the per-rail service EWMAs need a real clock.
    w.enable_recording(1 << 14);
    if let Some(plan) = sc.fault {
        w.enable_faults(plan);
    }
    w.run(50_000_000);

    let deliveries = &w.app1().deliveries;
    let makespan = deliveries
        .iter()
        .map(|&(_, t)| t)
        .max()
        .unwrap_or(SimTime::ZERO);
    let smalls: Vec<f64> = deliveries
        .iter()
        .filter(|&&(s, _)| s <= SMALL_CUTOFF)
        .map(|&(_, t)| t.as_us_f64())
        .collect();
    let restripes = w
        .merged_events()
        .iter()
        .filter(|e| e.kind == EventKind::Restripe)
        .count() as u64;
    let s = w.node(0).engine.stats();
    Cell {
        scenario: sc.name.to_string(),
        strategy: kind.label().to_string(),
        delivered: deliveries.len(),
        expected,
        makespan_us: makespan.as_us_f64(),
        small_p99_us: pct(smalls, 0.99),
        aggregates: s.aggregates_built,
        chunks: s.chunks_sent,
        retransmits: s.retransmits,
        restripes,
        rail0_share: s.rail_share(0),
    }
}

/// Run the full grid: every zoo strategy against every scenario.
pub fn run(seed: u64, smoke: bool) -> TournamentReport {
    let scs = scenarios(seed, smoke);
    let kinds = StrategyKind::zoo();
    let mut cells = Vec::with_capacity(scs.len() * kinds.len());
    let mut winners = Vec::with_capacity(scs.len());
    for sc in &scs {
        let row_start = cells.len();
        for &kind in &kinds {
            cells.push(run_cell(sc, kind));
        }
        let row = &cells[row_start..];
        let mut by_makespan: Vec<&Cell> = row.iter().collect();
        by_makespan.sort_by(|a, b| a.makespan_us.partial_cmp(&b.makespan_us).expect("finite"));
        let (win, second) = (by_makespan[0], by_makespan[1]);
        winners.push(Winner {
            scenario: sc.name.to_string(),
            strategy: win.strategy.clone(),
            makespan_us: win.makespan_us,
            runner_up: second.strategy.clone(),
            margin_pct: (second.makespan_us / win.makespan_us - 1.0) * 100.0,
        });
    }
    TournamentReport {
        seed,
        smoke,
        strategies: kinds.iter().map(|k| k.label().to_string()).collect(),
        scenarios: scs.iter().map(|s| s.name.to_string()).collect(),
        cells,
        winners,
    }
}

fn cell<'a>(r: &'a TournamentReport, scenario: &str, strategy: &str) -> Option<&'a Cell> {
    r.cells
        .iter()
        .find(|c| c.scenario == scenario && c.strategy == strategy)
}

/// The claim gates. Empty = pass. Everything here is deterministic
/// (virtual time), so there is no retry policy.
pub fn check(r: &TournamentReport) -> Vec<String> {
    let mut v = Vec::new();
    for c in &r.cells {
        if c.delivered != c.expected {
            v.push(format!(
                "{}/{}: delivered {}/{} messages",
                c.scenario, c.strategy, c.delivered, c.expected
            ));
        }
    }
    let pair = |sc: &str, a: &str, b: &str| Some((cell(r, sc, a)?, cell(r, sc, b)?));

    // SRPT claim: no worse than greedy on the heavy-tailed burst (its
    // home regime), with 2% slack for scheduling-order noise.
    match pair("heavy-tail", "srpt", "greedy") {
        Some((srpt, greedy)) => {
            if srpt.makespan_us > greedy.makespan_us * 1.02 {
                v.push(format!(
                    "srpt lost its heavy-tail claim: {:.1} us vs greedy {:.1} us",
                    srpt.makespan_us, greedy.makespan_us
                ));
            }
        }
        None => v.push("heavy-tail srpt/greedy cells missing".into()),
    }

    // Harvest claim: on the asymmetric small flood, stealing overflow
    // onto the idle rail must recover measurable bandwidth over the
    // primary placement alone (≥ 1% shorter makespan; in practice far
    // more — the gate guards the direction, the JSON records the size).
    match pair("asym-smalls", "idle-harvest", "adaptive-split") {
        Some((harvest, adaptive)) => {
            if harvest.makespan_us >= adaptive.makespan_us * 0.99 {
                v.push(format!(
                    "idle-harvest recovered no bandwidth on asym-smalls: {:.1} us vs adaptive-split {:.1} us",
                    harvest.makespan_us, adaptive.makespan_us
                ));
            }
        }
        None => v.push("asym-smalls idle-harvest/adaptive-split cells missing".into()),
    }

    // Router claim: under the mixed heavy-tail load, classifying by size
    // must cut the small-message p99 at least in half versus greedy, the
    // paper's default multi-rail strategy, which drains the backlog in
    // arrival order and parks smalls behind elephant chunks. (Strategies
    // that aggregate the eager backlog also protect smalls here — the
    // table records that — but FIFO greedy is the claim's baseline.)
    match pair("heavy-tail", "latency-router", "greedy") {
        Some((router, greedy)) => {
            if router.small_p99_us >= greedy.small_p99_us * 0.5 {
                v.push(format!(
                    "latency-router did not cut small p99 on heavy-tail: {:.1} us vs greedy {:.1} us",
                    router.small_p99_us, greedy.small_p99_us
                ));
            }
        }
        None => v.push("heavy-tail latency-router/greedy cells missing".into()),
    }
    v
}

/// Aligned text summary: one table per scenario plus the winner table.
pub fn render(r: &TournamentReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "strategy tournament: {} strategies x {} scenarios (seed {}, {})",
        r.strategies.len(),
        r.scenarios.len(),
        r.seed,
        if r.smoke { "smoke" } else { "full" }
    );
    for sc in &r.scenarios {
        let _ = writeln!(out, "\n## {sc}");
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>6} {:>7} {:>7} {:>9} {:>8}",
            "strategy", "makespan us", "small p99", "aggs", "chunks", "rtx", "restripe", "rail0 %"
        );
        for c in r.cells.iter().filter(|c| &c.scenario == sc) {
            let _ = writeln!(
                out,
                "{:<22} {:>12.1} {:>12.1} {:>6} {:>7} {:>7} {:>9} {:>8.1}",
                c.strategy,
                c.makespan_us,
                c.small_p99_us,
                c.aggregates,
                c.chunks,
                c.retransmits,
                c.restripes,
                100.0 * c.rail0_share
            );
        }
    }
    let _ = writeln!(out, "\n## winners");
    let _ = writeln!(
        out,
        "{:<14} {:<22} {:>12} {:<22} {:>10}",
        "scenario", "winner", "makespan us", "runner-up", "margin %"
    );
    for w in &r.winners {
        let _ = writeln!(
            out,
            "{:<14} {:<22} {:>12.1} {:<22} {:>10.1}",
            w.scenario, w.strategy, w.makespan_us, w.runner_up, w.margin_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_cover_the_required_regimes() {
        let a = scenarios(7, true);
        let b = scenarios(7, true);
        assert_eq!(a.len(), 6, "at least five scenarios required");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.waves, y.waves);
        }
        let by_name = |n: &str| a.iter().find(|s| s.name == n).expect(n);
        // Heavy tail: smalls and elephants in one burst.
        let heavy = by_name("heavy-tail");
        let sizes: Vec<usize> = heavy.waves.iter().flat_map(|w| w.sizes.clone()).collect();
        assert!(sizes.iter().any(|&s| s <= SMALL_CUTOFF), "has smalls");
        assert!(sizes.iter().any(|&s| s >= 1 << 20), "has elephants");
        // Bursty: more than one wave, with real think gaps.
        let bursty = by_name("bursty");
        assert!(bursty.waves.len() > 1, "MMPP must produce waves");
        assert!(bursty.waves.iter().skip(1).all(|w| w.gap_us > 0));
        // Outage runs acked with a real down window; drift carries a
        // drift rider.
        assert!(by_name("outage").acked);
        assert!(by_name("outage").fault.is_some());
        assert!(by_name("drift").fault.unwrap().drift.is_some());
    }

    #[test]
    fn smoke_tournament_delivers_everywhere_and_the_claims_hold() {
        let r = run(2024, true);
        assert_eq!(
            r.cells.len(),
            r.strategies.len() * r.scenarios.len(),
            "full grid"
        );
        let violations = check(&r);
        assert!(violations.is_empty(), "{violations:?}\n{}", render(&r));
        // The rendered table names every strategy and scenario.
        let table = render(&r);
        for s in &r.strategies {
            assert!(table.contains(s.as_str()), "{s} missing from table");
        }
        // SRPT actually re-striped somewhere, or at least ran clean; the
        // outage cells must show recovery traffic.
        let outage_rtx: u64 = r
            .cells
            .iter()
            .filter(|c| c.scenario == "outage")
            .map(|c| c.retransmits)
            .sum();
        assert!(outage_rtx > 0, "outage never bit: {}", render(&r));
    }
}
