//! `nmad` — command-line interface to the newmadeleine-rs reproduction.
//!
//! ```text
//! nmad platform                         # show the modelled platforms
//! nmad pingpong --strategy adaptive --segments 2 [--size 8M]
//! nmad sample                           # init-time sampling tables + ratios
//! nmad figure fig4 fig7 ...             # regenerate paper figures
//! nmad burst --messages 64 --pattern mixed
//! nmad timeline --size 4K               # ASCII Gantt of one transfer
//! nmad tcp-serve [--conns 1]            # real-socket demo, prints addrs
//! nmad tcp-send <addr0> <addr1> [--size 4M]
//! ```

mod args;

use args::Args;
use bytes::Bytes;
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::platform;
use nmad_runtime_sim::sweep::{bandwidth_sizes, latency_sizes};
use nmad_runtime_sim::{run_pingpong, sample_platform, PingPongSpec};

fn main() {
    // Child-process hook for the reactor bench: with NMAD_REACTOR_CLIENT
    // set this process is a client herd, not a CLI (exits inside).
    if nmad_bench::reactor::client_main() {
        return;
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage: nmad <command> [flags]\n\
     commands:\n\
       platform                         show modelled rails and hosts\n\
       pingpong [--strategy S] [--segments N] [--size BYTES] [--platform FILE]\n\
                                        paper ping-pong (omit --size for the full sweep;\n\
                                        --platform loads a JSON rail description)\n\
       sample                           init-time sampling tables and split ratios\n\
       figure <fig2|fig3|fig4|fig5|fig6|fig7|ablate_*|three_rail> ...\n\
                                        regenerate paper figures/ablations\n\
       burst [--messages N] [--pattern mixed|alternating|large] [--small-frac F]\n\
                                        bursty-workload strategy comparison\n\
       window [--messages N] [--compute US]\n\
                                        backlog accumulation during compute phases\n\
       timeline [--strategy S] [--size BYTES] [--segments N]\n\
                                        ASCII Gantt of one transfer\n\
       datapath [--smoke] [--check] [--kernel scalar|slice16|simd]\n\
                                        copy accounting across the datapath\n\
                                        (--check exits nonzero on budget violation;\n\
                                        --kernel pins the CRC kernel for A/B runs)\n\
       cycles [--smoke] [--check]       per-packet CPU cost: checksum kernel GiB/s,\n\
                                        syscalls per packet under batched rail I/O,\n\
                                        pool-magazine hit rate (--check applies the\n\
                                        DESIGN.md §12 gates)\n\
       tcp-serve [--conns N]            real-socket receiver (prints addresses)\n\
       tcp-send <addr0> <addr1> [--size BYTES]\n\
                                        real-socket sender\n\
       faults [--strategy S] [--size BYTES] [--messages N] [--drop P] [--dup P]\n\
              [--reorder P] [--seed N] [--kill-rail R] [--down-at MS] [--up-at MS]\n\
                                        threaded transfer under fault injection;\n\
                                        prints per-rail health, timers and dwell times\n\
       trace [--strategy S] [--size BYTES] [--format chrome|jsonl|summary]\n\
             [--out FILE] [--capacity N] [--validate FILE]\n\
                                        flight-record a workload (default: the\n\
                                        bandwidth ladder) and export the packet\n\
                                        lifecycle; chrome output loads in\n\
                                        chrome://tracing / Perfetto\n\
       metrics [--strategy S] [--size BYTES] [--messages N] [--parallel|--reactor]\n\
                                        per-rail latency/size/backlog histograms,\n\
                                        syscalls/packet and pool-magazine hit rate\n\
                                        from an acked pipeline run; --parallel\n\
                                        drives the sharded pipeline and adds\n\
                                        lock-hold/outbox-depth/batch histograms\n\
                                        and per-rail worker utilization;\n\
                                        --reactor drives real sockets through the\n\
                                        epoll reactor and adds the event-loop\n\
                                        telemetry (events/wake, ready depth,\n\
                                        per-worker loop utilization)\n\
       spans [--strategy S] [--size BYTES] [--messages N]\n\
                                        per-request critical-path breakdown\n\
                                        (queue -> decide -> xfer -> ack) per\n\
                                        strategy with per-rail injection\n\
                                        occupancy (omit --strategy to compare)\n\
       top [--duration S] [--window MS] [--size BYTES]\n\
                                        live telemetry: drive the parallel fabric\n\
                                        and refresh per-window rates, latency\n\
                                        percentiles and watchdog alerts in place\n\
       calibrate [--messages N] [--size BYTES] [--factor F] [--onset-us US]\n\
                                        online recalibration under mid-run\n\
                                        bandwidth drift: live tables, per-size\n\
                                        corrections and the split-ratio history\n\
       loadgen [--seed N] [--events N] [--replay FILE]\n\
                                        preview the soak traffic mix: per-tenant\n\
                                        heavy-tailed sizes and Poisson/MMPP\n\
                                        arrival schedules (dry run, no engine);\n\
                                        --replay turns a flight-recorder JSONL\n\
                                        trace into a deterministic schedule\n\
       soak [--seed N] [--duration S] [--full] [--check] [--no-chaos]\n\
            [--window MS] [--out-timeseries FILE] [--out-verdict FILE]\n\
                                        chaos soak: multi-tenant load over the\n\
                                        parallel engine under a seeded fault\n\
                                        schedule (outages, drop storms, drift);\n\
                                        --check applies the SLO gates including\n\
                                        the watchdog detection contract;\n\
                                        --no-chaos runs clean (watchdog must\n\
                                        then stay silent); --out-* save the\n\
                                        telemetry series and machine verdict\n\
       reactor [--connections N] [--full] [--seed N] [--check]\n\
                                        readiness-driven reactor ablation: an\n\
                                        epoll echo herd on a fixed worker pool\n\
                                        plus per-I/O-thread throughput vs the\n\
                                        thread-per-rail runtime; --check applies\n\
                                        the 10k-connection gates\n\
       tournament [--seed N] [--smoke] [--check]\n\
                                        strategy-zoo tournament: every strategy\n\
                                        across six load regimes (uniform, heavy\n\
                                        tail, MMPP bursts, drift, outage, small\n\
                                        flood), ranked by makespan; writes\n\
                                        BENCH_strategies.json; --check applies\n\
                                        the zoo's claim gates\n\
     strategies: single-myri single-quadrics greedy aggregate adaptive iso static"
}

fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    Ok(match name {
        "single-myri" => StrategyKind::SingleRail(0),
        "single-quadrics" => StrategyKind::SingleRail(1),
        "greedy" => StrategyKind::Greedy,
        "aggregate" => StrategyKind::AggregateEager,
        "adaptive" => StrategyKind::AdaptiveSplit,
        "iso" => StrategyKind::IsoSplit,
        "static" => StrategyKind::StaticRoundRobin,
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.pos(0) {
        Some("platform") => cmd_platform(),
        Some("pingpong") => cmd_pingpong(&args),
        Some("sample") => cmd_sample(),
        Some("figure") => cmd_figure(&args),
        Some("burst") => cmd_burst(&args),
        Some("window") => cmd_window(&args),
        Some("timeline") => cmd_timeline(&args),
        Some("datapath") => cmd_datapath(&args),
        Some("cycles") => cmd_cycles(&args),
        Some("tcp-serve") => cmd_tcp_serve(&args),
        Some("tcp-send") => cmd_tcp_send(&args),
        Some("faults") => cmd_faults(&args),
        Some("trace") => cmd_trace(&args),
        Some("metrics") => cmd_metrics(&args),
        Some("spans") => cmd_spans(&args),
        Some("top") => cmd_top(&args),
        Some("calibrate") => cmd_calibrate(&args),
        Some("loadgen") => cmd_loadgen(&args),
        Some("soak") => cmd_soak(&args),
        Some("reactor") => cmd_reactor(&args),
        Some("tournament") => cmd_tournament(&args),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn cmd_platform() -> Result<(), String> {
    let p = platform::paper_platform();
    println!("paper platform (HCW 2007 testbed):");
    println!(
        "  host {}: memcpy {:.1} GB/s, I/O bus {:.0} MB/s, {} core(s)",
        p.host.name,
        p.host.memcpy_bandwidth / 1e9,
        p.host.bus_capacity / 1e6,
        p.host.cores
    );
    for (i, r) in p.rails.iter().enumerate() {
        println!(
            "  rail{i} {:<16} lat {:>5.2} us  link {:>6.0} MB/s  pio<{:>3}KiB rdv>={:>3}KiB",
            r.name,
            r.analytic_pio_oneway(0).as_us_f64(),
            r.link_bandwidth / 1e6,
            r.pio_threshold >> 10,
            r.rdv_threshold >> 10,
        );
    }
    println!("\nother presets: gige-tcp, sci-dolphin, myrinet2000-gm2, infiniband-4xsdr");
    for nic in [
        platform::gige(),
        platform::sci_dolphin(),
        platform::myrinet_2000_gm(),
        platform::infiniband_sdr4x(),
    ] {
        println!(
            "  {:<18} lat {:>6.2} us  link {:>6.0} MB/s",
            nic.name,
            nic.analytic_pio_oneway(0).as_us_f64(),
            nic.link_bandwidth / 1e6
        );
    }
    Ok(())
}

fn load_platform_flag(args: &Args) -> Result<nmad_model::Platform, String> {
    match args.flag("platform") {
        None => Ok(platform::paper_platform()),
        Some(path) => nmad_model::load_platform(std::path::Path::new(path)),
    }
}

fn cmd_pingpong(args: &Args) -> Result<(), String> {
    let kind = parse_strategy(args.flag("strategy").unwrap_or("adaptive"))?;
    let segments: usize = args.num("segments", 1)?;
    let plat = load_platform_flag(args)?;
    let config = EngineConfig::with_strategy(kind);
    let tables = if kind == StrategyKind::AdaptiveSplit {
        eprintln!("sampling rails (init-time, paper 3.4)...");
        Some(sample_platform(&plat))
    } else {
        None
    };
    let run_one = |size: usize| {
        let mut spec =
            PingPongSpec::new(plat.clone(), config.clone(), size).with_segments(segments);
        if let Some(t) = &tables {
            spec = spec.with_tables(t.clone());
        }
        run_pingpong(&spec)
    };
    println!("strategy {} / {} segment(s)", kind.label(), segments);
    println!("{:>10} {:>14} {:>14}", "size", "one-way (us)", "MB/s");
    if args.flag("size").is_some() {
        let size = args.size("size", 0)?;
        let r = run_one(size);
        println!(
            "{:>10} {:>14.2} {:>14.2}",
            size,
            r.one_way.as_us_f64(),
            r.bandwidth_mbs
        );
    } else {
        for &s in latency_sizes().iter().filter(|&&s| s as usize >= segments) {
            let r = run_one(s as usize);
            println!(
                "{:>10} {:>14.2} {:>14.2}",
                s,
                r.one_way.as_us_f64(),
                r.bandwidth_mbs
            );
        }
        for &s in bandwidth_sizes().iter().skip(1) {
            let r = run_one(s as usize);
            println!(
                "{:>10} {:>14.2} {:>14.2}",
                s,
                r.one_way.as_us_f64(),
                r.bandwidth_mbs
            );
        }
    }
    Ok(())
}

fn cmd_sample() -> Result<(), String> {
    let p = platform::paper_platform();
    eprintln!("running init-time sampling (per-rail ping-pong ladders)...");
    let tables = sample_platform(&p);
    println!("{:>10} {:>14} {:>14}", "size", "myri (us)", "quadrics (us)");
    for &s in tables[0].sizes() {
        println!(
            "{:>10} {:>14.2} {:>14.2}",
            s,
            tables[0].time_for(s),
            tables[1].time_for(s)
        );
    }
    println!("\nadaptive split ratios (share of bytes on Myri-10G):");
    for size in [64u64 << 10, 256 << 10, 1 << 20, 8 << 20] {
        let w = nmad_core::sampling::split_weights(&[&tables[0], &tables[1]], size);
        let frac = w[0] / (w[0] + w[1]);
        println!("  {:>8} KiB: {:>5.1}%", size >> 10, frac * 100.0);
    }
    Ok(())
}

fn cmd_figure(args: &Args) -> Result<(), String> {
    let ids = args.rest(1);
    if ids.is_empty() {
        return Err("figure: name at least one figure id".into());
    }
    for id in ids {
        let fig = match id.as_str() {
            "fig2" => nmad_bench::figures::fig2_myri(),
            "fig3" => nmad_bench::figures::fig3_quadrics(),
            "fig4" => nmad_bench::figures::fig4_greedy2(),
            "fig5" => nmad_bench::figures::fig5_greedy4(),
            "fig6" => nmad_bench::figures::fig6_aggregate(),
            "fig7" => nmad_bench::figures::fig7_split(),
            "ablate_poll" => nmad_bench::figures::ablate_poll(),
            "ablate_ratio" => nmad_bench::figures::ablate_ratio(),
            "ablate_threshold" => nmad_bench::figures::ablate_threshold(),
            "ablate_cores" => nmad_bench::figures::ablate_cores(),
            "three_rail" => nmad_bench::figures::three_rail(),
            other => return Err(format!("unknown figure '{other}'")),
        };
        println!("{}", nmad_bench::report::render_table(&fig));
    }
    Ok(())
}

fn cmd_burst(args: &Args) -> Result<(), String> {
    use nmad_bench::workload::{burst_comparison, render_burst_table, BurstPattern, BurstSpec};
    let pattern = match args.flag("pattern").unwrap_or("mixed") {
        "mixed" => BurstPattern::Mixed,
        "alternating" => BurstPattern::AlternatingLargeSmall,
        "large" => BurstPattern::UniformLarge,
        other => return Err(format!("unknown pattern '{other}'")),
    };
    let spec = BurstSpec {
        messages: args.num("messages", 64)?,
        seed: args.num("seed", 2007)?,
        small_fraction: args.num("small-frac", 0.6)?,
        pattern,
        slow_rail_first: args.has("slow-rail-first"),
    };
    let rows = burst_comparison(&spec);
    println!("{}", render_burst_table(&spec, &rows));
    Ok(())
}

fn cmd_window(args: &Args) -> Result<(), String> {
    use nmad_bench::workload::run_compute_window;
    let messages: usize = args.num("messages", 8)?;
    let compute: u64 = args.num("compute", 3)?;
    println!(
        "{:>18} {:>14} {:>10} {:>10}",
        "strategy", "makespan us", "packets", "aggregates"
    );
    for kind in [StrategyKind::Greedy, StrategyKind::AggregateEager] {
        let (t, pkts, aggs) = run_compute_window(kind, messages, compute);
        println!("{:>18} {t:>14.2} {pkts:>10} {aggs:>10}", kind.label());
    }
    Ok(())
}

fn cmd_timeline(args: &Args) -> Result<(), String> {
    use nmad_core::request::{RecvId, SendId};
    use nmad_runtime_sim::world::{AppLogic, NodeApi, SimWorld};
    use nmad_wire::reassembly::MessageAssembly;

    struct Tx(Vec<Bytes>);
    impl AppLogic for Tx {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.submit_send(0, self.0.clone());
        }
        fn on_send_complete(&mut self, _s: SendId, _api: &mut NodeApi<'_>) {}
    }
    struct Rx;
    impl AppLogic for Rx {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.post_recv(0);
        }
        fn on_recv_complete(&mut self, _r: RecvId, _m: MessageAssembly, _api: &mut NodeApi<'_>) {}
    }

    let kind = parse_strategy(args.flag("strategy").unwrap_or("greedy"))?;
    let size = args.size("size", 4 << 10)?;
    let segments: usize = args.num("segments", 2)?;
    let seg = (size / segments.max(1)).max(1);
    let payloads: Vec<Bytes> = (0..segments)
        .map(|i| Bytes::from(vec![i as u8; seg]))
        .collect();
    let plat = load_platform_flag(args)?;
    let mut w = SimWorld::new(&plat, EngineConfig::with_strategy(kind), Tx(payloads), Rx);
    w.open_conn();
    w.enable_timeline();
    w.run(5_000_000);
    println!(
        "{} / {} segment(s) x {} B:\n{}",
        kind.label(),
        segments,
        seg,
        w.timeline.as_ref().expect("enabled").render(72)
    );
    Ok(())
}

fn cmd_datapath(args: &Args) -> Result<(), String> {
    use nmad_bench::datapath;
    if let Some(name) = args.flag("kernel") {
        let k = nmad_wire::checksum::Kernel::parse(name)
            .ok_or_else(|| format!("unknown kernel '{name}' (scalar, slice16, simd)"))?;
        if !nmad_wire::checksum::set_kernel(k) {
            return Err(format!("kernel '{name}' is not available on this CPU"));
        }
        println!("crc kernel pinned: {}", k.name());
    }
    let report = datapath::run(args.has("smoke"));
    println!("{}", datapath::render(&report));
    if args.has("check") {
        let violations = datapath::check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("copy budget violated: {v}");
            }
            return Err("datapath copy budget violated".into());
        }
        println!(
            "copy budget OK: {:.1}x reduction vs legacy pipeline",
            report.reduction_factor
        );
    }
    Ok(())
}

fn cmd_cycles(args: &Args) -> Result<(), String> {
    use nmad_bench::cycles;
    let report = cycles::run(args.has("smoke"));
    println!("{}", cycles::render(&report));
    if args.has("check") {
        let violations = cycles::check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("per-packet cycles gate violated: {v}");
            }
            return Err("per-packet cycles gate violated".into());
        }
        println!(
            "cycles gates OK: {:.3} tx syscalls/pkt, {:.1}% magazine hits, {} {:.1}x vs scalar",
            report.syscalls.tx_per_packet(),
            report.magazine.hit_rate * 100.0,
            report.per_packet.fast_kernel,
            report.per_packet.scalar_ns as f64 / report.per_packet.fast_ns.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_tcp_serve(args: &Args) -> Result<(), String> {
    use nmad_transport_tcp::{listen, TcpConfig};
    let mut cfg = TcpConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    );
    cfg.conns = args.num("conns", 1)?;
    let pending = listen(cfg).map_err(|e| e.to_string())?;
    let addrs: Vec<String> = pending.addrs().iter().map(|a| a.to_string()).collect();
    println!("listening; run on the other side:");
    println!("  nmad tcp-send {} [--size 4M]", addrs.join(" "));
    let ep = pending.accept().map_err(|e| e.to_string())?;
    let conn = ep.conns()[0];
    let msg = ep
        .recv(conn)
        .wait(std::time::Duration::from_secs(600))
        .ok_or("receive timed out")?;
    println!(
        "received {} bytes in {} segment(s); rx errors: {}",
        msg.total_len(),
        msg.segments.len(),
        ep.rx_errors()
    );
    let st = ep.stats();
    println!(
        "socket shares seen by receiver: {} / {} packets",
        st.rails.first().map(|r| r.rx_packets).unwrap_or(0),
        st.rails.get(1).map(|r| r.rx_packets).unwrap_or(0)
    );
    Ok(())
}

fn cmd_tcp_send(args: &Args) -> Result<(), String> {
    use nmad_transport_tcp::{connect, TcpConfig};
    let addr_strs = args.rest(1);
    if addr_strs.is_empty() {
        return Err("tcp-send: need the addresses printed by tcp-serve".into());
    }
    let addrs: Vec<std::net::SocketAddr> = addr_strs
        .iter()
        .map(|a| a.parse().map_err(|e| format!("bad address '{a}': {e}")))
        .collect::<Result<_, String>>()?;
    let cfg = TcpConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    );
    let ep = connect(cfg, &addrs).map_err(|e| e.to_string())?;
    let size = args.size("size", 4 << 20)?;
    let payload = vec![0xABu8; size];
    let conn = ep.conns()[0];
    let ok = ep
        .send(conn, vec![Bytes::from(payload)])
        .wait(std::time::Duration::from_secs(600));
    if !ok {
        return Err("send timed out".into());
    }
    let st = ep.stats();
    println!(
        "sent {size} bytes; rdv {}, chunks {}, socket shares {:.1}% / {:.1}%",
        st.rdv_handshakes,
        st.chunks_sent,
        100.0 * st.rail_share(0),
        100.0 * st.rail_share(1)
    );
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    use nmad_transport_mem::{pair, FabricConfig, FaultSpec, RailOutage};
    use std::time::Duration;

    let kind = parse_strategy(args.flag("strategy").unwrap_or("adaptive"))?;
    let size = args.size("size", 1 << 20)?;
    let messages: usize = args.num("messages", 8)?;
    let drop_prob: f64 = args.num("drop", 0.0)?;
    let dup_prob: f64 = args.num("dup", 0.0)?;
    let reorder_prob: f64 = args.num("reorder", 0.0)?;
    let seed: u64 = args.num("seed", 42)?;

    let plat = platform::paper_platform();
    let mut engine = EngineConfig::with_strategy(kind);
    engine.acked = true;
    // Wall-clock-sized recovery timers (the defaults are tuned for
    // simulated time).  The mem fabric delivers instantly, but the
    // receiver still checksums and reassembles every byte, so the
    // first ack of a large message arrives only after real CPU time,
    // and all messages are pipelined, so the last ack waits behind
    // the whole batch; scale the initial guess with the batch size
    // (~50 MB/s floor) so clean runs don't retransmit before the
    // estimator has its first sample.
    let rto0 = 10_000_000
        + (size as u64)
            .saturating_mul(messages as u64)
            .saturating_mul(20);
    engine.health.initial_rto_ns = rto0;
    engine.health.min_rto_ns = 2_000_000;
    engine.health.max_rto_ns = rto0.saturating_mul(20).max(200_000_000);
    engine.health.probe_interval_ns = 20_000_000;
    engine.health.probe_timeout_ns = 10_000_000;

    let mut outages = Vec::new();
    if let Some(r) = args.flag("kill-rail") {
        let rail: usize = r
            .parse()
            .map_err(|_| format!("--kill-rail: cannot parse '{r}'"))?;
        if rail >= plat.rails.len() {
            return Err(format!("--kill-rail: no rail {rail}"));
        }
        let down_ms: u64 = args.num("down-at", 5)?;
        let up_ms: u64 = args.num("up-at", 500)?;
        outages.push(RailOutage {
            rail,
            down_at: Duration::from_millis(down_ms),
            up_at: Some(Duration::from_millis(up_ms)),
        });
        println!(
            "killing rail {rail} ({}) at {down_ms} ms, reviving at {up_ms} ms",
            plat.rails[rail].name
        );
    }

    let mut cfg = FabricConfig::new(plat.clone(), engine);
    cfg.faults = Some(FaultSpec {
        drop_prob,
        dup_prob,
        reorder_prob,
        seed,
        outages,
        ..FaultSpec::default()
    });

    let (a, b) = pair(cfg);
    let conn = a.conns()[0];
    println!(
        "sending {messages} x {size} B over {} with drop {:.0}% dup {:.0}% reorder {:.0}%",
        kind.label(),
        drop_prob * 100.0,
        dup_prob * 100.0,
        reorder_prob * 100.0
    );
    let start = std::time::Instant::now();
    let recvs: Vec<_> = (0..messages).map(|_| b.recv(conn)).collect();
    let sends: Vec<_> = (0..messages)
        .map(|i| a.send(conn, vec![Bytes::from(vec![i as u8; size])]))
        .collect();
    for (i, s) in sends.iter().enumerate() {
        if !s.wait_acked(Duration::from_secs(120)) {
            return Err(format!("message {i} not acked within 120 s"));
        }
    }
    for (i, r) in recvs.iter().enumerate() {
        let msg = r
            .wait(Duration::from_secs(120))
            .ok_or_else(|| format!("message {i} not delivered"))?;
        if msg.total_len() != size {
            return Err(format!(
                "message {i}: {} bytes, want {size}",
                msg.total_len()
            ));
        }
    }
    let elapsed = start.elapsed();

    let st = a.stats();
    println!(
        "\nall {messages} messages acked in {:.2} s  \
         (retransmits {}, duplicates dropped at rx {})",
        elapsed.as_secs_f64(),
        st.retransmits,
        b.stats().duplicates_dropped,
    );
    println!(
        "\n{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12} {:>9}",
        "rail",
        "tx pkts",
        "rx pkts",
        "control",
        "timeouts",
        "retx",
        "probes",
        "transitions",
        "state"
    );
    let states = a.rail_states();
    for (i, r) in st.rails.iter().enumerate() {
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12} {:>9}",
            plat.rails[i].name,
            r.packets,
            r.rx_packets,
            r.control_packets,
            r.timeouts,
            r.retransmit_packets,
            r.probes_sent,
            r.state_transitions,
            format!("{:?}", states[i]),
        );
    }
    for i in 0..plat.rails.len() {
        let hist = a.rail_history(i);
        if hist.len() > 1 {
            let path: Vec<String> = hist.iter().map(|s| format!("{s:?}")).collect();
            println!("rail {i} health path: {}", path.join(" -> "));
        }
    }

    // Adaptive-timer telemetry and per-state dwell times (how long each
    // rail spent Up / Suspect / Down / Probing over the run).
    println!(
        "\n{:<18} {:>10} {:>11} {:>10} {:>9} {:>11} {:>9} {:>11}",
        "rail", "srtt us", "rttvar us", "rto ms", "up ms", "suspect ms", "down ms", "probing ms"
    );
    for i in 0..plat.rails.len() {
        let t = a.rail_telemetry(i);
        let ms = |ns: u64| ns as f64 / 1e6;
        println!(
            "{:<18} {:>10} {:>11.1} {:>10.1} {:>9.1} {:>11.1} {:>9.1} {:>11.1}",
            plat.rails[i].name,
            t.srtt_ns
                .map_or("-".to_string(), |v| format!("{:.1}", v as f64 / 1e3)),
            t.rttvar_ns as f64 / 1e3,
            t.rto_ns as f64 / 1e6,
            ms(t.dwell_ns[0]),
            ms(t.dwell_ns[1]),
            ms(t.dwell_ns[2]),
            ms(t.dwell_ns[3]),
        );
    }
    Ok(())
}

/// Simulated workload shared by `trace` and `metrics`: a pipelined batch
/// of one-segment messages (node 0 -> node 1), flight-recorded.
fn record_workload(
    kind: StrategyKind,
    sizes: Vec<usize>,
    acked: bool,
    capacity: usize,
) -> nmad_runtime_sim::world::SimWorld<RecApp, RecApp> {
    use nmad_runtime_sim::world::SimWorld;

    let plat = platform::paper_platform();
    let mut config = EngineConfig::with_strategy(kind);
    config.acked = acked;
    let n = sizes.len();
    let mut w = SimWorld::new(&plat, config, RecApp::sender(sizes), RecApp::receiver(n));
    w.open_conn();
    if matches!(kind, StrategyKind::AdaptiveSplit) {
        w.set_tables(nmad_runtime_sim::sample_platform(&plat));
    }
    w.enable_recording(capacity);
    w.run(20_000_000);
    w
}

/// App for [`record_workload`]: sends the given sizes or posts that many
/// receives.
struct RecApp {
    sizes: Vec<usize>,
    recvs: usize,
}

impl RecApp {
    fn sender(sizes: Vec<usize>) -> Self {
        RecApp { sizes, recvs: 0 }
    }
    fn receiver(recvs: usize) -> Self {
        RecApp {
            sizes: Vec::new(),
            recvs,
        }
    }
}

impl nmad_runtime_sim::world::AppLogic for RecApp {
    fn on_start(&mut self, api: &mut nmad_runtime_sim::world::NodeApi<'_>) {
        for (i, &size) in self.sizes.iter().enumerate() {
            api.submit_send(0, vec![Bytes::from(vec![i as u8; size])]);
        }
        for _ in 0..self.recvs {
            api.post_recv(0);
        }
    }
}

fn trace_sizes(args: &Args) -> Result<Vec<usize>, String> {
    Ok(if args.flag("size").is_some() {
        vec![args.size("size", 0)?]
    } else {
        // The bandwidth ladder: every size from 32 KiB to 8 MiB, so the
        // trace shows the rendezvous track, chunking and hetero-splits.
        bandwidth_sizes().iter().map(|&s| s as usize).collect()
    })
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    use nmad_core::obs;

    if let Some(path) = args.flag("validate") {
        return validate_trace_file(std::path::Path::new(path));
    }

    let kind = parse_strategy(args.flag("strategy").unwrap_or("adaptive"))?;
    let sizes = trace_sizes(args)?;
    let capacity: usize = args.num("capacity", 65_536)?;
    let w = record_workload(kind, sizes, false, capacity);
    let events = w.merged_events();
    let dropped: u64 = (0..2)
        .map(|i| w.node(i).engine.recorder().dropped())
        .sum::<u64>()
        + w.recorder.dropped();

    let format = args.flag("format").unwrap_or("chrome");
    let rendered = match format {
        "chrome" => obs::to_chrome_trace_with_overflow(&events, dropped),
        "jsonl" => obs::to_jsonl_with_overflow(&events, dropped),
        // The sender's engine stats carry the syscall and pool-magazine
        // counters the plain event stream cannot show.
        "summary" => obs::summary_with_stats(&events, w.node(0).engine.stats()),
        other => return Err(format!("unknown format '{other}'")),
    };
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {} events ({dropped} dropped by the ring) to {path}",
                events.len()
            );
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// Check that a file holds structurally valid Chrome `trace_event` JSON:
/// it parses, has a `traceEvents` array, every event carries the required
/// keys for its phase, and duration phases are balanced (`B` matches `E`;
/// our exporter only emits complete `X` spans).
fn validate_trace_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("missing traceEvents array")?;
    let (mut begins, mut ends, mut spans, mut instants, mut meta) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or("event without ph")?;
        for key in ["name", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("'{ph}' event missing {key}"));
            }
        }
        if ph != "M" && e.get("ts").is_none() {
            return Err(format!("'{ph}' event missing ts"));
        }
        match ph {
            "X" => {
                if e.get("dur").is_none() {
                    return Err("X event missing dur".into());
                }
                spans += 1;
            }
            "B" => begins += 1,
            "E" => ends += 1,
            "i" => instants += 1,
            "M" => meta += 1,
            other => return Err(format!("unexpected phase '{other}'")),
        }
    }
    if begins != ends {
        return Err(format!("unbalanced spans: {begins} B vs {ends} E"));
    }
    if spans + instants == 0 {
        return Err("trace holds no spans or instants".into());
    }
    println!(
        "valid Chrome trace: {spans} complete spans, {instants} instants, \
         {meta} metadata, {begins} balanced B/E pairs"
    );
    Ok(())
}

fn cmd_metrics(args: &Args) -> Result<(), String> {
    let kind = parse_strategy(args.flag("strategy").unwrap_or("adaptive"))?;
    let size = args.size("size", 1 << 20)?;
    let messages: usize = args.num("messages", 8)?;
    if args.has("parallel") {
        return cmd_metrics_parallel(kind, size, messages);
    }
    if args.has("reactor") {
        return cmd_metrics_reactor(kind, size, messages);
    }
    let w = record_workload(kind, vec![size; messages], true, 4096);
    let now_ns = w.now().0 / 1_000;

    println!(
        "{} / {messages} x {size} B acked pipeline ({:.2} ms simulated)\n",
        kind.label(),
        now_ns as f64 / 1e6
    );
    for (i, node) in [(0, "sender"), (1, "receiver")] {
        let s = w.node(i).engine.stats().clone();
        println!("node {i} ({node}):");
        println!("  seg size  B  {}", s.obs.seg_size.render());
        println!("  backlog  seg {}", s.obs.backlog_depth.render());
        println!("  rto      ns  {}", s.obs.rto_ns.render());
        for (r, ro) in s.obs.rails.iter().enumerate() {
            let t = w.node(i).engine.rail_telemetry(r);
            println!(
                "  rail{r}: util {:>5.1}%  in-flight {} B  srtt {}  rttvar {:.1} us  rto {:.1} ms  state {:?}",
                100.0 * ro.utilization(now_ns),
                ro.in_flight_bytes,
                t.srtt_ns
                    .map_or("-".to_string(), |v| format!("{:.1} us", v as f64 / 1e3)),
                t.rttvar_ns as f64 / 1e3,
                t.rto_ns as f64 / 1e6,
                t.state,
            );
            println!("  rail{r} rtt ns {}", ro.latency_ns.render());
        }
        print_syscall_and_magazine_lines(&s);
    }
    let rec: u64 = (0..2)
        .map(|i| w.node(i).engine.recorder().total_recorded())
        .sum::<u64>()
        + w.recorder.total_recorded();
    println!("\nflight recorder: {rec} events recorded across both nodes + fabric");
    println!("(scheduler lock-hold/outbox/batch histograms: run with --parallel)");
    Ok(())
}

/// `metrics --parallel`: drive the in-process fabric through the sharded
/// parallel pipeline and report the scheduler's own evidence — lock-hold,
/// outbox-depth and completion-batch histograms plus a per-rail worker
/// utilization line.
fn cmd_metrics_parallel(kind: StrategyKind, size: usize, messages: usize) -> Result<(), String> {
    use nmad_transport_mem::{pair, FabricConfig};
    use std::time::{Duration, Instant};

    let plat = platform::paper_platform();
    let mut engine = EngineConfig::with_strategy(kind);
    engine.parallel = true;
    let (a, b) = pair(FabricConfig::new(plat.clone(), engine));
    let epoch = Instant::now();
    let conn = a.conns()[0];
    println!(
        "{} / {messages} x {size} B over the parallel in-process fabric\n",
        kind.label()
    );
    let recvs: Vec<_> = (0..messages).map(|_| b.recv(conn)).collect();
    let sends: Vec<_> = (0..messages)
        .map(|i| a.send(conn, vec![Bytes::from(vec![i as u8; size])]))
        .collect();
    for (i, s) in sends.iter().enumerate() {
        if !s.wait(Duration::from_secs(120)) {
            return Err(format!("message {i} not sent within 120 s"));
        }
    }
    for (i, r) in recvs.iter().enumerate() {
        if r.wait(Duration::from_secs(120)).is_none() {
            return Err(format!("message {i} not delivered"));
        }
    }
    let now_ns = epoch.elapsed().as_nanos() as u64;

    for (ep, name) in [(&a, "sender"), (&b, "receiver")] {
        let s = ep.stats();
        println!("{name}:");
        println!("  lock hold ns {}", s.obs.lock_hold_ns.render());
        println!("  outbox depth {}", s.obs.outbox_depth.render());
        println!("  batch drain  {}", s.obs.completion_batch.render());
        for (r, ro) in s.obs.rails.iter().enumerate() {
            println!(
                "  rail{r} ({}): worker util {:>5.1}%  tx pkts {}  rx pkts {}  in-flight {} B",
                plat.rails[r].name,
                100.0 * ro.utilization(now_ns),
                s.rails[r].packets,
                s.rails[r].rx_packets,
                ro.in_flight_bytes,
            );
        }
        print_syscall_and_magazine_lines(&s);
    }
    Ok(())
}

/// `metrics --reactor`: drive real sockets through the epoll reactor and
/// report the event-loop telemetry alongside the scheduler histograms —
/// events per wakeup, ready-queue depth, per-worker loop utilization,
/// and the backpressure/shed/allocation tripwires.
fn cmd_metrics_reactor(kind: StrategyKind, size: usize, messages: usize) -> Result<(), String> {
    use std::time::Duration;

    let plat = platform::paper_platform();
    let mut engine = EngineConfig::with_strategy(kind);
    engine.reactor = true;
    let (a, b) = nmad_transport_tcp::pair_localhost(nmad_transport_tcp::TcpConfig::new(
        plat.clone(),
        engine,
    ))
    .map_err(|e| format!("reactor fabric: {e}"))?;
    let conn = a.conns()[0];
    println!(
        "{} / {messages} x {size} B over the reactor TCP fabric\n",
        kind.label()
    );
    let recvs: Vec<_> = (0..messages).map(|_| b.recv(conn)).collect();
    let sends: Vec<_> = (0..messages)
        .map(|i| a.send(conn, vec![Bytes::from(vec![i as u8; size])]))
        .collect();
    for (i, s) in sends.iter().enumerate() {
        if !s.wait(Duration::from_secs(120)) {
            return Err(format!("message {i} not sent within 120 s"));
        }
    }
    for (i, r) in recvs.iter().enumerate() {
        if r.wait(Duration::from_secs(120)).is_none() {
            return Err(format!("message {i} not delivered"));
        }
    }

    for (ep, name) in [(&a, "sender"), (&b, "receiver")] {
        let s = ep.stats();
        let r = &s.reactor;
        println!(
            "{name}: {} reactor worker(s), {} connection(s) registered",
            r.workers, r.conns
        );
        println!(
            "  {} polls, {} wakeups ({} scheduler kicks), {} events ({:.1}/wake)",
            r.polls,
            r.wakeups,
            r.sched_wakes,
            r.events,
            r.mean_events_per_wake()
        );
        println!("  events/wake  {}", r.events_per_wake.render());
        println!("  ready depth  {}", r.ready_depth.render());
        for w in 0..r.workers as usize {
            println!(
                "  worker{w}: loop utilization {:>5.1}%",
                100.0 * r.worker_utilization(w)
            );
        }
        println!(
            "  backpressure: {} write stalls; sheds: {} fd-limit; tripwire: {} hot-path allocs",
            r.write_stalls, r.fd_shed, r.hot_path_allocs
        );
        println!("  lock hold ns {}", s.obs.lock_hold_ns.render());
        println!("  outbox depth {}", s.obs.outbox_depth.render());
        print_syscall_and_magazine_lines(&s);
    }
    Ok(())
}

/// The per-packet cost lines shared by both `metrics` paths: syscalls
/// per packet under batched rail I/O, and the pool-magazine hit rate
/// (how often a buffer came from the thread-local magazine instead of
/// the shared pool or a fresh allocation).
fn print_syscall_and_magazine_lines(s: &nmad_core::EngineStats) {
    let sc = &s.syscalls;
    println!(
        "  syscalls  {:.2}/pkt (tx {:.2}/pkt: {} calls/{} frames; rx {:.2}/pkt: {} calls/{} frames)",
        sc.per_packet(),
        sc.tx_per_packet(),
        sc.tx_calls,
        sc.tx_frames,
        sc.rx_per_packet(),
        sc.rx_calls,
        sc.rx_frames,
    );
    let dp = &s.datapath;
    println!(
        "  magazine  {:>5.1}% hits ({} magazine hits / {} takes, {} refills, {} flushes)",
        dp.magazine_hit_rate() * 100.0,
        dp.pool_magazine_hits,
        dp.pool_hits + dp.hot_path_allocs,
        dp.pool_magazine_refills,
        dp.pool_magazine_flushes,
    );
}

/// `nmad spans`: run the acked simulated workload per strategy and print
/// the per-request critical-path decomposition (queue -> decide -> xfer
/// -> ack) with per-rail injection occupancy. The simulated world gives
/// both nodes the same virtual clock, so the cross-actor legs (xfer,
/// ack) are exact rather than skewed by per-process epochs.
fn cmd_spans(args: &Args) -> Result<(), String> {
    let size = args.size("size", 1 << 20)?;
    let messages: usize = args.num("messages", 4)?;
    let kinds = match args.flag("strategy") {
        Some(name) => vec![parse_strategy(name)?],
        None => vec![
            StrategyKind::Greedy,
            StrategyKind::AggregateEager,
            StrategyKind::AdaptiveSplit,
        ],
    };
    println!("{messages} x {size} B acked pipeline, per-request critical paths:\n");
    for kind in kinds {
        let w = record_workload(kind, vec![size; messages], true, 65_536);
        let events = w.merged_events();
        let b = nmad_core::obs::spans::decompose(&events);
        println!("{}", nmad_core::obs::spans::render(kind.label(), &b));
    }
    Ok(())
}

/// `nmad top`: drive the parallel in-process fabric with a closed loop
/// of acked traffic and show each telemetry window as it closes —
/// per-rail rates, busy fraction, ack-latency percentiles and any
/// watchdog alerts. On a terminal the display redraws in place; piped,
/// it appends one block per window.
fn cmd_top(args: &Args) -> Result<(), String> {
    use nmad_transport_mem::{pair, FabricConfig};
    use std::io::IsTerminal;
    use std::time::{Duration, Instant};

    let duration_s: u64 = args.num("duration", 5)?;
    if duration_s == 0 {
        return Err("--duration must be at least 1 second".into());
    }
    let window_ms: u64 = args.num("window", 100)?;
    if window_ms == 0 {
        return Err("--window must be at least 1 ms".into());
    }
    let size = args.size("size", 256 << 10)?;

    let plat = platform::paper_platform();
    let mut engine = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    engine.parallel = true;
    engine.acked = true;
    // Wall-clock recovery timers (the defaults are simulated-time
    // sized), the same shape the soak harness uses.
    engine.health.initial_rto_ns = 20_000_000;
    engine.health.min_rto_ns = 5_000_000;
    engine.health.max_rto_ns = 200_000_000;
    engine.health.probe_interval_ns = 50_000_000;
    engine.health.probe_timeout_ns = 20_000_000;
    // Telemetry folds the flight recorder, so the ring must exist; a
    // 32 Ki ring comfortably outlasts one fold interval.
    engine.record_capacity = 1 << 15;
    engine.telemetry = nmad_core::TelemetryConfig {
        window_ns: window_ms.saturating_mul(1_000_000),
        windows: 512,
    };
    engine.watchdog = nmad_core::WatchdogConfig {
        enabled: true,
        ..nmad_core::WatchdogConfig::default()
    };

    let (a, b) = pair(FabricConfig::new(plat.clone(), engine));
    let conn = a.conns()[0];
    let live = std::io::stdout().is_terminal();
    let header =
        format!("nmad top: {window_ms} ms windows, {size} B acked messages, adaptive split");
    println!("{header}");
    let deadline = Instant::now() + Duration::from_secs(duration_s);
    let mut last_shown: Option<u64> = None;
    let mut alerts_shown = 0usize;
    while Instant::now() < deadline {
        // One closed-loop burst keeps the fabric busy without ever
        // outrunning the receiver.
        let recvs: Vec<_> = (0..8).map(|_| b.recv(conn)).collect();
        let sends: Vec<_> = (0..8)
            .map(|i| a.send(conn, vec![Bytes::from(vec![i as u8; size])]))
            .collect();
        for s in &sends {
            if !s.wait(Duration::from_secs(30)) {
                return Err("send stalled for 30 s".into());
            }
        }
        for r in &recvs {
            if r.wait(Duration::from_secs(30)).is_none() {
                return Err("receive stalled for 30 s".into());
            }
        }
        let Some(w) = a.telemetry_latest() else {
            continue;
        };
        if last_shown == Some(w.ordinal) {
            continue;
        }
        last_shown = Some(w.ordinal);
        if live {
            // Redraw in place: clear the screen, home the cursor.
            println!("\x1b[2J\x1b[H{header}");
        }
        print!("{}", render_top_window(&w, &plat));
        let alerts = a.alerts();
        for alert in &alerts[alerts_shown.min(alerts.len())..] {
            println!(
                "  ALERT {} window {} rail {} value {:.1} baseline {:.1}",
                alert.kind.label(),
                alert.window,
                alert.rail.map_or("-".to_string(), |r| r.to_string()),
                alert.value,
                alert.baseline
            );
        }
        if !live {
            // Piped output appends, so only print each alert once; a
            // live redraw starts from a blank screen and wants them all.
            alerts_shown = alerts.len();
        }
    }
    match a.watchdog_verdict() {
        Some(v) => println!("\nwatchdog verdict: {v}"),
        None => println!("\nwatchdog verdict: (watchdog off)"),
    }
    Ok(())
}

/// One `nmad top` refresh block: the window header plus a line per rail.
fn render_top_window(w: &nmad_core::Window, plat: &nmad_model::Platform) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let span_ns = (w.end_ns - w.start_ns).max(1);
    let dur_s = span_ns as f64 / 1e9;
    let _ = writeln!(
        out,
        "window {:>4} @ {:>8.3} s  submits {:>5}  acks {:>5}  retx {:>3}  sheds {:>3}  alerts {}",
        w.ordinal,
        w.end_ns as f64 / 1e9,
        w.submits,
        w.acks,
        w.retransmits,
        w.sheds,
        w.alerts
    );
    let q = |frac: f64| {
        w.latency
            .approx_quantile(frac)
            .map_or("-".to_string(), |v| format!("{:.0}", v as f64 / 1e3))
    };
    let _ = writeln!(
        out,
        "  ack rtt us: p50 {:>6} p99 {:>6} ({} samples)",
        q(0.5),
        q(0.99),
        w.latency.count()
    );
    for (i, r) in w.rails.iter().enumerate() {
        let name = plat.rails.get(i).map_or("?", |x| x.name);
        let _ = writeln!(
            out,
            "  rail{i} {:<14} tx {:>8.1} MB/s  rx {:>8.1} MB/s  busy {:>5.1}%  retx {:>3}  failover {:>2}  probes {:>2}",
            name,
            r.tx_bytes as f64 / 1e6 / dur_s,
            r.rx_bytes as f64 / 1e6 / dur_s,
            100.0 * r.busy_ns as f64 / span_ns as f64,
            r.retransmits,
            r.failovers,
            r.probes
        );
    }
    out
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    use nmad_runtime_sim::{AppLogic, BandwidthDrift, FaultPlan, NodeApi, SimWorld};
    use nmad_sim::{SimDuration, SimTime};

    let messages: usize = args.num("messages", 24)?;
    let size = args.size("size", 1 << 20)?;
    let factor: f64 = args.num("factor", 0.5)?;
    let onset_us: u64 = args.num("onset-us", 2_000)?;
    if !(factor > 0.0 && factor.is_finite()) {
        return Err(format!("--factor {factor} must be positive"));
    }

    /// Serial chain: the next message goes out when the previous one's
    /// injection completes, so the split ratio shows up in completion time.
    struct ChainSender {
        messages: usize,
        size: usize,
        submitted: usize,
    }
    impl ChainSender {
        fn submit_next(&mut self, api: &mut NodeApi<'_>) {
            if self.submitted < self.messages {
                let tag = self.submitted as u8;
                api.submit_send(0, vec![Bytes::from(vec![tag; self.size])]);
                self.submitted += 1;
            }
        }
    }
    impl AppLogic for ChainSender {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            self.submit_next(api);
        }
        fn on_send_complete(&mut self, _send: nmad_core::SendId, api: &mut NodeApi<'_>) {
            self.submit_next(api);
        }
    }
    struct ChainReceiver {
        messages: usize,
        delivered: usize,
    }
    impl AppLogic for ChainReceiver {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            for _ in 0..self.messages {
                api.post_recv(0);
            }
        }
        fn on_recv_complete(
            &mut self,
            _recv: nmad_core::RecvId,
            _msg: nmad_wire::reassembly::MessageAssembly,
            _api: &mut NodeApi<'_>,
        ) {
            self.delivered += 1;
        }
    }

    let plat = platform::paper_platform();
    let mut config = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    config.calibration.enabled = true;
    config.calibration.rebuild_every = 8;
    config.calibration.min_samples = 8;
    let reference = config.calibration.reference_size;
    let mut w = SimWorld::new(
        &plat,
        config,
        ChainSender {
            messages,
            size,
            submitted: 0,
        },
        ChainReceiver {
            messages,
            delivered: 0,
        },
    );
    w.open_conn();
    w.enable_recording(8192);
    w.enable_faults(FaultPlan::drift_only(
        BandwidthDrift {
            rail: 0,
            from: SimTime::from_us(onset_us),
            to: SimTime::from_us(10_000_000),
            factor,
        },
        SimDuration::from_us(50),
        SimTime::from_us(400_000),
    ));
    w.run(500_000_000);
    if w.app1().delivered != messages {
        return Err(format!(
            "pipeline stalled: {}/{} messages delivered",
            w.app1().delivered,
            messages
        ));
    }

    let engine = &w.node(0).engine;
    let cal = engine
        .calibrator()
        .ok_or_else(|| "calibration disabled".to_string())?;
    println!(
        "{} x {} B serial chain, rail 0 at {:.0}% bandwidth from {} µs ({:.2} ms simulated)",
        messages,
        size,
        factor * 100.0,
        onset_us,
        (w.now().0 / 1_000) as f64 / 1e6
    );
    println!(
        "samples {}  rebuilds {}  (cadence {}, alpha {})\n",
        cal.samples(),
        cal.rebuilds(),
        cal.config().rebuild_every,
        cal.config().alpha
    );

    println!("split-ratio history ({} B reference, permille):", reference);
    for s in cal.history() {
        println!(
            "  rebuild {:>3}  samples {:>5}  {:?}",
            s.rebuild, s.samples, s.permille
        );
    }

    println!("\nlive tables (one-way µs; correction vs seed):");
    let tables = engine.tables();
    for (r, t) in tables.iter().enumerate() {
        println!("  rail {r}:");
        for &s in cal.ladder() {
            println!(
                "    {:>9} B  {:>10.1} µs  x{:.3}",
                s,
                t.time_for(s),
                cal.correction_at(r, s)
            );
        }
    }
    Ok(())
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    use nmad_bench::loadgen::{preview, render_preview, ReplayTrace, TrafficSpec};
    if let Some(path) = args.flag("replay") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let trace = ReplayTrace::parse(&text)?;
        println!(
            "replaying {path}: {} submits / {} B over {:.3} s, {} tenant(s), {} non-submit line(s) skipped",
            trace.events.len(),
            trace.total_bytes(),
            trace.duration().as_secs_f64(),
            trace.tenants.len(),
            trace.skipped,
        );
        if trace.truncated_by > 0 {
            println!(
                "note: the recorder ring overflowed; {} events before the trace start are lost",
                trace.truncated_by
            );
        }
        print!("{}", render_preview(&trace.preview()));
        println!("\n(sizes and inter-arrival gaps come verbatim from the trace; replays are deterministic)");
        return Ok(());
    }
    let seed: u64 = args.num("seed", 20)?;
    let events: usize = args.num("events", 2_000)?;
    let spec = TrafficSpec::standard(seed);
    println!("soak traffic mix, seed {seed}, {events} events previewed per tenant:");
    print!("{}", render_preview(&preview(&spec, events)));
    println!("\n(replay any soak by passing its recorded seed: nmad soak --seed {seed})");
    Ok(())
}

fn cmd_soak(args: &Args) -> Result<(), String> {
    use nmad_bench::soak::{check, render, run, SoakSpec};
    let seed: u64 = args.num("seed", 20)?;
    let mut spec = if args.has("full") {
        SoakSpec::full(seed)
    } else {
        SoakSpec::smoke(seed)
    };
    if args.flag("duration").is_some() {
        let secs: u64 = args.num("duration", 0)?;
        if secs == 0 {
            return Err("--duration must be at least 1 second".into());
        }
        spec.duration = std::time::Duration::from_secs(secs);
    }
    if args.has("no-chaos") {
        spec.chaos = false;
    }
    if args.flag("window").is_some() {
        let ms: u64 = args.num("window", 0)?;
        if ms == 0 {
            return Err("--window must be at least 1 ms".into());
        }
        spec.telemetry_window = std::time::Duration::from_millis(ms);
    }
    eprintln!(
        "soaking for {:.0} s (seed {seed}; {})...",
        spec.duration.as_secs_f64(),
        if spec.chaos {
            "outages + drop storms + bandwidth drift mid-run"
        } else {
            "clean run, no fault injection"
        }
    );
    let report = run(&spec);
    println!("{}", render(&report));
    if let Some(path) = args.flag("out-timeseries") {
        let series = report
            .telemetry_jsonl
            .as_deref()
            .ok_or("--out-timeseries: the soak ran without telemetry windows")?;
        std::fs::write(path, series).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote {} telemetry windows to {path}",
            report.telemetry_windows
        );
    }
    if let Some(path) = args.flag("out-verdict") {
        let verdict = report
            .verdict_json
            .as_deref()
            .ok_or("--out-verdict: the soak ran without a watchdog")?;
        std::fs::write(path, verdict).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote watchdog verdict to {path}");
    }
    if args.has("check") {
        let violations = check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("soak SLO violated: {v}");
            }
            return Err("soak SLO gate violated".into());
        }
        println!(
            "soak SLO gate OK: p99 {} us, {:+.1}% decay, 0 stuck, 0 leaks",
            report.p99_us, report.decay_pct
        );
    }
    Ok(())
}

/// `nmad reactor`: the readiness-driven reactor ablation from the CLI,
/// mirroring `cargo bench --bench ablate_reactor` — an epoll echo herd
/// against the fixed worker pool plus the per-I/O-thread throughput
/// comparison. `--check` applies the gates (connection count, fd sheds,
/// p99, zero hot-path allocations, per-thread ratio).
fn cmd_reactor(args: &Args) -> Result<(), String> {
    use nmad_bench::reactor::{check, render, run, ReactorSpec};
    let seed: u64 = args.num("seed", 11)?;
    let mut spec = if args.has("full") {
        ReactorSpec::full(seed)
    } else {
        ReactorSpec::smoke(seed)
    };
    if args.flag("connections").is_some() {
        let n: usize = args.num("connections", 0)?;
        if n == 0 {
            return Err("--connections must be at least 1".into());
        }
        spec.conns = n;
    }
    eprintln!(
        "reactor ablation: {} connections x {} round trips (seed {seed})...",
        spec.conns, spec.rounds
    );
    // This binary doubles as the client herd via the NMAD_REACTOR_CLIENT
    // hook in main(), so fd-limited environments still reach the target.
    let client_exe = std::env::current_exe().ok();
    let report = run(&spec, client_exe.as_deref());
    print!("{}", render(&report));
    if args.has("check") {
        let violations = check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("reactor gate violated: {v}");
            }
            return Err("reactor gate violated".into());
        }
        if report.supported {
            println!(
                "reactor gate OK: {} conns on {} threads, p99 {} us, per-thread ratio {:.2}",
                report.scale.sustained_conns,
                report.scale.threads,
                report.scale.p99_us,
                report.perthread.per_thread_ratio()
            );
        }
    }
    Ok(())
}

fn cmd_tournament(args: &Args) -> Result<(), String> {
    use nmad_bench::tournament::{check, render, run};
    let seed: u64 = args.num("seed", 2024)?;
    let smoke = args.has("smoke");
    eprintln!(
        "strategy tournament ({} grid, seed {seed})...",
        if smoke { "smoke" } else { "full" }
    );
    let report = run(seed, smoke);
    println!("{}", render(&report));
    let bytes = serde_json::to_vec_pretty(&report).map_err(|e| e.to_string())?;
    nmad_bench::report::write_gate_json("strategies", &bytes);
    if args.has("check") {
        let violations = check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("tournament claim violated: {v}");
            }
            return Err("strategy tournament claim gate violated".into());
        }
        println!(
            "tournament claim gates OK: {} cells, {} scenarios, all deliveries complete",
            report.cells.len(),
            report.scenarios.len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_roundtrip() {
        for name in [
            "single-myri",
            "single-quadrics",
            "greedy",
            "aggregate",
            "adaptive",
            "iso",
            "static",
        ] {
            assert!(parse_strategy(name).is_ok(), "{name}");
        }
        assert!(parse_strategy("bogus").is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn platform_command_runs() {
        run(&["platform".to_string()]).unwrap();
    }

    #[test]
    fn single_point_pingpong_runs() {
        run(&[
            "pingpong".to_string(),
            "--strategy".into(),
            "greedy".into(),
            "--size".into(),
            "16K".into(),
        ])
        .unwrap();
    }

    #[test]
    fn timeline_command_runs() {
        run(&[
            "timeline".to_string(),
            "--strategy".into(),
            "greedy".into(),
            "--size".into(),
            "64K".into(),
        ])
        .unwrap();
    }

    #[test]
    fn faults_command_recovers_from_loss() {
        run(&[
            "faults".to_string(),
            "--strategy".into(),
            "greedy".into(),
            "--messages".into(),
            "4".into(),
            "--size".into(),
            "64K".into(),
            "--drop".into(),
            "0.05".into(),
            "--seed".into(),
            "7".into(),
        ])
        .unwrap();
    }

    #[test]
    fn datapath_smoke_check_passes() {
        run(&["datapath".to_string(), "--smoke".into(), "--check".into()]).unwrap();
    }

    #[test]
    fn datapath_kernel_flag_pins_and_rejects_unknown() {
        // A valid kernel name pins the CRC dispatch for the run; a bogus
        // one (or one the CPU lacks) errors before any work starts.
        run(&[
            "datapath".to_string(),
            "--smoke".into(),
            "--kernel".into(),
            "slice16".into(),
        ])
        .unwrap();
        assert!(run(&["datapath".to_string(), "--kernel".into(), "crc64".into(),]).is_err());
        // Tests share the process-global dispatch; put the fastest
        // available kernel back for whoever runs next.
        let fastest = *nmad_wire::checksum::available_kernels().last().unwrap();
        assert!(nmad_wire::checksum::set_kernel(fastest));
    }

    #[test]
    fn cycles_smoke_runs() {
        // No --check here: the kernel-speedup gates only hold under
        // optimized builds, and tests run in the debug profile. The
        // release-mode gate runs in verify.sh (ablate_cycles smoke);
        // check() itself is unit-tested against synthetic reports in
        // nmad_bench::cycles.
        run(&["cycles".to_string(), "--smoke".into()]).unwrap();
    }

    #[test]
    fn trace_command_writes_a_valid_chrome_trace() {
        let path = std::env::temp_dir().join("nmad_cli_test_trace.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&[
            "trace".to_string(),
            "--size".into(),
            "256K".into(),
            "--out".into(),
            path_s.clone(),
        ])
        .unwrap();
        run(&["trace".to_string(), "--validate".into(), path_s]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summary_shows_split_ratios() {
        // A large transfer over two idle rails must produce hetero-split
        // decision events whose summary carries the chunk ratios.
        // (Printing goes to stdout; here we regenerate the summary from
        // the same deterministic workload.)
        let w = record_workload(StrategyKind::AdaptiveSplit, vec![4 << 20], false, 65_536);
        let events = w.merged_events();
        let s = nmad_core::obs::summary(&events);
        assert!(s.contains("decide_split"), "summary:\n{s}");
        assert!(s.contains("% of split"), "summary:\n{s}");
    }

    #[test]
    fn trace_validate_rejects_garbage() {
        let path = std::env::temp_dir().join("nmad_cli_test_garbage.json");
        std::fs::write(&path, "{\"traceEvents\": 7}").unwrap();
        let err = run(&[
            "trace".to_string(),
            "--validate".into(),
            path.to_str().unwrap().into(),
        ]);
        assert!(err.is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_command_runs() {
        run(&[
            "metrics".to_string(),
            "--messages".into(),
            "2".into(),
            "--size".into(),
            "128K".into(),
        ])
        .unwrap();
    }

    #[test]
    fn calibrate_command_runs() {
        run(&["calibrate".to_string(), "--messages".into(), "12".into()]).unwrap();
        assert!(run(&["calibrate".to_string(), "--factor".into(), "-1".into(),]).is_err());
    }

    #[test]
    fn loadgen_command_previews_the_mix() {
        run(&[
            "loadgen".to_string(),
            "--seed".into(),
            "9".into(),
            "--events".into(),
            "200".into(),
        ])
        .unwrap();
    }

    #[test]
    fn soak_command_runs_a_short_soak() {
        // One second of load end to end: traffic, chaos dials, outage,
        // heal and drain all execute. The SLO gates (--check) are
        // exercised by the ablate_soak bench at a statistically
        // meaningful duration; a 1 s run's windows are too small to
        // gate on.
        run(&[
            "soak".to_string(),
            "--seed".into(),
            "3".into(),
            "--duration".into(),
            "1".into(),
        ])
        .unwrap();
        assert!(run(&["soak".to_string(), "--duration".into(), "0".into()]).is_err());
    }

    #[test]
    fn tournament_command_runs_the_smoke_grid_and_gates() {
        // The smoke grid with --check is the verify.sh gate: every
        // strategy across every scenario, deliveries complete, the three
        // zoo claims holding.
        run(&["tournament".to_string(), "--smoke".into(), "--check".into()]).unwrap();
    }

    #[test]
    fn spans_command_runs_one_strategy() {
        run(&[
            "spans".to_string(),
            "--strategy".into(),
            "greedy".into(),
            "--size".into(),
            "256K".into(),
            "--messages".into(),
            "2".into(),
        ])
        .unwrap();
    }

    #[test]
    fn top_command_runs_briefly() {
        // One second with small messages and fast windows: several
        // windows close and the final verdict prints. Tests run piped,
        // so this exercises the append path, not the ANSI redraw.
        run(&[
            "top".to_string(),
            "--duration".into(),
            "1".into(),
            "--window".into(),
            "25".into(),
            "--size".into(),
            "64K".into(),
        ])
        .unwrap();
        assert!(run(&["top".to_string(), "--duration".into(), "0".into()]).is_err());
        assert!(run(&["top".to_string(), "--window".into(), "0".into()]).is_err());
    }

    #[test]
    fn loadgen_replays_a_recorded_trace() {
        let path = std::env::temp_dir().join("nmad_cli_test_replay.jsonl");
        let trace = "\
            {\"ts_ns\":1000,\"kind\":\"submit\",\"cat\":\"api\",\"actor\":0,\"rail\":null,\"seq\":1,\"size\":4096,\"aux\":1}\n\
            {\"ts_ns\":2000,\"kind\":\"tx_post\",\"cat\":\"tx\",\"actor\":0,\"rail\":0,\"seq\":1,\"size\":4096,\"aux\":0}\n\
            {\"ts_ns\":5000,\"kind\":\"submit\",\"cat\":\"api\",\"actor\":1,\"rail\":null,\"seq\":2,\"size\":8192,\"aux\":1}\n";
        std::fs::write(&path, trace).unwrap();
        run(&[
            "loadgen".to_string(),
            "--replay".into(),
            path.to_str().unwrap().into(),
        ])
        .unwrap();
        // A trace with no submits is a usage error, not a silent no-op.
        std::fs::write(&path, "{\"ts_ns\":1,\"kind\":\"tx_post\",\"actor\":0}\n").unwrap();
        assert!(run(&[
            "loadgen".to_string(),
            "--replay".into(),
            path.to_str().unwrap().into(),
        ])
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn soak_clean_run_writes_series_and_verdict() {
        let dir = std::env::temp_dir();
        let series = dir.join("nmad_cli_test_series.jsonl");
        let verdict = dir.join("nmad_cli_test_verdict.json");
        run(&[
            "soak".to_string(),
            "--seed".into(),
            "5".into(),
            "--duration".into(),
            "1".into(),
            "--no-chaos".into(),
            "--window".into(),
            "125".into(),
            "--out-timeseries".into(),
            series.to_str().unwrap().into(),
            "--out-verdict".into(),
            verdict.to_str().unwrap().into(),
        ])
        .unwrap();
        let s = std::fs::read_to_string(&series).unwrap();
        assert!(s.lines().count() > 0, "series:\n{s}");
        assert!(s.lines().all(|l| l.starts_with('{')), "series:\n{s}");
        let v = std::fs::read_to_string(&verdict).unwrap();
        assert!(v.contains("\"clean\":true"), "verdict:\n{v}");
        std::fs::remove_file(&series).ok();
        std::fs::remove_file(&verdict).ok();
    }

    #[test]
    fn figure_requires_an_id() {
        assert!(run(&["figure".to_string()]).is_err());
        assert!(run(&["figure".to_string(), "nope".into()]).is_err());
    }
}
