//! Tiny dependency-free argument parsing: `--key value` pairs and
//! positional words.

use std::collections::HashMap;

/// Parsed command line: positionals in order, flags as key → value.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `argv` (without the program name). `--key value` becomes a
    /// flag; `--key` followed by another flag or nothing becomes
    /// `key = "true"`; everything else is positional.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name '--'".into());
                }
                let next_is_value = argv
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    out.flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    out.flags.insert(key.to_string(), "true".into());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional argument by index.
    pub fn pos(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// All positionals from an index onward.
    pub fn rest(&self, from: usize) -> &[String] {
        self.positional.get(from..).unwrap_or(&[])
    }

    /// String flag.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Parsed numeric flag with default; errors mention the flag name.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Parse a human-friendly size: `4096`, `16K`, `8M`.
    pub fn size(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => parse_size(v).ok_or_else(|| format!("--{key}: bad size '{v}'")),
        }
    }
}

/// Parse `4096` / `16K` / `16KiB` / `8M` / `2G` into bytes.
pub fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, suffix) = s.split_at(split);
    let n: usize = digits.parse().ok()?;
    let mult = match suffix.trim().to_ascii_uppercase().as_str() {
        "" | "B" => 1,
        "K" | "KB" | "KIB" => 1 << 10,
        "M" | "MB" | "MIB" => 1 << 20,
        "G" | "GB" | "GIB" => 1 << 30,
        _ => return None,
    };
    Some(n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixed_flags_and_positionals() {
        // Flags greedily take the next non-flag word as their value, so
        // positionals must precede boolean flags.
        let a = Args::parse(&argv(&[
            "pingpong",
            "extra",
            "--strategy",
            "greedy",
            "--segments",
            "2",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(a.pos(0), Some("pingpong"));
        assert_eq!(a.pos(1), Some("extra"));
        assert_eq!(a.flag("strategy"), Some("greedy"));
        assert_eq!(a.num::<usize>("segments", 1).unwrap(), 2);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn numeric_default_and_error() {
        let a = Args::parse(&argv(&["x", "--n", "abc"])).unwrap();
        assert!(a.num::<u32>("n", 5).is_err());
        let a = Args::parse(&argv(&["x"])).unwrap();
        assert_eq!(a.num::<u32>("n", 5).unwrap(), 5);
    }

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("16K"), Some(16 << 10));
        assert_eq!(parse_size("16KiB"), Some(16 << 10));
        assert_eq!(parse_size("8M"), Some(8 << 20));
        assert_eq!(parse_size("1g"), Some(1 << 30));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size("8Q"), None);
    }

    #[test]
    fn flag_without_value_before_flag() {
        let a = Args::parse(&argv(&["--a", "--b", "v"])).unwrap();
        assert_eq!(a.flag("a"), Some("true"));
        assert_eq!(a.flag("b"), Some("v"));
    }

    #[test]
    fn empty_flag_rejected() {
        assert!(Args::parse(&argv(&["--"])).is_err());
    }

    #[test]
    fn rest_slices_positionals() {
        let a = Args::parse(&argv(&["cmd", "one", "two"])).unwrap();
        assert_eq!(a.rest(1), &["one".to_string(), "two".to_string()]);
        assert!(a.rest(9).is_empty());
    }
}
