//! Structural validation of the Chrome `trace_event` exporter: the output
//! must parse as JSON, every event must carry the phase-appropriate
//! fields, and begin/end phases must balance (this exporter emits complete
//! `"X"` spans instead of `B`/`E` pairs, so both counts are zero — the
//! invariant still holds and would catch a future exporter emitting an
//! unmatched `B`).

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::obs::{to_chrome_trace, Event, EventKind};
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::{platform, RailId};
use serde_json::Value;

/// Drive a recorder-enabled engine pair through one sizeable transfer so
/// the trace contains real lifecycle events (submit, split decisions,
/// tx spans, acks).
fn recorded_events() -> Vec<Event> {
    let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
    cfg.acked = true;
    cfg.record_capacity = 8192;
    let mk = || Engine::new(cfg.clone(), platform::paper_platform().rails, vec![]);
    let (mut a, mut b) = (mk(), mk());
    a.conn_open();
    b.conn_open();
    b.post_recv(0);
    a.submit_send(0, vec![Bytes::from(vec![0xA5u8; 4 << 20])]);
    for _ in 0..1_000_000 {
        let mut progressed = false;
        for dir in 0..2 {
            let (tx, rx) = if dir == 0 {
                (&mut a, &mut b)
            } else {
                (&mut b, &mut a)
            };
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).expect("tx_done");
                    rx.on_frame(rail, &d.frame).expect("on_frame");
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Merge both sides, receiver re-stamped as actor 1 so pids differ.
    let mut all = a.recorder().events();
    all.extend(b.recorder().events().into_iter().map(|e| e.actor(1)));
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Parse a trace and return (spans, instants, begins, ends, metas).
fn audit(trace: &str) -> (usize, usize, usize, usize, usize) {
    let v: Value = serde_json::from_str(trace).expect("exporter must emit valid JSON");
    let events = v
        .get("traceEvents")
        .expect("top-level traceEvents")
        .as_array()
        .expect("traceEvents must be an array");
    let (mut x, mut i, mut b, mut e, mut m) = (0, 0, 0, 0, 0);
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .expect("every event carries ph");
        assert!(ev.get("pid").is_some(), "every event carries pid: {ev:?}");
        assert!(ev.get("tid").is_some(), "every event carries tid: {ev:?}");
        if ph != "M" {
            assert!(ev.get("ts").is_some(), "timed event missing ts: {ev:?}");
            assert!(ev.get("name").is_some(), "timed event missing name");
        }
        match ph {
            "X" => {
                assert!(ev.get("dur").is_some(), "complete span missing dur");
                x += 1;
            }
            "i" => i += 1,
            "B" => b += 1,
            "E" => e += 1,
            "M" => m += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }
    (x, i, b, e, m)
}

#[test]
fn engine_trace_is_valid_and_balanced() {
    let events = recorded_events();
    assert!(!events.is_empty(), "workload must record events");
    let (spans, instants, begins, ends, metas) = audit(&to_chrome_trace(&events));
    assert_eq!(begins, ends, "unbalanced B/E phases");
    assert!(spans > 0, "tx post/done pairs must fold into X spans");
    assert!(instants > 0, "lifecycle instants must survive export");
    assert!(metas >= 2, "process/thread names for both actors");
    assert!(
        events.iter().any(|e| e.kind == EventKind::DecideSplit),
        "a 4 MiB adaptive-split transfer must record split decisions"
    );
}

#[test]
fn unmatched_tx_events_degrade_to_instants() {
    // A TxDone whose TxPost was overwritten in the ring, and a TxPost that
    // never completed: neither may break pairing or produce invalid JSON.
    let events = vec![
        Event::new(100, EventKind::TxDone).rail(0).seq(42),
        Event::new(200, EventKind::TxPost).rail(1).seq(7).size(1024),
        Event::new(300, EventKind::Retransmit).rail(1).seq(7),
    ];
    let (spans, instants, begins, ends, _) = audit(&to_chrome_trace(&events));
    assert_eq!(spans, 0);
    assert_eq!(instants, 3, "all three must fall back to instants");
    assert_eq!((begins, ends), (0, 0));
}

#[test]
fn jsonl_lines_each_parse() {
    let events = recorded_events();
    let jsonl = nmad_core::obs::to_jsonl(&events);
    let mut kinds_seen = 0;
    for line in jsonl.lines() {
        let v: Value = serde_json::from_str(line).expect("each JSONL line is a JSON object");
        assert!(v.get("ts_ns").is_some() && v.get("kind").is_some());
        kinds_seen += 1;
    }
    assert_eq!(kinds_seen, events.len());
}
