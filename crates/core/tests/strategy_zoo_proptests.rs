//! Zoo-wide strategy property tests: every [`StrategyKind`] is driven
//! over arbitrary backlogs — empty, a single eager segment, mixed sizes,
//! rendezvous grants arriving mid-run, rails flapping Up/Down — through a
//! faithful emulation of the engine's decision loop. Whatever the
//! strategy answers, the harness holds it to the engine's contract:
//!
//! * no panics;
//! * every op is *valid* (the exact checks `Engine::execute_op` turns
//!   into `InvalidStrategyOp`: eager/aggregate segments takeable,
//!   chunks takeable, planned chunks earmarked for the asking rail);
//! * byte conservation — each segment is consumed exactly once, in
//!   pieces summing to its size;
//! * full drain — once every grant has landed and flapping has settled,
//!   a bounded number of offers empties the backlog.

use nmad_core::obs::FlightRecorder;
use nmad_core::request::{Backlog, SegKey, SegPhase};
use nmad_core::sampling::{default_ladder, PerfTable};
use nmad_core::strategy::{StrategyCtx, TxOp};
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::{platform, RailId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct ItemSpec {
    size: u64,
    rdv: bool,
    /// Round (before the drain phase) at which a rendezvous grant lands.
    grant_round: usize,
}

fn arb_item() -> impl Strategy<Value = ItemSpec> {
    (
        prop_oneof![
            1u64..64,           // tiny (aggregation candidates)
            1024u64..8192,      // PIO-sized
            8192u64..32_768,    // eager DMA
            32_768u64..262_144, // rendezvous / splitting
        ],
        any::<bool>(),
        0usize..20,
    )
        .prop_map(|(size, rdv_roll, grant_round)| {
            // Mirror the engine's track selection: large goes rendezvous,
            // small goes eager; `rdv_roll` lets mediums go either way the
            // way a multi-segment message boundary would.
            let rdv = size >= 32_768 || (size >= 8192 && rdv_roll);
            ItemSpec {
                size,
                rdv,
                grant_round,
            }
        })
}

/// Rail-health mask per flap period; always at least one rail up.
fn arb_flaps() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(1u8..=3, 1..6)
}

/// Emulate the engine's side of one decision, enforcing its validity
/// contract. Returns bytes consumed, credited per segment key.
fn apply_op(
    op: TxOp,
    rail: usize,
    backlog: &mut Backlog,
    mtu: u64,
    consumed: &mut HashMap<SegKey, u64>,
) -> Result<(), String> {
    match op {
        TxOp::Eager(key) => {
            let item = backlog.take_eager(key);
            prop_assert!(item.is_some(), "rail {rail}: eager segment not takeable");
            let item = item.unwrap();
            *consumed.entry(key).or_default() += item.size;
        }
        TxOp::Aggregate(keys) => {
            prop_assert!(!keys.is_empty(), "rail {rail}: empty aggregate");
            for key in keys {
                let item = backlog.take_eager(key);
                prop_assert!(
                    item.is_some(),
                    "rail {rail}: aggregate segment not takeable"
                );
                *consumed.entry(key).or_default() += item.unwrap().size;
            }
        }
        TxOp::Chunk { key, max_len } => {
            let tc = backlog.take_chunk(key, max_len.min(mtu));
            prop_assert!(tc.is_some(), "rail {rail}: chunk not takeable");
            let tc = tc.unwrap();
            prop_assert!(tc.len > 0, "rail {rail}: zero-length chunk");
            *consumed.entry(key).or_default() += tc.len;
        }
        TxOp::PlannedChunk => {
            let tc = backlog.take_planned(rail);
            prop_assert!(tc.is_some(), "rail {rail}: no planned chunk for rail");
            let tc = tc.unwrap();
            *consumed.entry(tc.key).or_default() += tc.len;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zoo contract (see module docs), for every strategy, over
    /// arbitrary item mixes, grant timings, and rail flap schedules.
    #[test]
    fn every_strategy_honors_the_engine_contract(
        items in prop::collection::vec(arb_item(), 0..8),
        flaps in arb_flaps(),
        flap_period in 1usize..7,
    ) {
        let rails = platform::paper_platform().rails;
        let tables: Vec<PerfTable> = rails
            .iter()
            .map(|n| PerfTable::from_analytic(n, &default_ladder()))
            .collect();
        let config = EngineConfig::default();
        let n_rails = rails.len();

        for kind in StrategyKind::zoo() {
            let mut strategy = kind.build();
            let mut backlog = Backlog::new();
            let mut obs = FlightRecorder::disabled();
            let mut consumed: HashMap<SegKey, u64> = HashMap::new();

            for (i, it) in items.iter().enumerate() {
                let key = SegKey { conn: 0, msg_id: i as u64, seg_index: 0 };
                let phase = if it.rdv { SegPhase::RdvRequested } else { SegPhase::EagerReady };
                backlog.push(key, 1, it.size, phase);
            }

            // Flapping phase: grants land, rails go up and down. Then a
            // drain phase with everything granted and all rails up.
            let flap_rounds = 20;
            let mut rail_ok = vec![true; n_rails];
            let mut now_ns = 0u64;
            for round in 0..flap_rounds + 400 {
                now_ns += 1_000;
                // Apply this round's health mask (drain phase: all up).
                let mask = if round < flap_rounds {
                    flaps[(round / flap_period) % flaps.len()]
                } else {
                    0b11
                };
                let new_ok: Vec<bool> = (0..n_rails).map(|r| mask & (1 << r) != 0).collect();
                // Emulate the engine's failover on Up -> Down transitions:
                // untaken planned chunks move to the survivors.
                let survivors: Vec<usize> =
                    (0..n_rails).filter(|&r| new_ok[r]).collect();
                for r in 0..n_rails {
                    if rail_ok[r] && !new_ok[r] && !survivors.is_empty() {
                        backlog.reassign_rail(r, &survivors);
                    }
                }
                rail_ok = new_ok;
                // Rendezvous grants arrive on their scheduled round.
                for (i, it) in items.iter().enumerate() {
                    if it.rdv && it.grant_round == round {
                        let key = SegKey { conn: 0, msg_id: i as u64, seg_index: 0 };
                        backlog.grant(key);
                    }
                }

                // Offer every healthy rail once, engine-style.
                let busy = vec![false; n_rails];
                let mut progressed = false;
                for r in 0..n_rails {
                    if !rail_ok[r] {
                        continue; // the engine never asks a down rail
                    }
                    let op = {
                        let mut ctx = StrategyCtx {
                            backlog: &mut backlog,
                            rails: &rails,
                            rail_busy: &busy,
                            rail_ok: &rail_ok,
                            tables: &tables,
                            config: &config,
                            obs: &mut obs,
                            now_ns,
                            flight: &[],
                        };
                        strategy.next_tx(RailId(r), &mut ctx)
                    };
                    if let Some(op) = op {
                        progressed = true;
                        let mtu = rails[r].mtu as u64;
                        apply_op(op, r, &mut backlog, mtu, &mut consumed)?;
                    }
                }
                if round >= flap_rounds && backlog.is_empty() {
                    break;
                }
                if round >= flap_rounds && !progressed {
                    // Quiesced with work left: the drain assert below
                    // reports it with full context.
                    break;
                }
            }

            prop_assert!(
                backlog.is_empty(),
                "{}: backlog failed to drain ({} left)",
                kind.label(),
                backlog.len()
            );
            // Byte conservation: every segment consumed exactly once, in
            // pieces summing to its size.
            for (i, it) in items.iter().enumerate() {
                let key = SegKey { conn: 0, msg_id: i as u64, seg_index: 0 };
                prop_assert_eq!(
                    consumed.get(&key).copied().unwrap_or(0),
                    it.size,
                    "{}: segment {} byte conservation violated",
                    kind.label(),
                    i
                );
            }
        }
    }
}
