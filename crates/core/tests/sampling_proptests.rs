//! Property-based tests for the sampling tables and the adaptive-split
//! solver (paper §3.4): whatever (valid) performance curves the rails
//! report, `split_weights` must hand every byte to exactly one rail,
//! never go negative, and — when the curves are genuinely invertible —
//! equalize the per-rail transfer times. Plus: the online calibrator is
//! a pure function of its sample sequence (determinism).

use nmad_core::sampling::{default_ladder, split_weights};
use nmad_core::{CalibrationConfig, OnlineCalibrator, PerfTable};
use proptest::prelude::*;

/// An arbitrary *valid* table: strictly increasing sizes, arbitrary
/// positive times (PerfTable clamps non-monotone times into plateaus).
fn arb_table() -> impl Strategy<Value = PerfTable> {
    (
        prop::collection::vec((1u64..4_000_000, 1u64..2_000_000), 1..12),
        1u64..64,
    )
        .prop_map(|(raw, stride)| {
            let mut size = 0u64;
            let points: Vec<(u64, f64)> = raw
                .iter()
                .map(|&(ds, t10)| {
                    size += ds % (1 + stride * 16_384);
                    size += 1;
                    (size, t10 as f64 / 10.0)
                })
                .collect();
            PerfTable::new(points)
        })
}

/// A latency + bandwidth model table: `time = lat + size/bw`, strictly
/// increasing, so equal-time splitting has an exact solution.
fn arb_linear_table() -> impl Strategy<Value = PerfTable> {
    (1u64..500, 50u64..20_000).prop_map(|(lat_us, bytes_per_us)| {
        let points: Vec<(u64, f64)> = default_ladder()
            .iter()
            .map(|&s| (s, lat_us as f64 + s as f64 / bytes_per_us as f64))
            .collect();
        PerfTable::new(points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants that must hold for ANY valid tables, including flat
    /// plateaus and single-point curves: weights are non-negative, finite,
    /// and sum to exactly the requested total.
    #[test]
    fn split_weights_conserve_bytes(
        tables in prop::collection::vec(arb_table(), 1..5),
        total in 0u64..(64 << 20),
    ) {
        let refs: Vec<&PerfTable> = tables.iter().collect();
        let w = split_weights(&refs, total);
        prop_assert_eq!(w.len(), tables.len());
        for &x in &w {
            prop_assert!(x.is_finite() && x >= 0.0, "weight {} out of range", x);
        }
        let sum: f64 = w.iter().sum();
        let tol = 1e-6 * total as f64 + 1e-9;
        prop_assert!(
            (sum - total as f64).abs() <= tol,
            "weights sum {} != total {}", sum, total
        );
    }

    /// With strictly increasing latency+bandwidth curves the split must
    /// equalize per-rail times: every rail that gets bytes finishes within
    /// a small tolerance of every other.
    #[test]
    fn split_weights_equalize_times(
        tables in prop::collection::vec(arb_linear_table(), 2..5),
        total in 1u64..(32 << 20),
    ) {
        let refs: Vec<&PerfTable> = tables.iter().collect();
        let w = split_weights(&refs, total);
        let times: Vec<f64> = w
            .iter()
            .zip(&refs)
            .filter(|&(&bytes, _)| bytes >= 1.0)
            .map(|(&bytes, t)| t.time_for(bytes.round() as u64))
            .collect();
        prop_assert!(!times.is_empty(), "someone must carry the bytes");
        let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = times.iter().cloned().fold(0.0, f64::max);
        // Tolerance: rounding weights to whole bytes plus the bisection
        // epsilon; a byte is worth at most 1/50 µs on the slowest curve.
        let tol = 1.0 + 0.02 * hi.max(1.0);
        prop_assert!(
            hi - lo <= tol,
            "rail times diverge: {:?} (weights {:?})", times, w
        );
    }

    /// The calibrator is deterministic: two instances fed the identical
    /// sample sequence produce identical histories and identical tables.
    #[test]
    fn calibrator_is_deterministic(
        samples in prop::collection::vec(
            (0usize..2, 1u64..(8 << 20), 1u64..5_000_000, 1u64..4),
            1..200,
        ),
    ) {
        let seed = vec![
            PerfTable::new(vec![(1, 2.0), (1 << 20, 900.0)]),
            PerfTable::new(vec![(1, 4.0), (1 << 20, 1300.0)]),
        ];
        let cfg = CalibrationConfig {
            enabled: true,
            rebuild_every: 8,
            min_samples: 8,
            ..CalibrationConfig::default()
        };
        let mk = || OnlineCalibrator::new(seed.clone(), default_ladder(), cfg.clone());
        let (mut a, mut b) = (mk(), mk());
        let mut tables_a = Vec::new();
        let mut tables_b = Vec::new();
        for &(rail, size, t10, w4) in &samples {
            let t = t10 as f64 / 10.0;
            let w = w4 as f64 / 4.0;
            a.observe(rail, size, t, w);
            b.observe(rail, size, t, w);
            if a.due() {
                tables_a = a.rebuild();
            }
            if b.due() {
                tables_b = b.rebuild();
            }
        }
        prop_assert_eq!(a.samples(), b.samples());
        prop_assert_eq!(a.rebuilds(), b.rebuilds());
        prop_assert_eq!(a.history().len(), b.history().len());
        for (x, y) in a.history().iter().zip(b.history()) {
            prop_assert_eq!(&x.permille, &y.permille);
            prop_assert_eq!(x.samples, y.samples);
        }
        prop_assert_eq!(tables_a.len(), tables_b.len());
        for (x, y) in tables_a.iter().zip(&tables_b) {
            prop_assert_eq!(x.sizes(), y.sizes());
            for &s in x.sizes() {
                prop_assert_eq!(x.time_for(s).to_bits(), y.time_for(s).to_bits());
            }
        }
    }
}
