//! Property-based tests driving the full engine pair with arbitrary
//! message patterns: whatever the strategy does (aggregate, split,
//! reorder across rails), every message must arrive intact, in order,
//! and the engines must quiesce.

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::{EngineConfig, StrategyKind};
use nmad_model::{platform, RailId};
use nmad_sim::Xoshiro256StarStar;
use nmad_wire::PacketFrame;
use proptest::prelude::*;

fn engines(kind: StrategyKind, acked: bool) -> (Engine, Engine) {
    let mut cfg = EngineConfig::with_strategy(kind);
    cfg.acked = acked;
    let mk =
        |cfg: &EngineConfig| Engine::new(cfg.clone(), platform::paper_platform().rails, vec![]);
    (mk(&cfg), mk(&cfg))
}

/// Drive both engines until neither makes progress. Returns rounds used.
fn pump(a: &mut Engine, b: &mut Engine) -> usize {
    for round in 0..100_000 {
        let mut progressed = false;
        for dir in 0..2 {
            let (tx, rx) = if dir == 0 {
                (&mut *a, &mut *b)
            } else {
                (&mut *b, &mut *a)
            };
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).expect("next_tx") {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).expect("tx_done");
                    rx.on_frame(rail, &d.frame).expect("on_frame");
                }
            }
        }
        if !progressed {
            return round;
        }
    }
    panic!("engines did not quiesce");
}

#[derive(Debug, Clone)]
struct MsgSpec {
    seg_sizes: Vec<usize>,
    seed: u64,
}

fn arb_msg() -> impl Strategy<Value = MsgSpec> {
    (
        prop::collection::vec(
            prop_oneof![
                0usize..64,           // tiny (aggregation candidates)
                1024usize..8192,      // PIO-sized
                8192usize..32_768,    // eager DMA
                32_768usize..300_000, // rendezvous / splitting
            ],
            1..5,
        ),
        any::<u64>(),
    )
        .prop_map(|(seg_sizes, seed)| MsgSpec { seg_sizes, seed })
}

fn payloads(spec: &MsgSpec) -> Vec<Bytes> {
    let mut rng = Xoshiro256StarStar::new(spec.seed);
    spec.seg_sizes
        .iter()
        .map(|&len| {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            Bytes::from(v)
        })
        .collect()
}

fn strategy_from(idx: u8) -> StrategyKind {
    match idx % 6 {
        0 => StrategyKind::SingleRail(0),
        1 => StrategyKind::SingleRailAggregating(1),
        2 => StrategyKind::Greedy,
        3 => StrategyKind::AggregateEager,
        4 => StrategyKind::IsoSplit,
        _ => StrategyKind::AdaptiveSplit,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any batch of messages, any strategy: all delivered intact and in
    /// order, engines quiesce, byte accounting is exact.
    #[test]
    fn delivery_is_exact(msgs in prop::collection::vec(arb_msg(), 1..8), strat in any::<u8>(), acked in any::<bool>()) {
        let kind = strategy_from(strat);
        let (mut tx, mut rx) = engines(kind, acked);
        let conn = tx.conn_open();
        rx.conn_open();

        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for m in &msgs {
            recvs.push(rx.post_recv(conn));
            sends.push(tx.submit_send(conn, payloads(m)));
        }
        pump(&mut tx, &mut rx);

        for (i, (send, recv)) in sends.iter().zip(&recvs).enumerate() {
            prop_assert!(tx.send_complete(*send), "{}: send {i} incomplete", kind.label());
            if acked {
                prop_assert!(tx.send_acked(*send), "{}: send {i} unacked", kind.label());
            }
            let got = rx.try_recv(*recv).expect("recv result");
            let want = payloads(&msgs[i]);
            prop_assert_eq!(&got.segments, &want, "{}: message {} corrupted", kind.label(), i);
        }
        prop_assert!(tx.is_quiescent(), "{}: sender not quiescent", kind.label());

        // Byte conservation: payload bytes sent == sum of message sizes
        // (control packets and container headers excluded by definition).
        let total: u64 = msgs
            .iter()
            .map(|m| m.seg_sizes.iter().map(|&s| s as u64).sum::<u64>())
            .sum();
        prop_assert_eq!(tx.stats().total_payload_bytes(), total);
    }

    /// Submission before any recv is posted ("unexpected messages") must
    /// deliver identically once recvs appear.
    #[test]
    fn unexpected_messages_match_later_recvs(msgs in prop::collection::vec(arb_msg(), 1..5), strat in any::<u8>()) {
        let kind = strategy_from(strat);
        let (mut tx, mut rx) = engines(kind, false);
        let conn = tx.conn_open();
        rx.conn_open();

        for m in &msgs {
            tx.submit_send(conn, payloads(m));
        }
        pump(&mut tx, &mut rx);
        // Eager traffic arrived before any recv was posted; rendezvous
        // segments are flow-controlled and only move once the matching
        // recv exists — hence the extra pump after each post.
        for (i, m) in msgs.iter().enumerate() {
            let recv = rx.post_recv(conn);
            pump(&mut tx, &mut rx);
            let got = rx.try_recv(recv).expect("unexpected queue must match");
            prop_assert_eq!(&got.segments, &payloads(m), "message {} mismatched", i);
        }
    }

    /// Interleaving two connections never mixes their payloads, whatever
    /// aggregation does across channels.
    #[test]
    fn connections_never_cross(msgs in prop::collection::vec((arb_msg(), any::<bool>()), 2..10)) {
        let (mut tx, mut rx) = engines(StrategyKind::AdaptiveSplit, false);
        let c0 = tx.conn_open();
        let c1 = tx.conn_open();
        rx.conn_open();
        rx.conn_open();

        let mut expected: Vec<(u32, Vec<Bytes>, nmad_core::RecvId)> = Vec::new();
        for (m, which) in &msgs {
            let conn = if *which { c1 } else { c0 };
            let recv = rx.post_recv(conn);
            tx.submit_send(conn, payloads(m));
            expected.push((conn, payloads(m), recv));
        }
        pump(&mut tx, &mut rx);
        for (conn, want, recv) in expected {
            let got = rx.try_recv(recv).expect("delivered");
            prop_assert_eq!(&got.segments, &want, "conn {} payload crossed", conn);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reliability under arbitrary loss: drive the pair with a random
    /// drop pattern; the retry loop must converge to exactly-once
    /// delivery with intact payloads.
    #[test]
    fn retransmission_converges_under_random_loss(
        msgs in prop::collection::vec(arb_msg(), 1..4),
        drop_seed in any::<u64>(),
        drop_prob_pct in 0u8..60,
    ) {
        let (mut tx, mut rx) = engines(StrategyKind::AggregateEager, true);
        let conn = tx.conn_open();
        rx.conn_open();
        let mut rng = nmad_sim::Xoshiro256StarStar::new(drop_seed);
        let drop_prob = f64::from(drop_prob_pct) / 100.0;

        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for m in &msgs {
            recvs.push(rx.post_recv(conn));
            sends.push(tx.submit_send(conn, payloads(m)));
        }

        // Lossy pump with periodic retransmission. Acks and grants are
        // droppable too — the protocol must survive any of it.
        let mut converged = false;
        'attempts: for _round in 0..200 {
            for _ in 0..2_000 {
                let mut progressed = false;
                for dir in 0..2 {
                    let (a, b) = if dir == 0 {
                        (&mut tx, &mut rx)
                    } else {
                        (&mut rx, &mut tx)
                    };
                    for r in 0..2 {
                        let rail = nmad_model::RailId(r);
                        if let Some(d) = a.next_tx(rail).expect("next_tx") {
                            progressed = true;
                            a.on_tx_done(rail, d.token).expect("tx_done");
                            if !rng.chance(drop_prob) {
                                b.on_frame(rail, &d.frame).expect("on_frame");
                            }
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
            if sends.iter().all(|&s| tx.send_acked(s)) {
                converged = true;
                break 'attempts;
            }
            for &s in &sends {
                tx.retransmit(s);
            }
        }
        prop_assert!(converged, "retry loop failed to converge");
        for (i, (m, recv)) in msgs.iter().zip(&recvs).enumerate() {
            let got = rx.try_recv(*recv).expect("delivered");
            prop_assert_eq!(&got.segments, &payloads(m), "message {} corrupted", i);
        }
        prop_assert_eq!(
            rx.stats().msgs_received,
            msgs.len() as u64,
            "exactly-once delivery violated"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full fault model, no manual retries: packets are dropped,
    /// duplicated, and reordered at random while a synthetic clock drives
    /// `Engine::progress`. The adaptive retransmission and rail-health
    /// machinery alone must converge to exactly-once delivery with intact
    /// payloads.
    #[test]
    fn automatic_retransmission_survives_drop_dup_reorder(
        msgs in prop::collection::vec(arb_msg(), 1..4),
        strat in any::<u8>(),
        fault_seed in any::<u64>(),
        drop_pct in 0u8..40,
        dup_pct in 0u8..30,
        reorder_pct in 0u8..30,
    ) {
        let kind = strategy_from(strat);
        let mut cfg = EngineConfig::with_strategy(kind);
        cfg.acked = true;
        // Timers sized to the synthetic 1 µs step below.
        cfg.health.initial_rto_ns = 50_000;
        cfg.health.min_rto_ns = 20_000;
        cfg.health.max_rto_ns = 500_000;
        cfg.health.probe_interval_ns = 100_000;
        cfg.health.probe_timeout_ns = 50_000;
        let mk = |cfg: &EngineConfig| {
            Engine::new(cfg.clone(), platform::paper_platform().rails, vec![])
        };
        let (mut tx, mut rx) = (mk(&cfg), mk(&cfg));
        let conn = tx.conn_open();
        rx.conn_open();
        let mut rng = Xoshiro256StarStar::new(fault_seed);
        let drop_prob = f64::from(drop_pct) / 100.0;
        let dup_prob = f64::from(dup_pct) / 100.0;
        let reorder_prob = f64::from(reorder_pct) / 100.0;

        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for m in &msgs {
            recvs.push(rx.post_recv(conn));
            sends.push(tx.submit_send(conn, payloads(m)));
        }

        // In-flight packets per destination: (delivery step, rail, frame).
        let mut inflight: [Vec<(u64, usize, PacketFrame)>; 2] = [Vec::new(), Vec::new()];
        let mut converged = false;
        for step in 0u64..400_000 {
            let now_ns = step * 1_000;
            for (dir, eng) in [&mut tx, &mut rx].into_iter().enumerate() {
                let _ = eng.progress(now_ns);
                for r in 0..2 {
                    while let Some(d) = eng.next_tx(RailId(r)).expect("next_tx") {
                        eng.on_tx_done(RailId(r), d.token).expect("tx_done");
                        let copies = if rng.chance(drop_prob) { 0 }
                            else if rng.chance(dup_prob) { 2 }
                            else { 1 };
                        for _ in 0..copies {
                            let delay = if rng.chance(reorder_prob) {
                                2 + rng.next_u64() % 30
                            } else {
                                1
                            };
                            inflight[1 - dir].push((step + delay, r, d.frame.clone()));
                        }
                    }
                }
            }
            for (dst, eng) in [&mut tx, &mut rx].into_iter().enumerate() {
                let due: Vec<(u64, usize, PacketFrame)> = {
                    let q = &mut inflight[dst];
                    let mut kept = Vec::new();
                    let mut now = Vec::new();
                    for p in q.drain(..) {
                        if p.0 <= step { now.push(p) } else { kept.push(p) }
                    }
                    *q = kept;
                    now
                };
                for (_, r, frame) in due {
                    eng.on_frame(RailId(r), &frame).expect("on_frame");
                }
            }
            if sends.iter().all(|&s| tx.send_acked(s)) {
                converged = true;
                break;
            }
        }
        prop_assert!(
            converged,
            "automatic retransmission failed to converge (drop {drop_pct}% dup {dup_pct}% reorder {reorder_pct}%)"
        );
        for (i, (m, recv)) in msgs.iter().zip(&recvs).enumerate() {
            let got = rx.try_recv(*recv).expect("delivered");
            prop_assert_eq!(&got.segments, &payloads(m), "message {} corrupted", i);
        }
        prop_assert_eq!(
            rx.stats().msgs_received,
            msgs.len() as u64,
            "exactly-once delivery violated"
        );
    }
}
