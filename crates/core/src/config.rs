//! Engine configuration.

use crate::health::HealthConfig;
use crate::obs::{TelemetryConfig, WatchdogConfig};
use crate::sampling::CalibrationConfig;
use crate::strategy::StrategyKind;

/// Overload-protection knobs: bounded submission queues, per-tenant
/// admission control, and a pool-memory watermark. Every limit defaults
/// to 0 = unlimited, so existing callers see no behaviour change; the
/// soak harness and the loadgen CLI turn them on (see DESIGN.md §11).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum depth of the parallel hub's submission queue. When the
    /// queue holds this many not-yet-drained operations,
    /// [`crate::ParallelHub::try_submit_send`] refuses with
    /// [`crate::SubmitError::WouldBlock`] instead of growing without
    /// bound. 0 disables the cap.
    pub max_submission_depth: usize,
    /// Maximum sends a single tenant (connection) may have admitted but
    /// not yet locally completed. Excess submissions are rejected with
    /// `WouldBlock`, so one misbehaving tenant cannot starve the rest.
    /// 0 disables admission control.
    pub max_tenant_inflight: usize,
    /// Watermark on outstanding pool buffers (taken and not yet
    /// reclaimed). Above it, new submissions are shed with `WouldBlock`
    /// until completions drain the pool back down. 0 disables the
    /// watermark.
    pub pool_watermark: usize,
}

impl OverloadConfig {
    /// True when every limit is disabled (the default).
    pub fn is_unlimited(&self) -> bool {
        self.max_submission_depth == 0 && self.max_tenant_inflight == 0 && self.pool_watermark == 0
    }
}

/// Knobs for the strategy-zoo additions (SRPT re-striping, idle-link
/// harvesting, latency-class routing). Defaults are conservative enough
/// that the new strategies behave sensibly on both the simulator's
/// nanosecond clock and the threaded transports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZooConfig {
    /// SRPT declares a rail a straggler when its oldest in-flight frame
    /// has aged past this multiple of the rail's predicted service time.
    pub srpt_straggle_factor: f64,
    /// Floor on the straggler age threshold (ns), so noisy early EWMA
    /// samples cannot trigger re-striping storms.
    pub srpt_straggle_floor_ns: u64,
    /// Idle-link harvesting only steals overflow while the schedulable
    /// backlog exceeds this many bytes — below it the primary strategy's
    /// placement is left alone.
    pub harvest_watermark_bytes: u64,
    /// After serving a small control-class message, the latency router
    /// keeps the pinned rail reserved for smalls for this long (ns).
    pub router_reserve_ns: u64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            srpt_straggle_factor: 4.0,
            srpt_straggle_floor_ns: 200_000,
            harvest_watermark_bytes: 64 * 1024,
            router_reserve_ns: 200_000,
        }
    }
}

impl ZooConfig {
    /// Sanity-check the straggler threshold.
    pub fn validate(&self) {
        assert!(
            self.srpt_straggle_factor >= 1.0,
            "srpt_straggle_factor {} must be at least 1.0 (below the predicted \
             completion every in-flight frame would count as straggling)",
            self.srpt_straggle_factor
        );
    }
}

/// Tunable knobs of the engine, with defaults matching the paper's setup.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Which optimizing scheduler to plug in.
    pub strategy: StrategyKind,
    /// Segments at or above this many bytes go through the rendezvous
    /// track; below, the eager track. The paper's drivers switch at 32 KiB.
    pub rdv_threshold: usize,
    /// Opportunistic aggregation only copies while the container stays
    /// under this size — the paper finds copy-and-send wins below 16 KiB
    /// (§3.1: "for small messages ... the best solution is to copy the
    /// segments into a contiguous memory area").
    pub agg_max_bytes: usize,
    /// Minimum chunk size when splitting a segment across rails, so no
    /// chunk falls back into the PIO regime (§3.4: "packs large enough in
    /// order to avoid the transfer of the different chunks with a PIO
    /// operation"). Matches the 8 KiB PIO threshold.
    pub min_chunk: usize,
    /// Whether to embed payload CRCs in packets (the threaded transport
    /// enables this; the simulator does not need it).
    pub crc: bool,
    /// Delivery acknowledgements: when set, the receiver answers every
    /// completed message with an `Ack` control packet and the sender
    /// exposes [`crate::Engine::send_acked`]. Off by default — the paper's
    /// networks are reliable; this is the hook the failure-injection tests
    /// and a future retransmission layer build on.
    pub acked: bool,
    /// Rail health tracking and adaptive retransmission timers (only
    /// active in acked mode and when the runtime drives
    /// [`crate::Engine::progress`]).
    pub health: HealthConfig,
    /// Flight-recorder capacity in events. 0 (the default) disables
    /// recording entirely; nonzero preallocates a ring of that many
    /// fixed-size records at engine construction (see
    /// [`crate::obs::FlightRecorder`]).
    pub record_capacity: usize,
    /// Online recalibration of the split tables from observed transfer
    /// times (see [`crate::OnlineCalibrator`]). Disabled by default: the
    /// engine then splits on its init-time tables forever, exactly as
    /// before.
    pub calibration: CalibrationConfig,
    /// Parallel per-rail progress engine: when set, threaded transports
    /// run one TX and one RX worker per rail around a sharded queue
    /// pipeline (see [`crate::engine::parallel`]) instead of a single
    /// worker holding the engine lock across transport I/O. Off by
    /// default — the single-threaded path stays bit-identical, which is
    /// what the deterministic simulator and the figure benches rely on.
    pub parallel: bool,
    /// Overload protection: queue bounds, per-tenant admission, pool
    /// watermark. All-zero (off) by default.
    pub overload: OverloadConfig,
    /// Injections the transmit gate may keep in flight per rail. 1 (the
    /// default) is the historical one-frame-per-rail behaviour,
    /// bit-identical for every existing caller. Deeper pipelines let
    /// the parallel scheduler queue several frames into a rail's SPSC
    /// outbox between completions, which is what allows the TX worker
    /// to drain a batch and coalesce it into a single `write_vectored`
    /// (see DESIGN.md §12). Capped in practice by the outbox capacity.
    pub rail_pipeline: usize,
    /// Continuous telemetry: fold the flight recorder into
    /// fixed-interval windowed time series (see
    /// [`crate::obs::TelemetryAggregator`]). Off by default; enabling it
    /// requires a nonzero `record_capacity`, since the aggregator tails
    /// the recorder ring.
    pub telemetry: TelemetryConfig,
    /// Online SLO watchdog over the telemetry windows (see
    /// [`crate::obs::Watchdog`]). Off by default; enabling it requires
    /// telemetry.
    pub watchdog: WatchdogConfig,
    /// Strategy-zoo knobs (SRPT re-striping, harvesting watermark,
    /// latency-router reserve window).
    pub zoo: ZooConfig,
    /// Readiness-driven reactor transport: when set, the TCP fabric
    /// multiplexes every rail/peer connection onto a fixed pool of
    /// epoll workers (default `min(cores, 4)`, see `reactor_threads`)
    /// behind the same [`crate::ParallelHub`] scheduler, instead of two
    /// blocking threads per rail. Off by default so the serial and
    /// thread-per-rail paths stay bit-identical. Implies `parallel`
    /// (the hub's queues are the completion plumbing).
    pub reactor: bool,
    /// Worker threads in the reactor pool. 0 (the default) picks
    /// `min(available cores, 4)`; nonzero pins the count (the
    /// `ablate_reactor` scaling sweep sets it explicitly).
    pub reactor_threads: usize,
    /// Upper bound, in microseconds, on one idle poll of the *serial*
    /// TCP worker (how long it parks on the work condvar before
    /// re-checking rail readability). Historically hard-coded at 50 µs;
    /// latency-sensitive deployments can tighten it, batch-oriented
    /// ones can relax it to cut idle wakeups.
    pub serial_idle_poll_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: StrategyKind::AdaptiveSplit,
            rdv_threshold: 32 * 1024,
            agg_max_bytes: 16 * 1024,
            min_chunk: 8 * 1024,
            crc: false,
            acked: false,
            health: HealthConfig::default(),
            record_capacity: 0,
            calibration: CalibrationConfig::default(),
            parallel: false,
            overload: OverloadConfig::default(),
            rail_pipeline: 1,
            telemetry: TelemetryConfig::default(),
            watchdog: WatchdogConfig::default(),
            zoo: ZooConfig::default(),
            reactor: false,
            reactor_threads: 0,
            serial_idle_poll_us: 50,
        }
    }
}

impl EngineConfig {
    /// Config with the given strategy and paper-default thresholds.
    pub fn with_strategy(strategy: StrategyKind) -> Self {
        EngineConfig {
            strategy,
            ..Default::default()
        }
    }

    /// Sanity-check threshold ordering.
    pub fn validate(&self) {
        assert!(self.rail_pipeline >= 1, "rail_pipeline must be at least 1");
        assert!(self.min_chunk > 0, "min_chunk must be positive");
        assert!(
            self.min_chunk <= self.rdv_threshold,
            "min_chunk {} must not exceed rdv_threshold {}",
            self.min_chunk,
            self.rdv_threshold
        );
        self.health.validate();
        self.calibration.validate();
        self.telemetry.validate();
        self.watchdog.validate();
        self.zoo.validate();
        assert!(
            self.serial_idle_poll_us > 0,
            "serial_idle_poll_us must be positive (the serial worker would spin)"
        );
        if self.telemetry.enabled() {
            assert!(
                self.record_capacity > 0,
                "telemetry folds the flight recorder: record_capacity must be nonzero"
            );
        }
        if self.watchdog.enabled {
            assert!(
                self.telemetry.enabled(),
                "the watchdog consumes telemetry windows: telemetry must be enabled"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        c.validate();
        assert_eq!(c.rdv_threshold, 32 * 1024);
        assert_eq!(c.agg_max_bytes, 16 * 1024);
        assert_eq!(c.min_chunk, 8 * 1024);
        assert!(c.overload.is_unlimited(), "overload limits default off");
        assert!(
            !c.reactor,
            "reactor defaults off: existing paths bit-identical"
        );
        assert_eq!(c.reactor_threads, 0, "reactor pool auto-sizes by default");
        assert_eq!(
            c.serial_idle_poll_us, 50,
            "historical serial idle-poll bound"
        );
    }

    #[test]
    #[should_panic(expected = "serial_idle_poll_us")]
    fn zero_idle_poll_rejected() {
        let c = EngineConfig {
            serial_idle_poll_us: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn with_strategy_keeps_thresholds() {
        let c = EngineConfig::with_strategy(StrategyKind::Greedy);
        assert_eq!(c.strategy, StrategyKind::Greedy);
        assert_eq!(c.rdv_threshold, 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "record_capacity")]
    fn telemetry_without_recorder_rejected() {
        let c = EngineConfig {
            telemetry: TelemetryConfig {
                window_ns: 1_000_000,
                windows: 8,
            },
            record_capacity: 0,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn watchdog_without_telemetry_rejected() {
        let c = EngineConfig {
            watchdog: WatchdogConfig {
                enabled: true,
                ..Default::default()
            },
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn telemetry_with_recorder_validates() {
        let c = EngineConfig {
            telemetry: TelemetryConfig {
                window_ns: 1_000_000,
                windows: 8,
            },
            watchdog: WatchdogConfig {
                enabled: true,
                ..Default::default()
            },
            record_capacity: 1024,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min_chunk")]
    fn bad_thresholds_rejected() {
        let c = EngineConfig {
            min_chunk: 64 * 1024,
            rdv_threshold: 32 * 1024,
            ..Default::default()
        };
        c.validate();
    }
}
