//! Single-rail strategy — the reference curves of Figures 2 and 3.
//!
//! All traffic goes to one designated rail. With `aggregate` enabled it
//! performs the *opportunistic aggregation* of §3.1: whenever more than one
//! small segment is waiting when the NIC becomes idle, they are copied into
//! one contiguous packet ("the best solution is to copy the segments into a
//! contiguous memory area and to send them as a single chunk").

use nmad_model::RailId;

use super::{collect_aggregation_batch, Strategy, StrategyCtx, TxOp};

/// See module docs.
#[derive(Debug)]
pub struct SingleRail {
    rail: RailId,
    aggregate: bool,
}

impl SingleRail {
    /// Pin traffic to `rail`; `aggregate` enables opportunistic
    /// aggregation of waiting small segments.
    pub fn new(rail: RailId, aggregate: bool) -> Self {
        SingleRail { rail, aggregate }
    }

    /// The pinned rail.
    pub fn rail(&self) -> RailId {
        self.rail
    }
}

impl Strategy for SingleRail {
    fn name(&self) -> &'static str {
        if self.aggregate {
            "single-rail+agg"
        } else {
            "single-rail"
        }
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        if rail != self.rail && ctx.rail_ok(self.rail) {
            return None; // other rails stay silent while ours is healthy
        }
        // Failover: when the pinned rail is out of service, whichever
        // healthy rail asks serves the backlog instead.
        // Granted large segments first (they were submitted earlier or the
        // handshake would not have completed): consume sequentially, whole
        // remainder in one chunk — a single rail gains nothing from
        // splitting.
        if let Some(item) = ctx.backlog.granted_items().next() {
            let key = item.key;
            let max_len = ctx.rails[rail.0].mtu as u64;
            return Some(TxOp::Chunk { key, max_len });
        }
        if self.aggregate {
            let batch = collect_aggregation_batch(ctx);
            match batch.len() {
                0 => None,
                1 => Some(TxOp::Eager(batch[0])),
                _ => Some(TxOp::Aggregate(batch)),
            }
        } else {
            ctx.backlog.eager_items().next().map(|i| TxOp::Eager(i.key))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn ctx_parts() -> (Vec<nmad_model::NicModel>, Vec<PerfTable>, EngineConfig) {
        let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
        let tables = rails
            .iter()
            .map(|n| PerfTable::from_analytic(n, &default_ladder()))
            .collect();
        (rails, tables, EngineConfig::default())
    }

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    #[test]
    fn ignores_other_rails() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 1, 100, SegPhase::EagerReady);
        let mut s = SingleRail::new(RailId(0), false);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(s.next_tx(RailId(1), &mut ctx), None);
        assert!(s.next_tx(RailId(0), &mut ctx).is_some());
    }

    #[test]
    fn without_aggregation_sends_one_segment_at_a_time() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        backlog.push(key(1, 1), 2, 100, SegPhase::EagerReady);
        let mut s = SingleRail::new(RailId(0), false);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(s.next_tx(RailId(0), &mut ctx), Some(TxOp::Eager(key(1, 0))));
    }

    #[test]
    fn aggregates_waiting_smalls() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        backlog.push(key(1, 1), 2, 100, SegPhase::EagerReady);
        let mut s = SingleRail::new(RailId(0), true);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(
            s.next_tx(RailId(0), &mut ctx),
            Some(TxOp::Aggregate(vec![key(1, 0), key(1, 1)]))
        );
    }

    #[test]
    fn single_waiting_segment_not_wrapped_in_container() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 1, 100, SegPhase::EagerReady);
        let mut s = SingleRail::new(RailId(0), true);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(s.next_tx(RailId(0), &mut ctx), Some(TxOp::Eager(key(1, 0))));
    }

    #[test]
    fn aggregation_respects_size_cap() {
        let (rails, tables, config) = ctx_parts();
        let cap = config.agg_max_bytes as u64;
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 1, cap - 100, SegPhase::EagerReady);
        backlog.push(key(2, 0), 1, 500, SegPhase::EagerReady); // would exceed cap
        let mut s = SingleRail::new(RailId(0), true);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        // Only the first fits: a lone segment ships as plain eager.
        assert_eq!(s.next_tx(RailId(0), &mut ctx), Some(TxOp::Eager(key(1, 0))));
    }

    #[test]
    fn granted_segment_takes_priority() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        backlog.grant(key(1, 0));
        backlog.push(key(2, 0), 1, 100, SegPhase::EagerReady);
        let mut s = SingleRail::new(RailId(0), true);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        match s.next_tx(RailId(0), &mut ctx) {
            Some(TxOp::Chunk { key: k, .. }) => assert_eq!(k, key(1, 0)),
            other => panic!("expected chunk, got {other:?}"),
        }
    }

    #[test]
    fn empty_backlog_returns_none() {
        let (rails, tables, config) = ctx_parts();
        let mut backlog = Backlog::new();
        let mut s = SingleRail::new(RailId(0), true);
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(s.next_tx(RailId(0), &mut ctx), None);
    }
}
