//! Packet stripping with adaptive threshold — §3.4 of the paper (Figure 7),
//! plus the 50/50 "iso-split" reference curve.
//!
//! The paper's final, combined strategy: "massively aggregate the small
//! messages, favor the sending of the resulting message over Quadrics,
//! split the large ones following some previously processed ratios when
//! both NICs are available and if not, send them over the first free one."
//!
//! Splitting is decided *just in time*: when an idle rail first touches a
//! granted segment, the strategy looks at which rails are idle right now.
//! Two or more idle → compute a split plan over them (byte shares from the
//! init-time sampling tables, or equal shares in iso mode) and earmark one
//! chunk per rail; each rail picks up its chunk as the engine asks it.
//! Only one rail idle → the segment goes whole onto that rail.

use nmad_model::RailId;
use nmad_wire::split::SplitPlan;

use super::aggregate_eager::AggregateEager;
use super::{Strategy, StrategyCtx, TxOp};
use crate::obs::{Event, EventKind};
use crate::request::PlannedChunk;
use crate::sampling::split_weights;

/// How chunk sizes are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitMode {
    /// Byte shares from the sampled performance tables (§3.4: transfer
    /// times equalized across rails).
    Sampled,
    /// Equal shares — the "iso-splitted" reference of Figure 7.
    Iso,
    /// A fixed fraction (permille of the bytes) for the first idle rail,
    /// the rest spread equally over the others. Used by the ratio-
    /// sensitivity ablation bench.
    Fixed(u16),
}

/// See module docs.
#[derive(Debug)]
pub struct AdaptiveSplit {
    mode: SplitMode,
}

impl AdaptiveSplit {
    /// New splitting strategy.
    pub fn new(mode: SplitMode) -> Self {
        AdaptiveSplit { mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> SplitMode {
        self.mode
    }
}

impl Strategy for AdaptiveSplit {
    fn name(&self) -> &'static str {
        match self.mode {
            SplitMode::Sampled => "adaptive-split",
            SplitMode::Iso => "iso-split",
            SplitMode::Fixed(_) => "fixed-split",
        }
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        // 1. A chunk already earmarked for this rail by an earlier plan.
        let has_planned = ctx.backlog.granted_items().any(|i| {
            i.plan
                .as_ref()
                .is_some_and(|p| p.iter().any(|c| !c.taken && c.rail == rail.0))
        });
        if has_planned {
            return Some(TxOp::PlannedChunk);
        }

        // 2. First granted segment without a plan: split or send whole.
        let first_unplanned = ctx
            .backlog
            .granted_items()
            .find(|i| i.plan.is_none())
            .map(|i| (i.key, i.next_offset, i.remaining()));
        if let Some((key, next_offset, remaining)) = first_unplanned {
            let idle = ctx.idle_rails();
            let min_chunk = ctx.config.min_chunk as u64;
            if idle.len() >= 2 && remaining >= 2 * min_chunk {
                let weights: Vec<f64> = match self.mode {
                    SplitMode::Iso => vec![1.0; idle.len()],
                    SplitMode::Sampled => {
                        let tables: Vec<&crate::sampling::PerfTable> =
                            idle.iter().map(|r| &ctx.tables[r.0]).collect();
                        split_weights(&tables, remaining)
                    }
                    SplitMode::Fixed(permille) => {
                        let f = f64::from(permille.min(1000)) / 1000.0;
                        let rest = (1.0 - f) / (idle.len() - 1) as f64;
                        idle.iter()
                            .enumerate()
                            .map(|(i, _)| if i == 0 { f } else { rest })
                            .collect()
                    }
                };
                if weights.iter().sum::<f64>() > 0.0 {
                    let plan = SplitPlan::by_ratio(remaining, &weights, min_chunk);
                    let chunks: Vec<PlannedChunk> = plan
                        .chunks()
                        .iter()
                        .map(|c| PlannedChunk {
                            rail: idle[c.rail].0,
                            offset: next_offset + c.offset,
                            len: c.len,
                            taken: false,
                        })
                        .collect();
                    let mine = chunks.iter().any(|c| c.rail == rail.0);
                    if ctx.obs.is_enabled() {
                        // One event per planned chunk, ratio in permille of
                        // the bytes being split (aux), at plan time — the
                        // engine only sees chunks one at a time later.
                        for c in &chunks {
                            let permille = c
                                .len
                                .saturating_mul(1000)
                                .checked_div(remaining)
                                .unwrap_or(0);
                            ctx.obs.record(
                                Event::new(ctx.now_ns, EventKind::DecideSplit)
                                    .rail(c.rail)
                                    .seq(key.msg_id)
                                    .size(c.len)
                                    .aux(permille),
                            );
                        }
                    }
                    let ok = ctx.backlog.set_plan(key, chunks);
                    debug_assert!(ok, "plan must cover the remainder");
                    if mine {
                        return Some(TxOp::PlannedChunk);
                    }
                    // This rail contributes nothing (too slow for the
                    // remaining bytes); fall through to eager work.
                } else {
                    return Some(TxOp::Chunk {
                        key,
                        max_len: ctx.rails[rail.0].mtu as u64,
                    });
                }
            } else {
                // "If not [both available], send them over the first free
                // one" — but in bounded chunks, not the whole remainder:
                // the rail frees up again soon, and if another rail has
                // become idle by then, the next decision can split what is
                // left. (Sending everything would pin a large segment to
                // whichever rail happened to free first — possibly the
                // slowest one.)
                let cap = (remaining / 4)
                    .max(2 * min_chunk)
                    .min(ctx.rails[rail.0].mtu as u64);
                return Some(TxOp::Chunk { key, max_len: cap });
            }
        }

        // 3. Small messages: aggregate onto the lowest-latency rail.
        AggregateEager::eager_op(rail, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
    }

    impl Fixture {
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: &[true, true],
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: 0,
                flight: &[],
            }
        }

        fn grant_large(&mut self, k: SegKey, size: u64) {
            self.backlog.push(k, 1, size, SegPhase::RdvRequested);
            self.backlog.grant(k);
        }
    }

    #[test]
    fn splits_when_both_rails_idle() {
        let mut f = Fixture::new();
        f.grant_large(key(1, 0), 8 << 20);
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        // A plan now exists; verify the shares: Myri carries the major part.
        let tc0 = f.backlog.take_planned(0).unwrap();
        let tc1 = f.backlog.take_planned(1).unwrap();
        assert_eq!(tc0.key, key(1, 0));
        assert_eq!(tc1.key, key(1, 0));
        let (len0, len1) = (tc0.len, tc1.len);
        assert_eq!(len0 + len1, 8 << 20);
        assert!(
            len0 > len1,
            "Myri must carry the major part: {len0} vs {len1}"
        );
        let frac = len0 as f64 / (8u64 << 20) as f64;
        assert!((0.52..0.68).contains(&frac), "myri fraction {frac}");
    }

    #[test]
    fn iso_mode_splits_evenly() {
        let mut f = Fixture::new();
        f.grant_large(key(1, 0), 8 << 20);
        let mut s = AdaptiveSplit::new(SplitMode::Iso);
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        let len0 = f.backlog.take_planned(0).unwrap().len;
        let len1 = f.backlog.take_planned(1).unwrap().len;
        assert!(len0.abs_diff(len1) <= 1, "iso halves: {len0} vs {len1}");
    }

    #[test]
    fn bounded_chunk_when_other_rail_busy() {
        let mut f = Fixture::new();
        f.grant_large(key(1, 0), 8 << 20);
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let quadrics_busy = [false, true];
        match s.next_tx(RailId(0), &mut f.ctx(&quadrics_busy)) {
            Some(TxOp::Chunk { key: k, max_len }) => {
                assert_eq!(k, key(1, 0));
                // A quarter of the remainder: the rail frees soon so a
                // later decision can split the rest across idle rails.
                assert_eq!(max_len, (8 << 20) / 4);
            }
            other => panic!("expected bounded chunk, got {other:?}"),
        }
    }

    #[test]
    fn small_remainder_not_split() {
        let mut f = Fixture::new();
        // Below 2 * min_chunk: splitting would create PIO-sized fragments.
        f.grant_large(key(1, 0), (2 * f.config.min_chunk - 1) as u64);
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let both_idle = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&both_idle)) {
            Some(TxOp::Chunk { .. }) => {}
            other => panic!("expected whole chunk, got {other:?}"),
        }
    }

    #[test]
    fn second_rail_picks_up_its_planned_chunk() {
        let mut f = Fixture::new();
        f.grant_large(key(1, 0), 8 << 20);
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        // Engine consumes rail 0's chunk.
        f.backlog.take_planned(0).unwrap();
        // Rail 1 finds its earmarked chunk.
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
    }

    #[test]
    fn smalls_still_aggregate_on_fast_rail() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 2, 64, SegPhase::EagerReady);
        f.backlog.push(key(1, 1), 2, 64, SegPhase::EagerReady);
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let both_idle = [false, false];
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&both_idle)), None);
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Aggregate(vec![key(1, 0), key(1, 1)]))
        );
    }

    #[test]
    fn three_rails_split_three_ways() {
        let rails = vec![
            platform::myri_10g(),
            platform::quadrics_qm500(),
            platform::sci_dolphin(),
        ];
        let tables: Vec<PerfTable> = rails
            .iter()
            .map(|n| PerfTable::from_analytic(n, &default_ladder()))
            .collect();
        let config = EngineConfig::default();
        let mut backlog = Backlog::new();
        backlog.push(key(1, 0), 1, 8 << 20, SegPhase::RdvRequested);
        backlog.grant(key(1, 0));
        let mut s = AdaptiveSplit::new(SplitMode::Sampled);
        let busy = [false, false, false];
        let mut obs = FlightRecorder::disabled();
        let mut ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &busy,
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(s.next_tx(RailId(0), &mut ctx), Some(TxOp::PlannedChunk));
        let l0 = backlog.take_planned(0).unwrap().len;
        let l1 = backlog.take_planned(1).unwrap().len;
        let l2 = backlog.take_planned(2).unwrap().len;
        assert_eq!(l0 + l1 + l2, 8 << 20);
        assert!(l0 > l1 && l1 > l2, "bandwidth ordering: {l0} {l1} {l2}");
    }
}
