//! Idle-link harvesting — a wrapper strategy after FlexLink (see
//! PAPERS.md).
//!
//! Runs any primary strategy unchanged. Only when the primary leaves a
//! rail idle *and* the schedulable backlog exceeds a watermark does the
//! idle rail harvest overflow work the primary reserved for somewhere
//! else: a bounded chunk of a granted segment, or a batch of the small
//! messages the primary was holding for its preferred low-latency rail.
//! Below the watermark the primary's placement is left alone — FlexLink's
//! observation is that an idle link only pays for itself once the primary
//! path is saturated, and stealing earlier just moves latency-sensitive
//! traffic onto the slow link for nothing.
//!
//! The watermark lives in [`crate::config::ZooConfig::harvest_watermark_bytes`].

use nmad_model::RailId;

use super::{collect_aggregation_batch_below, Strategy, StrategyCtx, TxOp};

/// See module docs.
pub struct IdleHarvest {
    primary: Box<dyn Strategy>,
}

impl IdleHarvest {
    /// Wrap `primary` with idle-link harvesting.
    pub fn new(primary: Box<dyn Strategy>) -> Self {
        IdleHarvest { primary }
    }
}

impl Strategy for IdleHarvest {
    fn name(&self) -> &'static str {
        "idle-harvest"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        if let Some(op) = self.primary.next_tx(rail, ctx) {
            return Some(op);
        }
        // The primary left this rail idle. Harvest only above the
        // watermark: schedulable bytes the primary has not yet placed
        // anywhere (eager segments plus unplanned granted remainders).
        let pressure: u64 = ctx.backlog.eager_bytes()
            + ctx
                .backlog
                .granted_items()
                .filter(|i| i.plan.is_none())
                .map(|i| i.remaining())
                .sum::<u64>();
        if pressure <= ctx.config.zoo.harvest_watermark_bytes {
            return None;
        }
        let min_chunk = ctx.config.min_chunk as u64;
        // Overflow bulk first: a bounded chunk, so the primary can still
        // split the rest once its preferred rails free up.
        let granted = ctx
            .backlog
            .granted_items()
            .find(|i| i.plan.is_none())
            .map(|i| (i.key, i.remaining()));
        if let Some((key, remaining)) = granted {
            let cap = (remaining / 4)
                .max(2 * min_chunk)
                .min(ctx.rails[rail.0].mtu as u64);
            return Some(TxOp::Chunk { key, max_len: cap });
        }
        // Otherwise steal a batch of the smalls the primary reserved for
        // its low-latency rail — under this much pressure that rail needs
        // the help.
        let batch = collect_aggregation_batch_below(ctx, min_chunk);
        match batch.len() {
            0 => None,
            1 => Some(TxOp::Eager(batch[0])),
            _ => Some(TxOp::Aggregate(batch)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use crate::strategy::adaptive_split::{AdaptiveSplit, SplitMode};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
    }

    impl Fixture {
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: &[true, true],
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: 0,
                flight: &[],
            }
        }
    }

    fn harvest() -> IdleHarvest {
        IdleHarvest::new(Box::new(AdaptiveSplit::new(SplitMode::Sampled)))
    }

    #[test]
    fn below_watermark_primary_placement_respected() {
        let mut f = Fixture::new();
        // A handful of smalls: AdaptiveSplit reserves them for the
        // low-latency rail (rail 1 = Quadrics) and leaves rail 0 idle.
        // Total pressure is far below the watermark, so rail 0 must NOT
        // steal them.
        for m in 0..4 {
            f.backlog.push(key(m, 0), 1, 64, SegPhase::EagerReady);
        }
        let mut s = harvest();
        let both_idle = [false, false];
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&both_idle)), None);
        // The reserved rail still gets its batch.
        assert!(matches!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Aggregate(_))
        ));
    }

    #[test]
    fn above_watermark_idle_rail_steals_smalls() {
        let mut f = Fixture::new();
        // Flood of 4 KiB smalls: pressure well above the 64 KiB
        // watermark. The primary still reserves them for rail 1; the
        // wrapper lets idle rail 0 harvest a batch.
        for m in 0..64 {
            f.backlog.push(key(m, 0), 1, 4096, SegPhase::EagerReady);
        }
        let mut s = harvest();
        let both_idle = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&both_idle)) {
            Some(TxOp::Aggregate(keys)) => assert!(!keys.is_empty()),
            other => panic!("expected harvested batch, got {other:?}"),
        }
    }

    #[test]
    fn passes_primary_decisions_through() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(0, 0), 1, 8 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        let mut s = harvest();
        let both_idle = [false, false];
        // The primary splits the large segment; the wrapper must not
        // interfere.
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        assert!(f.backlog.take_planned(0).is_some());
        assert!(f.backlog.take_planned(1).is_some());
    }
}
