//! Greedy balancing — §3.2 of the paper (Figures 4 and 5).
//!
//! "Each time a NIC becomes idle, the strategy code is invoked and simply
//! sends the first available segment (if any) on the corresponding
//! network." No aggregation, no splitting: a granted large segment is
//! consumed whole by whichever rail asks first, and waiting small segments
//! are handed out one per idle NIC — which is exactly why this strategy
//! only pays off above the PIO threshold.

use nmad_model::RailId;

use super::{Strategy, StrategyCtx, TxOp};

/// See module docs.
#[derive(Debug, Default)]
pub struct Greedy;

impl Greedy {
    /// New greedy strategy.
    pub fn new() -> Self {
        Greedy
    }
}

impl Strategy for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        // "First available segment": oldest schedulable backlog entry,
        // whether eager or granted.
        let first_eager = ctx
            .backlog
            .eager_items()
            .next()
            .map(|i| (i.submit_seq, i.key));
        let first_granted = ctx
            .backlog
            .granted_items()
            .next()
            .map(|i| (i.submit_seq, i.key));
        match (first_eager, first_granted) {
            (Some((es, ekey)), Some((gs, gkey))) => {
                if es < gs {
                    Some(TxOp::Eager(ekey))
                } else {
                    Some(TxOp::Chunk {
                        key: gkey,
                        max_len: ctx.rails[rail.0].mtu as u64,
                    })
                }
            }
            (Some((_, ekey)), None) => Some(TxOp::Eager(ekey)),
            (None, Some((_, gkey))) => Some(TxOp::Chunk {
                key: gkey,
                max_len: ctx.rails[rail.0].mtu as u64,
            }),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
    }

    impl Fixture {
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: &[true, true],
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: 0,
                flight: &[],
            }
        }
    }

    #[test]
    fn any_idle_rail_gets_first_segment() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        f.backlog.push(key(1, 1), 2, 100, SegPhase::EagerReady);
        let mut s = Greedy::new();
        let busy = [false, false];
        // Rail 1 asks first and gets the first segment; rail 0 the second.
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(1, 0)))
        );
        // Simulate engine consuming it.
        f.backlog.take_eager(key(1, 0)).unwrap();
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(1, 1)))
        );
    }

    #[test]
    fn submit_order_decides_between_eager_and_granted() {
        let mut f = Fixture::new();
        // Granted large segment submitted first, eager second.
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        f.backlog.push(key(2, 0), 1, 100, SegPhase::EagerReady);
        let mut s = Greedy::new();
        let busy = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&busy)) {
            Some(TxOp::Chunk { key: k, .. }) => assert_eq!(k, key(1, 0)),
            other => panic!("expected oldest (granted) first, got {other:?}"),
        }
    }

    #[test]
    fn eager_submitted_first_wins() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 1, 100, SegPhase::EagerReady);
        f.backlog
            .push(key(2, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(2, 0));
        let mut s = Greedy::new();
        let busy = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(1, 0)))
        );
    }

    #[test]
    fn chunk_max_len_is_rail_mtu() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        let mtu = f.rails[1].mtu as u64;
        let mut s = Greedy::new();
        let busy = [false, false];
        match s.next_tx(RailId(1), &mut f.ctx(&busy)) {
            Some(TxOp::Chunk { max_len, .. }) => assert_eq!(max_len, mtu),
            other => panic!("expected chunk, got {other:?}"),
        }
    }

    #[test]
    fn rdv_waiting_segment_not_schedulable() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        let mut s = Greedy::new();
        let busy = [false, false];
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&busy)), None);
    }

    #[test]
    fn empty_backlog_returns_none() {
        let mut f = Fixture::new();
        let mut s = Greedy::new();
        let busy = [false, false];
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&busy)), None);
    }
}
