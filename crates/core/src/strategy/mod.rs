//! Pluggable optimizing schedulers ("strategies", paper §2–3).
//!
//! A strategy is consulted exactly when a rail becomes idle and decides
//! which waiting work that rail should carry next — the paper's
//! "just-in-time" scheduling. Strategies see the backlog and per-rail
//! capabilities through [`StrategyCtx`], and answer with a [`TxOp`]; the
//! engine turns the op into a wire packet and does all bookkeeping.
//!
//! The implementations mirror the paper's incremental development:
//!
//! | Module | Paper section | Policy |
//! |---|---|---|
//! | [`single_rail`] | §3.1 (Figs 2–3) | everything on one rail, optional opportunistic aggregation |
//! | [`greedy`] | §3.2 (Figs 4–5) | idle NIC takes the first available segment |
//! | [`aggregate_eager`] | §3.3 (Fig 6) | aggregate small messages onto the lowest-latency rail, greedy for large |
//! | [`adaptive_split`] | §3.4 (Fig 7) | + split large segments across idle rails by sampled ratios (or 50/50 for the iso-split reference) |
//!
//! Beyond the paper's stages, the zoo carries strategies from later
//! multi-rail literature (see DESIGN.md "Strategy zoo"):
//!
//! | Module | Source | Policy |
//! |---|---|---|
//! | [`srpt`] | RailS | shortest-remaining-work first, straggler-aware re-striping |
//! | [`idle_harvest`] | FlexLink | any primary strategy + idle rails steal overflow above a watermark |
//! | [`latency_router`] | — | control-class smalls pinned to the lowest-latency rail, bulk split elsewhere |

pub mod adaptive_split;
pub mod aggregate_eager;
pub mod greedy;
pub mod idle_harvest;
pub mod latency_router;
pub mod single_rail;
pub mod srpt;
pub mod static_round_robin;

use nmad_model::{NicModel, RailId};

use crate::config::EngineConfig;
use crate::obs::FlightRecorder;
use crate::request::{Backlog, SegKey};
use crate::sampling::PerfTable;

/// What a strategy wants an idle rail to transmit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOp {
    /// Send one whole eager segment as-is.
    Eager(SegKey),
    /// Copy these eager segments into one aggregate container (in the
    /// given order) and send it.
    Aggregate(Vec<SegKey>),
    /// Send the next chunk (up to `max_len` bytes) of a granted segment
    /// that has no split plan.
    Chunk {
        /// Segment to consume from.
        key: SegKey,
        /// Upper bound on the chunk length.
        max_len: u64,
    },
    /// Send the chunk earmarked for this rail by the segment's split plan.
    PlannedChunk,
}

/// Per-rail in-flight load snapshot handed to strategies each decision.
///
/// All fields refer to data traffic only (control frames are excluded):
/// a strategy reasons about where payload bytes are, not about ACKs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RailFlight {
    /// Frames currently posted and not yet completed on this rail.
    pub inflight: u32,
    /// Payload bytes carried by those frames.
    pub inflight_bytes: u64,
    /// Post timestamp of the oldest still-outstanding frame (engine
    /// clock, ns); 0 when nothing is in flight.
    pub oldest_post_ns: u64,
    /// Cumulative payload bytes this rail has put on the wire.
    pub sent_bytes: u64,
    /// EWMA of observed per-frame service time on this rail (ns);
    /// 0 until the first completion.
    pub ewma_service_ns: u64,
}

/// Read/plan access the engine grants a strategy during one decision.
pub struct StrategyCtx<'a> {
    /// The waiting packs.
    pub backlog: &'a mut Backlog,
    /// Per-rail NIC capabilities, indexed by rail id.
    pub rails: &'a [NicModel],
    /// Per-rail busy flags (true = currently transmitting). The rail being
    /// asked is always idle.
    pub rail_busy: &'a [bool],
    /// Per-rail health flags (true = schedulable). Rails marked false are
    /// out of service; strategies must plan around them. The engine never
    /// asks for data traffic on an unhealthy rail.
    pub rail_ok: &'a [bool],
    /// Per-rail sampled performance tables (init-time sampling, §3.4).
    pub tables: &'a [PerfTable],
    /// Engine configuration (thresholds).
    pub config: &'a EngineConfig,
    /// Flight recorder: strategies record their decision events here
    /// (notably [`crate::obs::EventKind::DecideSplit`] at plan time, which
    /// carries the chunk ratio the engine cannot reconstruct later).
    /// Disabled recorders drop records in a branch, so this costs nothing
    /// when tracing is off.
    pub obs: &'a mut FlightRecorder,
    /// Engine clock at the moment of the decision (timestamp for events).
    pub now_ns: u64,
    /// Per-rail in-flight load view, indexed by rail id. May be shorter
    /// than `rails` (notably in unit fixtures); out-of-range rails read
    /// as idle via [`StrategyCtx::flight`].
    pub flight: &'a [RailFlight],
}

impl StrategyCtx<'_> {
    /// True when `rail` may carry data traffic.
    pub fn rail_ok(&self, rail: RailId) -> bool {
        self.rail_ok.get(rail.0).copied().unwrap_or(true)
    }

    /// Rails currently idle and healthy (including the one being asked).
    pub fn idle_rails(&self) -> Vec<RailId> {
        self.rail_busy
            .iter()
            .enumerate()
            .filter(|&(i, &b)| !b && self.rail_ok(RailId(i)))
            .map(|(i, _)| RailId(i))
            .collect()
    }

    /// In-flight load snapshot for `rail` (idle default when the engine —
    /// or a test fixture — supplied no entry for it).
    pub fn flight(&self, rail: RailId) -> RailFlight {
        self.flight.get(rail.0).copied().unwrap_or_default()
    }

    /// The healthy rail with the lowest minimal-message latency (falls
    /// back over all rails when none is healthy). Latency ties are broken
    /// by current load — idle over busy, fewer in-flight bytes, fewer
    /// lifetime sent bytes — so identical rails share control traffic
    /// instead of everything biasing onto rail 0.
    pub fn lowest_latency_rail(&self) -> RailId {
        let load_key = |i: usize| {
            let f = self.flight(RailId(i));
            (
                self.rails[i].analytic_pio_oneway(0),
                self.rail_busy.get(i).copied().unwrap_or(false),
                f.inflight_bytes,
                f.sent_bytes,
            )
        };
        let best = (0..self.rails.len())
            .filter(|&i| self.rail_ok(RailId(i)))
            .min_by_key(|&i| load_key(i));
        best.or_else(|| (0..self.rails.len()).min_by_key(|&i| load_key(i)))
            .map(RailId)
            .expect("engine always has rails")
    }
}

/// An optimizing scheduler.
pub trait Strategy: Send {
    /// Strategy name (figure legends, traces).
    fn name(&self) -> &'static str;

    /// Pick work for idle `rail`, or `None` to leave it idle. Implementors
    /// must only reference backlog entries in a schedulable phase; the
    /// engine validates and surfaces violations as
    /// [`crate::EngineError::InvalidStrategyOp`].
    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp>;
}

/// Strategy selection, mirroring the paper's four stages plus the
/// iso-split reference of Fig. 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Everything on one rail, no aggregation (the "regular"/"N-segment"
    /// reference curves of Figs 2–3).
    SingleRail(usize),
    /// One rail with opportunistic aggregation of waiting small segments.
    SingleRailAggregating(usize),
    /// §3.2: greedy balancing — an idle NIC takes the first segment.
    Greedy,
    /// §3.3: aggregate small messages onto the lowest-latency rail; greedy
    /// balancing for large segments.
    AggregateEager,
    /// §3.4 final strategy: aggregation for small + sampled-ratio splitting
    /// for large segments across idle rails.
    AdaptiveSplit,
    /// Fig. 7 reference: like AdaptiveSplit but always splits 50/50.
    IsoSplit,
    /// Ablation: split with a fixed permille of bytes on the first idle
    /// rail instead of the sampled ratio.
    FixedSplit(u16),
    /// Anti-pattern baseline for the `ablate_jit` bench: bind each segment
    /// to a rail round-robin at submission, ignoring NIC idleness.
    StaticRoundRobin,
    /// RailS-style shortest-remaining-work-first with straggler-aware
    /// re-striping of the laggard rail's remaining plan.
    Srpt,
    /// FlexLink-style idle-link harvesting wrapped around the adaptive
    /// splitter: idle rails steal overflow chunks above a watermark.
    IdleHarvest,
    /// Latency-class router: small control-class messages pinned to the
    /// lowest-latency healthy rail, bulk split across the rest.
    LatencyRouter,
}

impl StrategyKind {
    /// Instantiate the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::SingleRail(rail) => {
                Box::new(single_rail::SingleRail::new(RailId(rail), false))
            }
            StrategyKind::SingleRailAggregating(rail) => {
                Box::new(single_rail::SingleRail::new(RailId(rail), true))
            }
            StrategyKind::Greedy => Box::new(greedy::Greedy::new()),
            StrategyKind::AggregateEager => Box::new(aggregate_eager::AggregateEager::new()),
            StrategyKind::AdaptiveSplit => Box::new(adaptive_split::AdaptiveSplit::new(
                adaptive_split::SplitMode::Sampled,
            )),
            StrategyKind::IsoSplit => Box::new(adaptive_split::AdaptiveSplit::new(
                adaptive_split::SplitMode::Iso,
            )),
            StrategyKind::FixedSplit(permille) => Box::new(adaptive_split::AdaptiveSplit::new(
                adaptive_split::SplitMode::Fixed(permille),
            )),
            StrategyKind::StaticRoundRobin => Box::new(static_round_robin::StaticRoundRobin::new()),
            StrategyKind::Srpt => Box::new(srpt::Srpt::new()),
            StrategyKind::IdleHarvest => Box::new(idle_harvest::IdleHarvest::new(Box::new(
                adaptive_split::AdaptiveSplit::new(adaptive_split::SplitMode::Sampled),
            ))),
            StrategyKind::LatencyRouter => Box::new(latency_router::LatencyRouter::new()),
        }
    }

    /// Short name for legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::SingleRail(_) => "single-rail",
            StrategyKind::SingleRailAggregating(_) => "single-rail+agg",
            StrategyKind::Greedy => "greedy",
            StrategyKind::AggregateEager => "aggregate-eager",
            StrategyKind::AdaptiveSplit => "adaptive-split",
            StrategyKind::IsoSplit => "iso-split",
            StrategyKind::FixedSplit(_) => "fixed-split",
            StrategyKind::StaticRoundRobin => "static-round-robin",
            StrategyKind::Srpt => "srpt",
            StrategyKind::IdleHarvest => "idle-harvest",
            StrategyKind::LatencyRouter => "latency-router",
        }
    }

    /// Every strategy in the zoo with representative parameters — the
    /// tournament roster and the proptest harness both iterate this.
    pub fn zoo() -> Vec<StrategyKind> {
        vec![
            StrategyKind::SingleRail(0),
            StrategyKind::SingleRailAggregating(0),
            StrategyKind::Greedy,
            StrategyKind::AggregateEager,
            StrategyKind::AdaptiveSplit,
            StrategyKind::IsoSplit,
            StrategyKind::FixedSplit(500),
            StrategyKind::StaticRoundRobin,
            StrategyKind::Srpt,
            StrategyKind::IdleHarvest,
            StrategyKind::LatencyRouter,
        ]
    }
}

/// Shared helper: collect the set of eager segments an aggregating
/// strategy should merge right now, respecting the aggregation size cap.
/// Returns keys in submit order; empty when nothing is waiting.
pub(crate) fn collect_aggregation_batch(ctx: &StrategyCtx<'_>) -> Vec<SegKey> {
    collect_aggregation_batch_below(ctx, u64::MAX)
}

/// Like [`collect_aggregation_batch`] but only considering segments
/// strictly smaller than `max_seg` (multi-rail strategies exclude
/// DMA-eager "medium" segments, which balance better than they copy).
pub(crate) fn collect_aggregation_batch_below(ctx: &StrategyCtx<'_>, max_seg: u64) -> Vec<SegKey> {
    let cap = ctx.config.agg_max_bytes as u64;
    let mut keys = Vec::new();
    let mut total = 0u64;
    for item in ctx.backlog.eager_items() {
        if item.size >= max_seg {
            continue;
        }
        if !keys.is_empty() && total + item.size > cap {
            break;
        }
        total += item.size;
        keys.push(item.key);
        if total >= cap {
            break;
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_names() {
        assert_eq!(StrategyKind::Greedy.build().name(), "greedy");
        assert_eq!(StrategyKind::SingleRail(0).build().name(), "single-rail");
        assert_eq!(
            StrategyKind::SingleRailAggregating(1).build().name(),
            "single-rail+agg"
        );
        assert_eq!(
            StrategyKind::AggregateEager.build().name(),
            "aggregate-eager"
        );
        assert_eq!(StrategyKind::AdaptiveSplit.build().name(), "adaptive-split");
        assert_eq!(StrategyKind::IsoSplit.build().name(), "iso-split");
        assert_eq!(StrategyKind::Srpt.build().name(), "srpt");
        assert_eq!(StrategyKind::IdleHarvest.build().name(), "idle-harvest");
        assert_eq!(StrategyKind::LatencyRouter.build().name(), "latency-router");
    }

    #[test]
    fn labels_are_unique() {
        let kinds = StrategyKind::zoo();
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn zoo_covers_every_label() {
        // The zoo roster must build every strategy the engine can run.
        for kind in StrategyKind::zoo() {
            assert_eq!(kind.build().name(), kind.label());
        }
    }

    #[test]
    fn lowest_latency_ties_break_by_load() {
        use crate::sampling::default_ladder;
        use nmad_model::platform;

        // A symmetric fabric: two identical NICs. The old index-order
        // tie-break put every aggregation batch on rail 0 forever; the
        // load-aware tie-break must steer to the less-loaded rail.
        let rails = vec![platform::quadrics_qm500(), platform::quadrics_qm500()];
        let tables: Vec<PerfTable> = rails
            .iter()
            .map(|n| PerfTable::from_analytic(n, &default_ladder()))
            .collect();
        let config = EngineConfig::default();
        let mut backlog = Backlog::new();
        let mut obs = FlightRecorder::disabled();
        let flight = [
            RailFlight {
                inflight: 1,
                inflight_bytes: 4096,
                oldest_post_ns: 1,
                sent_bytes: 1 << 20,
                ewma_service_ns: 0,
            },
            RailFlight::default(),
        ];
        let ctx = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &flight,
        };
        assert_eq!(
            ctx.lowest_latency_rail(),
            RailId(1),
            "loaded rail 0 loses the tie"
        );

        // With no load information at all, index order remains the
        // deterministic last resort.
        let ctx2 = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[false, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(ctx2.lowest_latency_rail(), RailId(0));

        // A busy-but-otherwise-equal rail also loses the tie.
        let ctx3 = StrategyCtx {
            backlog: &mut backlog,
            rails: &rails,
            rail_busy: &[true, false],
            rail_ok: &[true, true],
            tables: &tables,
            config: &config,
            obs: &mut obs,
            now_ns: 0,
            flight: &[],
        };
        assert_eq!(ctx3.lowest_latency_rail(), RailId(1));
    }
}
