//! Latency-class router: control-plane smalls pinned to the fastest
//! rail, bulk split across the rest.
//!
//! Mixed workloads interleave tiny control-class messages (latency
//! critical) with bulk transfers (bandwidth critical). Aggregation
//! already prefers the low-latency rail for smalls, but nothing stops a
//! bulk chunk from occupying that rail right when the next control
//! message arrives — head-of-line blocking measured in chunk serialization
//! time. This router makes the class separation explicit:
//!
//! - The **pin** is the lowest-latency healthy rail, re-evaluated at every
//!   decision through [`StrategyCtx::lowest_latency_rail`] — which is
//!   load-aware, so on symmetric fabrics the pin migrates off a loaded
//!   rail instead of sticking to rail 0.
//! - The pin serves waiting smalls first, and while smalls are waiting —
//!   or arrived within [`crate::config::ZooConfig::router_reserve_ns`] —
//!   it refuses bulk, staying free for the next control message (only
//!   while another healthy rail can carry the bulk; the router never
//!   strands traffic).
//! - Every other rail runs the bulk path: planned chunks, sampled-ratio
//!   splits over the idle rails (minus a reserved pin), bounded chunks,
//!   then whole medium segments. Smalls ride a non-pin rail only when the
//!   pin is saturated.

use nmad_model::RailId;
use nmad_wire::split::SplitPlan;

use super::{collect_aggregation_batch_below, Strategy, StrategyCtx, TxOp};
use crate::obs::{Event, EventKind};
use crate::request::PlannedChunk;
use crate::sampling::split_weights;

/// See module docs.
#[derive(Debug, Default)]
pub struct LatencyRouter {
    /// Engine clock when the pin last served a small (reserve window).
    last_small_ns: Option<u64>,
}

impl LatencyRouter {
    /// New latency-class router.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bulk path: planned chunk, split across idle rails (minus an
    /// excluded reserved pin), bounded chunk, whole mediums.
    fn bulk_op(
        &mut self,
        rail: RailId,
        ctx: &mut StrategyCtx<'_>,
        exclude: Option<RailId>,
    ) -> Option<TxOp> {
        let has_planned = ctx.backlog.granted_items().any(|i| {
            i.plan
                .as_ref()
                .is_some_and(|p| p.iter().any(|c| !c.taken && c.rail == rail.0))
        });
        if has_planned {
            return Some(TxOp::PlannedChunk);
        }
        let min_chunk = ctx.config.min_chunk as u64;
        let first_unplanned = ctx
            .backlog
            .granted_items()
            .find(|i| i.plan.is_none())
            .map(|i| (i.key, i.next_offset, i.remaining()));
        if let Some((key, next_offset, remaining)) = first_unplanned {
            let idle: Vec<RailId> = ctx
                .idle_rails()
                .into_iter()
                .filter(|r| Some(*r) != exclude)
                .collect();
            if idle.len() >= 2 && remaining >= 2 * min_chunk {
                let tables: Vec<&crate::sampling::PerfTable> =
                    idle.iter().map(|r| &ctx.tables[r.0]).collect();
                let weights = split_weights(&tables, remaining);
                if weights.iter().sum::<f64>() > 0.0 {
                    let plan = SplitPlan::by_ratio(remaining, &weights, min_chunk);
                    let chunks: Vec<PlannedChunk> = plan
                        .chunks()
                        .iter()
                        .map(|c| PlannedChunk {
                            rail: idle[c.rail].0,
                            offset: next_offset + c.offset,
                            len: c.len,
                            taken: false,
                        })
                        .collect();
                    let mine = chunks.iter().any(|c| c.rail == rail.0);
                    if ctx.obs.is_enabled() {
                        for c in &chunks {
                            let permille = c
                                .len
                                .saturating_mul(1000)
                                .checked_div(remaining)
                                .unwrap_or(0);
                            ctx.obs.record(
                                Event::new(ctx.now_ns, EventKind::DecideSplit)
                                    .rail(c.rail)
                                    .seq(key.msg_id)
                                    .size(c.len)
                                    .aux(permille),
                            );
                        }
                    }
                    let ok = ctx.backlog.set_plan(key, chunks);
                    debug_assert!(ok, "plan must cover the remainder");
                    if mine {
                        return Some(TxOp::PlannedChunk);
                    }
                } else {
                    return Some(TxOp::Chunk {
                        key,
                        max_len: ctx.rails[rail.0].mtu as u64,
                    });
                }
            } else {
                let cap = (remaining / 4)
                    .max(2 * min_chunk)
                    .min(ctx.rails[rail.0].mtu as u64);
                return Some(TxOp::Chunk { key, max_len: cap });
            }
        }
        // Whole medium eager segments (DMA-eager regime) balance greedily.
        ctx.backlog
            .eager_items()
            .find(|i| i.size >= min_chunk)
            .map(|i| TxOp::Eager(i.key))
    }
}

impl Strategy for LatencyRouter {
    fn name(&self) -> &'static str {
        "latency-router"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        let pin = ctx.lowest_latency_rail();
        let min_chunk = ctx.config.min_chunk as u64;
        let smalls_waiting = ctx.backlog.eager_items().any(|i| i.size < min_chunk);
        let another_healthy = (0..ctx.rails.len()).any(|r| r != pin.0 && ctx.rail_ok(RailId(r)));
        let in_reserve_window = self
            .last_small_ns
            .is_some_and(|t| ctx.now_ns.saturating_sub(t) < ctx.config.zoo.router_reserve_ns);
        // The pin stays reserved for control traffic while smalls wait or
        // very recently flowed — but only when another healthy rail can
        // carry the bulk instead.
        let reserved = (smalls_waiting || in_reserve_window) && another_healthy;

        if rail == pin {
            let batch = collect_aggregation_batch_below(ctx, min_chunk);
            if !batch.is_empty() {
                self.last_small_ns = Some(ctx.now_ns);
                return match batch.len() {
                    1 => Some(TxOp::Eager(batch[0])),
                    _ => Some(TxOp::Aggregate(batch)),
                };
            }
            if reserved {
                return None;
            }
            return self.bulk_op(rail, ctx, None);
        }
        // Non-pin rails: bulk, keeping split plans off a reserved pin.
        let exclude = reserved.then_some(pin);
        if let Some(op) = self.bulk_op(rail, ctx, exclude) {
            return Some(op);
        }
        // Smalls overflow onto this rail only when the pin cannot serve
        // them (saturated or out of service).
        let pin_blocked = ctx.rail_busy.get(pin.0).copied().unwrap_or(false) || !ctx.rail_ok(pin);
        if pin_blocked && smalls_waiting {
            let batch = collect_aggregation_batch_below(ctx, min_chunk);
            return match batch.len() {
                0 => None,
                1 => Some(TxOp::Eager(batch[0])),
                _ => Some(TxOp::Aggregate(batch)),
            };
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
        now_ns: u64,
    }

    impl Fixture {
        fn new() -> Self {
            // Rail 1 (Quadrics) is the latency-fast pin.
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
                now_ns: 0,
            }
        }

        fn ctx_with_health<'a>(&'a mut self, busy: &'a [bool], ok: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: ok,
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: self.now_ns,
                flight: &[],
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            self.ctx_with_health(busy, &[true, true])
        }
    }

    #[test]
    fn pin_serves_smalls_and_refuses_bulk_while_reserved() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        let mut s = LatencyRouter::new();
        let both_idle = [false, false];
        // Pin (rail 1) takes the small, not the bulk.
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Eager(key(0, 0)))
        );
        f.backlog.take_eager(key(0, 0)).unwrap();
        // Inside the reserve window the pin refuses bulk...
        assert_eq!(s.next_tx(RailId(1), &mut f.ctx(&both_idle)), None);
        // ...while rail 0 carries it (single non-excluded idle rail →
        // bounded chunk).
        assert!(matches!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::Chunk { .. })
        ));
    }

    #[test]
    fn pin_takes_bulk_once_reserve_expires() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        let mut s = LatencyRouter::new();
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Eager(key(0, 0)))
        );
        f.backlog.take_eager(key(0, 0)).unwrap();
        // Clock far past the reserve window: the pin joins bulk work. Both
        // rails are idle so the bulk splits across them.
        f.now_ns = 10 * f.config.zoo.router_reserve_ns;
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
    }

    #[test]
    fn pin_carries_everything_when_alone() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        let mut s = LatencyRouter::new();
        let both_idle = [false, false];
        // Rail 0 is out of service: the pin must not reserve itself into
        // a stall — it serves the small, then the bulk.
        let ok = [false, true];
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx_with_health(&both_idle, &ok)),
            Some(TxOp::Eager(key(0, 0)))
        );
        f.backlog.take_eager(key(0, 0)).unwrap();
        assert!(matches!(
            s.next_tx(RailId(1), &mut f.ctx_with_health(&both_idle, &ok)),
            Some(TxOp::Chunk { .. })
        ));
    }

    #[test]
    fn smalls_overflow_when_pin_saturated() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        let mut s = LatencyRouter::new();
        // Pin (rail 1) is at capacity: rail 0 may carry the small rather
        // than let it wait behind the pin's pipeline.
        let pin_busy = [false, true];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&pin_busy)),
            Some(TxOp::Eager(key(0, 0)))
        );
    }
}
