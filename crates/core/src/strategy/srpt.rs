//! Shortest-remaining-work-first balancing with straggler-aware
//! re-striping, after RailS (see PAPERS.md).
//!
//! Two ideas compose here:
//!
//! 1. **SRPT order.** Where greedy serves the *oldest* schedulable work,
//!    this strategy serves the segment with the *least remaining bytes*
//!    first (ties by submit order). Under heavy-tailed size mixes the
//!    small requests stop queueing behind multi-megabyte transfers, which
//!    is exactly where RailS reports its wins.
//! 2. **Straggler re-striping.** Split plans earmark chunks per rail at
//!    plan time; if a rail then slows down (drift, congestion) its
//!    earmarked chunks sit waiting while the other rails drain. Each
//!    decision, any rail whose oldest in-flight frame has aged past a
//!    multiple of its predicted service time ([`RailFlight`] EWMA or the
//!    sampled table, whichever predicts more) has its untaken planned
//!    chunks re-striped round-robin onto the healthy, non-straggling
//!    rails — the same mechanism the engine uses on rail death, applied
//!    early on evidence of lag.
//!
//! Knobs live in [`crate::config::ZooConfig`]
//! (`srpt_straggle_factor`/`srpt_straggle_floor_ns`).

use nmad_model::RailId;
use nmad_wire::split::SplitPlan;

use super::{collect_aggregation_batch_below, Strategy, StrategyCtx, TxOp};
use crate::obs::{Event, EventKind};
use crate::request::{PlannedChunk, SegKey};
use crate::sampling::split_weights;

#[cfg(doc)]
use super::RailFlight;

/// One schedulable candidate, ordered by remaining work.
enum Cand {
    /// Whole eager segment of this size.
    Eager(SegKey, u64),
    /// Granted rendezvous segment: (key, remaining, next_offset).
    Granted(SegKey, u64, u64),
}

/// See module docs.
#[derive(Debug, Default)]
pub struct Srpt;

impl Srpt {
    /// New SRPT strategy.
    pub fn new() -> Self {
        Srpt
    }

    /// Re-stripe the untaken planned chunks of straggling (or newly
    /// unhealthy) rails onto the healthy, non-straggling survivors.
    fn restripe(&mut self, ctx: &mut StrategyCtx<'_>) {
        let n = ctx.rails.len();
        let zoo = &ctx.config.zoo;
        let straggling: Vec<bool> = (0..n)
            .map(|r| {
                if !ctx.rail_ok(RailId(r)) {
                    // The engine re-stripes on the Down transition itself;
                    // treating not-ok as straggling here also covers rails
                    // parked in probing limbo.
                    return true;
                }
                let f = ctx.flight(RailId(r));
                if f.inflight == 0 {
                    return false;
                }
                let age = ctx.now_ns.saturating_sub(f.oldest_post_ns);
                // Predicted completion: the observed per-frame EWMA or the
                // sampled table's estimate for the bytes in flight, whichever
                // is larger (early EWMA samples are noisy; the table knows
                // the size regime).
                let table_ns = (ctx.tables[r].time_for(f.inflight_bytes) * 1000.0) as u64;
                let est = f.ewma_service_ns.max(table_ns);
                let threshold = ((est as f64 * zoo.srpt_straggle_factor) as u64)
                    .max(zoo.srpt_straggle_floor_ns);
                age > threshold
            })
            .collect();
        let survivors: Vec<usize> = (0..n).filter(|&r| !straggling[r]).collect();
        if survivors.is_empty() {
            return;
        }
        for (r, _) in straggling.iter().enumerate().filter(|&(_, s)| *s) {
            let moved = ctx.backlog.reassign_rail(r, &survivors);
            if moved > 0 && ctx.obs.is_enabled() {
                ctx.obs.record(
                    Event::new(ctx.now_ns, EventKind::Restripe)
                        .rail(r)
                        .aux(moved as u64),
                );
            }
        }
    }
}

impl Strategy for Srpt {
    fn name(&self) -> &'static str {
        "srpt"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        self.restripe(ctx);

        // A chunk already earmarked for this rail (possibly just moved
        // here by the re-stripe above).
        let has_planned = ctx.backlog.granted_items().any(|i| {
            i.plan
                .as_ref()
                .is_some_and(|p| p.iter().any(|c| !c.taken && c.rail == rail.0))
        });
        if has_planned {
            return Some(TxOp::PlannedChunk);
        }

        // Shortest remaining work first, ties by submit order.
        let mut cands: Vec<(u64, u64, Cand)> = Vec::new();
        for i in ctx.backlog.eager_items() {
            cands.push((i.size, i.submit_seq, Cand::Eager(i.key, i.size)));
        }
        for i in ctx.backlog.granted_items() {
            if i.plan.is_none() {
                cands.push((
                    i.remaining(),
                    i.submit_seq,
                    Cand::Granted(i.key, i.remaining(), i.next_offset),
                ));
            }
        }
        cands.sort_by_key(|&(work, seq, _)| (work, seq));

        let min_chunk = ctx.config.min_chunk as u64;
        for (_, _, cand) in cands {
            match cand {
                Cand::Eager(key, size) => {
                    if size < min_chunk {
                        // Several smalls at the head of the SRPT order:
                        // batch them (submit order inside the container is
                        // fine — they all complete with this one frame).
                        let batch = collect_aggregation_batch_below(ctx, min_chunk);
                        return match batch.len() {
                            0 => Some(TxOp::Eager(key)),
                            1 => Some(TxOp::Eager(batch[0])),
                            _ => Some(TxOp::Aggregate(batch)),
                        };
                    }
                    return Some(TxOp::Eager(key));
                }
                Cand::Granted(key, remaining, next_offset) => {
                    let idle = ctx.idle_rails();
                    if idle.len() >= 2 && remaining >= 2 * min_chunk {
                        // Finish this segment as fast as the fabric allows:
                        // split it across every idle rail by sampled shares
                        // (remaining-work-aware striping).
                        let tables: Vec<&crate::sampling::PerfTable> =
                            idle.iter().map(|r| &ctx.tables[r.0]).collect();
                        let weights = split_weights(&tables, remaining);
                        if weights.iter().sum::<f64>() > 0.0 {
                            let plan = SplitPlan::by_ratio(remaining, &weights, min_chunk);
                            let chunks: Vec<PlannedChunk> = plan
                                .chunks()
                                .iter()
                                .map(|c| PlannedChunk {
                                    rail: idle[c.rail].0,
                                    offset: next_offset + c.offset,
                                    len: c.len,
                                    taken: false,
                                })
                                .collect();
                            let mine = chunks.iter().any(|c| c.rail == rail.0);
                            if ctx.obs.is_enabled() {
                                for c in &chunks {
                                    let permille = c
                                        .len
                                        .saturating_mul(1000)
                                        .checked_div(remaining)
                                        .unwrap_or(0);
                                    ctx.obs.record(
                                        Event::new(ctx.now_ns, EventKind::DecideSplit)
                                            .rail(c.rail)
                                            .seq(key.msg_id)
                                            .size(c.len)
                                            .aux(permille),
                                    );
                                }
                            }
                            let ok = ctx.backlog.set_plan(key, chunks);
                            debug_assert!(ok, "plan must cover the remainder");
                            if mine {
                                return Some(TxOp::PlannedChunk);
                            }
                            // Planned away from this rail (its share
                            // rounded to zero): try the next candidate.
                            continue;
                        }
                        return Some(TxOp::Chunk {
                            key,
                            max_len: ctx.rails[rail.0].mtu as u64,
                        });
                    }
                    // Sole idle rail (or small remainder): bounded chunk so
                    // a later decision can still split what is left.
                    let cap = (remaining / 4)
                        .max(2 * min_chunk)
                        .min(ctx.rails[rail.0].mtu as u64);
                    return Some(TxOp::Chunk { key, max_len: cap });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use crate::strategy::RailFlight;
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
        flight: Vec<RailFlight>,
        now_ns: u64,
    }

    impl Fixture {
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
                flight: vec![RailFlight::default(); 2],
                now_ns: 0,
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: &[true, true],
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: self.now_ns,
                flight: &self.flight,
            }
        }
    }

    #[test]
    fn shortest_remaining_work_served_first() {
        let mut f = Fixture::new();
        // Large submitted first, small second: greedy would serve the
        // large; SRPT must pick the small.
        f.backlog
            .push(key(0, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        f.backlog
            .push(key(1, 0), 1, 16 * 1024, SegPhase::EagerReady);
        let mut s = Srpt::new();
        let busy = [false, true];
        match s.next_tx(RailId(0), &mut f.ctx(&busy)) {
            Some(TxOp::Eager(k)) => assert_eq!(k, key(1, 0), "small eager first"),
            other => panic!("expected the small segment, got {other:?}"),
        }
    }

    #[test]
    fn smalls_batch_in_one_container() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        f.backlog.push(key(1, 0), 1, 64, SegPhase::EagerReady);
        let mut s = Srpt::new();
        let busy = [false, true];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::Aggregate(vec![key(0, 0), key(1, 0)]))
        );
    }

    #[test]
    fn splits_across_idle_rails() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(0, 0), 1, 8 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        let mut s = Srpt::new();
        let busy = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::PlannedChunk)
        );
        let l0 = f.backlog.take_planned(0).unwrap().len;
        let l1 = f.backlog.take_planned(1).unwrap().len;
        assert_eq!(l0 + l1, 8 << 20);
    }

    #[test]
    fn straggler_plan_restriped_to_survivor() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(0, 0), 1, 8 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        let mut s = Srpt::new();
        let both_idle = [false, false];
        // Plan the split while both rails are idle.
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        f.backlog.take_planned(0).unwrap();
        // Rail 1's frame has aged far beyond any predicted completion
        // while its earmarked chunk is still untaken: it is a straggler,
        // and its chunk must move to the healthy survivor (rail 0).
        f.now_ns = 1_000_000_000;
        f.flight[1] = RailFlight {
            inflight: 1,
            inflight_bytes: 4 << 20,
            oldest_post_ns: 1, // ancient
            sent_bytes: 4 << 20,
            ewma_service_ns: 1_000,
        };
        let rail1_busy = [false, true];
        // Rail 0 asks again: re-striping must hand it rail 1's chunk.
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&rail1_busy)),
            Some(TxOp::PlannedChunk)
        );
        let tc = f.backlog.take_planned(0).expect("chunk moved to rail 0");
        assert_eq!(tc.key, key(0, 0));
        assert!(
            f.backlog.take_planned(1).is_none(),
            "rail 1 must have lost its earmarked chunk"
        );
    }

    #[test]
    fn no_restripe_before_threshold() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(0, 0), 1, 8 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        let mut s = Srpt::new();
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::PlannedChunk)
        );
        f.backlog.take_planned(0).unwrap();
        // Rail 1 is busy but young: well inside its predicted completion.
        f.now_ns = 10_000;
        f.flight[1] = RailFlight {
            inflight: 1,
            inflight_bytes: 4 << 20,
            oldest_post_ns: 9_000,
            sent_bytes: 0,
            ewma_service_ns: 1_000_000,
        };
        let rail1_busy = [false, true];
        // Rail 0's own share is consumed; rail 1 keeps its chunk, so rail 0
        // gets nothing planned and nothing else is schedulable for it.
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&rail1_busy)), None);
        assert!(
            f.backlog.take_planned(1).is_some(),
            "rail 1 keeps its earmarked chunk"
        );
    }
}
