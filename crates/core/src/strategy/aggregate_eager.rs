//! Aggregation of small messages — §3.3 of the paper (Figure 6).
//!
//! "We therefore implemented a second version of our strategy which
//! aggregates small messages as soon as they are submitted, favoring their
//! transfer on the fastest network (that is, Quadrics) and proceeding
//! afterward in a greedy fashion."
//!
//! Concretely: waiting eager segments are reserved for the lowest-latency
//! rail — another idle rail leaves them alone *while that rail is idle and
//! will pick them up itself*. If the fast rail is busy, any idle rail may
//! take them (the "greedy fashion" fallback, which also prevents
//! starvation). Granted large segments are balanced greedily exactly as in
//! §3.2.

use nmad_model::RailId;

use super::{collect_aggregation_batch_below, Strategy, StrategyCtx, TxOp};

/// See module docs.
#[derive(Debug, Default)]
pub struct AggregateEager;

impl AggregateEager {
    /// New aggregating strategy.
    pub fn new() -> Self {
        AggregateEager
    }

    pub(crate) fn eager_op(rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        // "Medium" segments — above the PIO regime but below the
        // rendezvous threshold — gain nothing from staging copies and do
        // gain from overlap: balance them greedily like large ones.
        let pio_boundary = ctx.config.min_chunk as u64;
        if let Some(item) = ctx.backlog.eager_items().find(|i| i.size >= pio_boundary) {
            return Some(TxOp::Eager(item.key));
        }
        let fast = ctx.lowest_latency_rail();
        if rail != fast && !ctx.rail_busy[fast.0] {
            // The fast rail is idle and will be asked too; leave the small
            // messages for it.
            return None;
        }
        let batch = collect_aggregation_batch_below(ctx, pio_boundary);
        match batch.len() {
            0 => None,
            1 => Some(TxOp::Eager(batch[0])),
            _ => Some(TxOp::Aggregate(batch)),
        }
    }

    pub(crate) fn greedy_large_op(rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        let key = ctx.backlog.granted_items().next()?.key;
        Some(TxOp::Chunk {
            key,
            max_len: ctx.rails[rail.0].mtu as u64,
        })
    }
}

impl Strategy for AggregateEager {
    fn name(&self) -> &'static str {
        "aggregate-eager"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        // Large granted segments: greedy balancing over whoever is idle.
        if let Some(op) = Self::greedy_large_op(rail, ctx) {
            return Some(op);
        }
        Self::eager_op(rail, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegKey, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
    }

    impl Fixture {
        // Rail 0 = Myri (fast bandwidth), rail 1 = Quadrics (fast latency).
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: &[true, true],
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: 0,
                flight: &[],
            }
        }
    }

    #[test]
    fn smalls_reserved_for_lowest_latency_rail() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        f.backlog.push(key(1, 1), 2, 100, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        // Myri (rail 0) must defer while Quadrics (rail 1) is idle.
        assert_eq!(s.next_tx(RailId(0), &mut f.ctx(&both_idle)), None);
        // Quadrics aggregates both.
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Aggregate(vec![key(1, 0), key(1, 1)]))
        );
    }

    #[test]
    fn fallback_to_other_rail_when_fast_is_busy() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 1, 100, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        let quadrics_busy = [false, true];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&quadrics_busy)),
            Some(TxOp::Eager(key(1, 0)))
        );
    }

    #[test]
    fn large_segments_balanced_greedily() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(1, 0), 2, 1 << 20, SegPhase::RdvRequested);
        f.backlog
            .push(key(1, 1), 2, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        f.backlog.grant(key(1, 1));
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&both_idle)) {
            Some(TxOp::Chunk { key: k, .. }) => assert_eq!(k, key(1, 0)),
            other => panic!("{other:?}"),
        }
        // Engine would consume it; emulate.
        f.backlog.take_chunk(key(1, 0), u64::MAX).unwrap();
        match s.next_tx(RailId(1), &mut f.ctx(&both_idle)) {
            Some(TxOp::Chunk { key: k, .. }) => assert_eq!(k, key(1, 1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn large_takes_priority_over_small_on_any_rail() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(1, 0));
        f.backlog.push(key(2, 0), 1, 100, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&both_idle)) {
            Some(TxOp::Chunk { .. }) => {}
            other => panic!("large first, got {other:?}"),
        }
    }

    #[test]
    fn quadrics_takes_single_small_directly() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 1, 100, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Eager(key(1, 0)))
        );
    }

    #[test]
    fn medium_segments_balanced_not_aggregated() {
        let mut f = Fixture::new();
        let medium = f.config.min_chunk as u64; // 8 KiB: DMA-eager regime
        f.backlog.push(key(1, 0), 2, medium, SegPhase::EagerReady);
        f.backlog.push(key(1, 1), 2, medium, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        // Myri (rail 0) takes the first medium segment greedily instead of
        // deferring to the latency rail.
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&both_idle)),
            Some(TxOp::Eager(key(1, 0)))
        );
        f.backlog.take_eager(key(1, 0)).unwrap();
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&both_idle)),
            Some(TxOp::Eager(key(1, 1)))
        );
    }

    #[test]
    fn mixed_smalls_aggregate_without_the_medium() {
        let mut f = Fixture::new();
        f.backlog.push(key(1, 0), 1, 64, SegPhase::EagerReady);
        f.backlog.push(
            key(2, 0),
            1,
            f.config.min_chunk as u64,
            SegPhase::EagerReady,
        );
        f.backlog.push(key(3, 0), 1, 64, SegPhase::EagerReady);
        let mut s = AggregateEager::new();
        // Only Quadrics idle: it serves the medium first (greedy priority).
        let myri_busy = [true, false];
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&myri_busy)),
            Some(TxOp::Eager(key(2, 0)))
        );
        f.backlog.take_eager(key(2, 0)).unwrap();
        // Then the two smalls aggregate together.
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&myri_busy)),
            Some(TxOp::Aggregate(vec![key(1, 0), key(3, 0)]))
        );
    }

    #[test]
    fn nothing_pending_returns_none() {
        let mut f = Fixture::new();
        let mut s = AggregateEager::new();
        let both_idle = [false, false];
        assert_eq!(s.next_tx(RailId(1), &mut f.ctx(&both_idle)), None);
    }
}
