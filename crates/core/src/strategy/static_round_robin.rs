//! Static round-robin rail assignment — the *anti-pattern* NewMadeleine
//! argues against.
//!
//! Section 3.5 claims originality because "the optimization engine is
//! triggered only when one NIC becomes idle, so we take our scheduling
//! decisions just-in-time". The natural alternative is to bind work to
//! rails *statically* at submission time, round-robin, the way simple
//! bonding layers do. This strategy implements exactly that, as a
//! baseline for the `ablate_jit` bench: it ignores rail idleness entirely,
//! so an unlucky large segment lands on the slow rail while the fast one
//! sits idle — which is the measurable cost of not deciding just-in-time.

use std::collections::HashMap;

use nmad_model::RailId;

use crate::request::SegKey;

use super::{Strategy, StrategyCtx, TxOp};

/// See module docs.
#[derive(Debug, Default)]
pub struct StaticRoundRobin {
    /// Next rail in rotation for newly seen segments.
    next_rail: usize,
    /// Fixed assignment, decided the first time a segment is observed.
    assignment: HashMap<SegKey, usize>,
}

impl StaticRoundRobin {
    /// New round-robin strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind any unassigned schedulable segments to rails, in rotation.
    fn assign_new(&mut self, ctx: &StrategyCtx<'_>) {
        let n = ctx.rails.len();
        let mut fresh: Vec<SegKey> = Vec::new();
        for item in ctx.backlog.eager_items() {
            if !self.assignment.contains_key(&item.key) {
                fresh.push(item.key);
            }
        }
        for item in ctx.backlog.granted_items() {
            if !self.assignment.contains_key(&item.key) {
                fresh.push(item.key);
            }
        }
        // Deterministic submit-order binding: sort by nothing — the two
        // scans above each follow submit order, but interleave; rebuild
        // order from the backlog's own iteration is enough for a baseline.
        // The rotation skips out-of-service rails: static binding ignores
        // *idleness*, not *health* — binding fresh work to a Down rail
        // would just park it until retransmit+failover cleaned up.
        let any_ok = ctx.rail_ok.iter().take(n).any(|&ok| ok);
        for key in fresh {
            if any_ok {
                while !ctx.rail_ok(RailId(self.next_rail)) {
                    self.next_rail = (self.next_rail + 1) % n;
                }
            }
            self.assignment.insert(key, self.next_rail);
            self.next_rail = (self.next_rail + 1) % n;
        }
        // Failover: rebind work stuck on an out-of-service rail. The
        // static baseline normally never revisits a binding — rail death
        // is the one event that forces it to.
        if ctx.rail_ok.iter().any(|ok| !ok) && !ctx.rail_ok.iter().all(|ok| !ok) {
            let dead: Vec<SegKey> = self
                .assignment
                .iter()
                .filter(|&(_, &r)| !ctx.rail_ok(RailId(r)))
                .map(|(k, _)| *k)
                .collect();
            for key in dead {
                while !ctx.rail_ok(RailId(self.next_rail)) {
                    self.next_rail = (self.next_rail + 1) % n;
                }
                self.assignment.insert(key, self.next_rail);
                self.next_rail = (self.next_rail + 1) % n;
            }
        }
    }
}

impl Strategy for StaticRoundRobin {
    fn name(&self) -> &'static str {
        "static-round-robin"
    }

    fn next_tx(&mut self, rail: RailId, ctx: &mut StrategyCtx<'_>) -> Option<TxOp> {
        self.assign_new(ctx);
        // Serve only work bound to *this* rail, oldest first — even if
        // other work waits and this rail could take it.
        let eager = ctx
            .backlog
            .eager_items()
            .find(|i| self.assignment.get(&i.key) == Some(&rail.0))
            .map(|i| i.key);
        if let Some(key) = eager {
            self.assignment.remove(&key);
            return Some(TxOp::Eager(key));
        }
        let granted = ctx
            .backlog
            .granted_items()
            .find(|i| self.assignment.get(&i.key) == Some(&rail.0))
            .map(|i| (i.key, i.remaining()));
        if let Some((key, remaining)) = granted {
            let max_len = ctx.rails[rail.0].mtu as u64;
            if remaining <= max_len {
                self.assignment.remove(&key);
            }
            return Some(TxOp::Chunk { key, max_len });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::obs::FlightRecorder;
    use crate::request::{Backlog, SegPhase};
    use crate::sampling::{default_ladder, PerfTable};
    use nmad_model::platform;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    struct Fixture {
        rails: Vec<nmad_model::NicModel>,
        tables: Vec<PerfTable>,
        config: EngineConfig,
        backlog: Backlog,
        obs: FlightRecorder,
    }

    impl Fixture {
        fn new() -> Self {
            let rails = vec![platform::myri_10g(), platform::quadrics_qm500()];
            let tables = rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &default_ladder()))
                .collect();
            Fixture {
                rails,
                tables,
                config: EngineConfig::default(),
                backlog: Backlog::new(),
                obs: FlightRecorder::disabled(),
            }
        }

        fn ctx<'a>(&'a mut self, busy: &'a [bool]) -> StrategyCtx<'a> {
            self.ctx_with_health(busy, &[true, true])
        }

        fn ctx_with_health<'a>(&'a mut self, busy: &'a [bool], ok: &'a [bool]) -> StrategyCtx<'a> {
            StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: busy,
                rail_ok: ok,
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: 0,
                flight: &[],
            }
        }
    }

    #[test]
    fn alternates_rails_in_submit_order() {
        let mut f = Fixture::new();
        for m in 0..4 {
            f.backlog.push(key(m, 0), 1, 64, SegPhase::EagerReady);
        }
        let mut s = StaticRoundRobin::new();
        let busy = [false, false];
        // Messages 0 and 2 are bound to rail 0; 1 and 3 to rail 1.
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(0, 0)))
        );
        f.backlog.take_eager(key(0, 0)).unwrap();
        assert_eq!(
            s.next_tx(RailId(1), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(1, 0)))
        );
        f.backlog.take_eager(key(1, 0)).unwrap();
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx(&busy)),
            Some(TxOp::Eager(key(2, 0)))
        );
    }

    #[test]
    fn ignores_idleness_of_other_rail() {
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        let mut s = StaticRoundRobin::new();
        let busy = [false, false];
        // Message 0 is bound to rail 0. Rail 1 must refuse it even though
        // it is idle — the whole point of the anti-pattern.
        assert_eq!(s.next_tx(RailId(1), &mut f.ctx(&busy)), None);
        assert!(s.next_tx(RailId(0), &mut f.ctx(&busy)).is_some());
    }

    #[test]
    fn fresh_bindings_skip_down_rails() {
        let mut f = Fixture::new();
        for m in 0..4 {
            f.backlog.push(key(m, 0), 1, 64, SegPhase::EagerReady);
        }
        let mut s = StaticRoundRobin::new();
        let busy = [false, false];
        // Rail 0 is in outage: every fresh segment must bind to rail 1 —
        // the rotation skips non-schedulable rails at decision time
        // instead of parking work on the dead rail.
        let ok = [false, true];
        assert_eq!(
            s.next_tx(RailId(0), &mut f.ctx_with_health(&busy, &ok)),
            None
        );
        for m in 0..4 {
            let op = s.next_tx(RailId(1), &mut f.ctx_with_health(&busy, &ok));
            assert_eq!(op, Some(TxOp::Eager(key(m, 0))), "msg {m} serves on rail 1");
            f.backlog.take_eager(key(m, 0)).unwrap();
        }
    }

    #[test]
    fn all_rails_down_still_binds() {
        // Degenerate case: with no healthy rail the rotation must not
        // spin forever — it falls back to plain round-robin binding.
        let mut f = Fixture::new();
        f.backlog.push(key(0, 0), 1, 64, SegPhase::EagerReady);
        let mut s = StaticRoundRobin::new();
        let busy = [false, false];
        let ok = [false, false];
        // The engine never offers a Down rail, but the strategy itself
        // must stay total: binding proceeds, serving just finds rail 0.
        let op = s.next_tx(RailId(0), &mut f.ctx_with_health(&busy, &ok));
        assert_eq!(op, Some(TxOp::Eager(key(0, 0))));
    }

    #[test]
    fn granted_segments_follow_their_binding() {
        let mut f = Fixture::new();
        f.backlog
            .push(key(0, 0), 1, 1 << 20, SegPhase::RdvRequested);
        f.backlog.grant(key(0, 0));
        let mut s = StaticRoundRobin::new();
        let busy = [false, false];
        match s.next_tx(RailId(0), &mut f.ctx(&busy)) {
            Some(TxOp::Chunk { key: k, .. }) => assert_eq!(k, key(0, 0)),
            other => panic!("{other:?}"),
        }
    }
}
