//! Reusable buffer pool for the transmit hot path.
//!
//! Every packet needs a small owned head buffer (envelope + body header)
//! and aggregation needs a staging slab; allocating them fresh per packet
//! is exactly the per-packet overhead §3.3 warns about. The pool keeps a
//! free list of recycled `Vec<u8>` allocations: [`BufferPool::take`] pops
//! one (a *pool hit*) or allocates (a counted *hot-path alloc*), and
//! [`BufferPool::reclaim`] recovers the allocation from a frozen
//! [`Bytes`] once the frame leaves the in-flight set — which succeeds
//! precisely when no one else still holds a reference (the threaded
//! transports drop theirs at tx completion; the in-process fabric's
//! receiver may legitimately still hold one, which is counted as a miss,
//! not an error).

//!
//! Two deployment shapes share the counters and the ledger discipline:
//!
//! * [`BufferPool`] — the original single-owner pool (one `&mut` holder,
//!   no locking). The deterministic simulator and unit tests use it.
//! * [`SharedPool`] + [`Magazine`] — a lock-protected shared free list
//!   fronted by per-worker *magazines* (thread-local buffer caches, the
//!   slab-allocator sense of the word). A magazine serves `take` and
//!   `reclaim` from its local stack without touching the shared lock;
//!   only bounded batch refills/flushes cross it, so packet-head
//!   allocation stops bouncing a cache line between rail workers.

use bytes::{Bytes, BytesMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters the pool reports back to
/// [`crate::stats::DataPathStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Requests served from the free list.
    pub hits: u64,
    /// Requests that had to allocate.
    pub allocs: u64,
    /// Buffers recovered into the free list.
    pub reclaims: u64,
    /// Reclaim attempts on still-shared buffers.
    pub reclaim_misses: u64,
    /// Requests served from a magazine's local cache without taking the
    /// shared lock (always 0 for a plain [`BufferPool`]).
    pub magazine_hits: u64,
    /// Batch refills that did take the shared lock.
    pub magazine_refills: u64,
    /// Batch flushes of excess local buffers back to the shared list.
    pub magazine_flushes: u64,
}

impl PoolCounters {
    /// Fraction of takes served lock-free from a magazine (0.0 when no
    /// magazine is in play or nothing was taken yet).
    pub fn magazine_hit_rate(&self) -> f64 {
        let takes = self.hits + self.allocs;
        if takes == 0 {
            0.0
        } else {
            self.magazine_hits as f64 / takes as f64
        }
    }
}

/// A bounded free list of byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    counters: PoolCounters,
    /// Leak ledger: buffers taken and not yet handed back to `reclaim`.
    /// Every `take` must eventually be answered by exactly one `reclaim`
    /// (shared buffers count — a miss still closes the ledger entry), so
    /// a nonzero value at engine drop is a leaked buffer.
    outstanding: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(32)
    }
}

impl BufferPool {
    /// Pool keeping at most `max_buffers` free buffers (excess reclaims
    /// are dropped to bound memory).
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
            counters: PoolCounters::default(),
            outstanding: 0,
        }
    }

    /// Take a cleared buffer with at least `min_capacity` bytes of
    /// capacity, preferring a recycled one.
    pub fn take(&mut self, min_capacity: usize) -> BytesMut {
        // Find a free buffer that already has the capacity; otherwise
        // reuse the largest available (growing it amortizes like a fresh
        // Vec, but keeps the allocation count honest).
        self.outstanding += 1;
        if let Some(idx) = self.free.iter().position(|b| b.capacity() >= min_capacity) {
            let mut buf = self.free.swap_remove(idx);
            buf.clear();
            self.counters.hits += 1;
            return BytesMut::from(buf);
        }
        self.counters.allocs += 1;
        BytesMut::with_capacity(min_capacity)
    }

    /// Try to recover the allocation behind `buf` into the free list.
    /// Succeeds only when `buf` is the sole reference; a shared buffer is
    /// counted as a miss and dropped (the other holder keeps it alive).
    pub fn reclaim(&mut self, buf: Bytes) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if buf.is_unique() {
            if self.free.len() < self.max_buffers {
                let v: Vec<u8> = buf.into();
                self.free.push(v);
            }
            self.counters.reclaims += 1;
        } else {
            self.counters.reclaim_misses += 1;
        }
    }

    /// Buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Buffers taken and not yet reclaimed (the leak ledger). A steady
    /// nonzero value equals the frames currently in flight; a value that
    /// stays nonzero after the engine quiesces is a leak.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Cumulative hit/alloc/reclaim counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }
}

// ----------------------------------------------------------------------
// Shared pool + per-worker magazines
// ----------------------------------------------------------------------

/// Counters live as atomics so magazines on different threads update
/// them without the free-list lock; `outstanding` is the process-wide
/// leak ledger (magazine-cached buffers are *free*, not outstanding).
#[derive(Debug, Default)]
struct SharedCounters {
    hits: AtomicU64,
    allocs: AtomicU64,
    reclaims: AtomicU64,
    reclaim_misses: AtomicU64,
    magazine_hits: AtomicU64,
    magazine_refills: AtomicU64,
    magazine_flushes: AtomicU64,
    outstanding: AtomicU64,
}

#[derive(Debug)]
struct SharedState {
    free: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
    counters: SharedCounters,
}

/// A cloneable handle on a lock-protected buffer free list. Workers
/// don't use it directly — each carves a [`Magazine`] and goes through
/// that, touching the shared lock only on bounded batch refill/flush.
#[derive(Clone, Debug)]
pub struct SharedPool {
    inner: Arc<SharedState>,
}

impl Default for SharedPool {
    fn default() -> Self {
        Self::new(32)
    }
}

impl SharedPool {
    /// Shared pool keeping at most `max_buffers` free buffers across the
    /// central list (magazine caches are bounded separately).
    pub fn new(max_buffers: usize) -> Self {
        SharedPool {
            inner: Arc::new(SharedState {
                free: Mutex::new(Vec::new()),
                max_buffers,
                counters: SharedCounters::default(),
            }),
        }
    }

    /// Carve a per-worker magazine caching at most `cap` local buffers.
    /// Refill and flush batches are `cap / 2` (at least 1), so a worker
    /// amortizes one lock acquisition over many takes/reclaims.
    pub fn magazine(&self, cap: usize) -> Magazine {
        Magazine {
            shared: Arc::clone(&self.inner),
            local: Vec::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    /// Cumulative counters aggregated across all magazines.
    pub fn counters(&self) -> PoolCounters {
        let c = &self.inner.counters;
        PoolCounters {
            hits: c.hits.load(Ordering::Relaxed),
            allocs: c.allocs.load(Ordering::Relaxed),
            reclaims: c.reclaims.load(Ordering::Relaxed),
            reclaim_misses: c.reclaim_misses.load(Ordering::Relaxed),
            magazine_hits: c.magazine_hits.load(Ordering::Relaxed),
            magazine_refills: c.magazine_refills.load(Ordering::Relaxed),
            magazine_flushes: c.magazine_flushes.load(Ordering::Relaxed),
        }
    }

    /// Buffers in someone's custody (taken, not yet reclaimed) across
    /// all magazines — the leak ledger.
    pub fn outstanding(&self) -> u64 {
        self.inner.counters.outstanding.load(Ordering::Relaxed)
    }

    /// Buffers on the central free list (excludes magazine caches).
    pub fn free_buffers(&self) -> usize {
        self.inner.free.lock().expect("pool lock poisoned").len()
    }
}

/// Per-worker front for a [`SharedPool`]: a bounded local stack of free
/// buffers serving `take`/`reclaim` without the shared lock. Dropping a
/// magazine flushes its cache back to the shared list, so the ledger
/// stays exact: custody is only ever counted in `outstanding`, never in
/// a cache.
#[derive(Debug)]
pub struct Magazine {
    shared: Arc<SharedState>,
    local: Vec<Vec<u8>>,
    cap: usize,
}

impl Magazine {
    fn batch(&self) -> usize {
        (self.cap / 2).max(1)
    }

    /// Take a cleared buffer with at least `min_capacity` bytes of
    /// capacity: local cache first, then a batch refill from the shared
    /// list, then a counted fresh allocation.
    pub fn take(&mut self, min_capacity: usize) -> BytesMut {
        let c = &self.shared.counters;
        c.outstanding.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = self.local.iter().position(|b| b.capacity() >= min_capacity) {
            let mut buf = self.local.swap_remove(idx);
            buf.clear();
            c.magazine_hits.fetch_add(1, Ordering::Relaxed);
            c.hits.fetch_add(1, Ordering::Relaxed);
            return BytesMut::from(buf);
        }
        // Local miss: one lock acquisition refills up to half a magazine,
        // preferring a buffer that already fits this request.
        let mut fitting: Option<Vec<u8>> = None;
        {
            let mut free = self.shared.free.lock().expect("pool lock poisoned");
            if !free.is_empty() {
                c.magazine_refills.fetch_add(1, Ordering::Relaxed);
                if let Some(idx) = free.iter().position(|b| b.capacity() >= min_capacity) {
                    fitting = Some(free.swap_remove(idx));
                }
                let room = self.batch().saturating_sub(fitting.is_some() as usize);
                for _ in 0..room.min(free.len()) {
                    self.local.push(free.pop().expect("len checked"));
                }
            }
        }
        if let Some(mut buf) = fitting {
            buf.clear();
            c.hits.fetch_add(1, Ordering::Relaxed);
            return BytesMut::from(buf);
        }
        c.allocs.fetch_add(1, Ordering::Relaxed);
        BytesMut::with_capacity(min_capacity)
    }

    /// Try to recover the allocation behind `buf` into the local cache
    /// (same uniqueness rule as [`BufferPool::reclaim`]); overflow past
    /// the magazine bound flushes a batch to the shared list.
    pub fn reclaim(&mut self, buf: Bytes) {
        let c = &self.shared.counters;
        let _ = c
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        if buf.is_unique() {
            c.reclaims.fetch_add(1, Ordering::Relaxed);
            let v: Vec<u8> = buf.into();
            self.local.push(v);
            if self.local.len() > self.cap {
                self.flush(self.batch());
            }
        } else {
            c.reclaim_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Move up to `n` cached buffers back to the shared free list
    /// (dropping overflow past the shared bound, like `BufferPool`).
    fn flush(&mut self, n: usize) {
        let c = &self.shared.counters;
        c.magazine_flushes.fetch_add(1, Ordering::Relaxed);
        let mut free = self.shared.free.lock().expect("pool lock poisoned");
        for _ in 0..n {
            let Some(b) = self.local.pop() else { break };
            if free.len() < self.shared.max_buffers {
                free.push(b);
            }
        }
    }

    /// Buffers cached locally (free, not outstanding).
    pub fn cached(&self) -> usize {
        self.local.len()
    }

    /// Ledger + counter views, mirroring [`BufferPool`]'s API so the
    /// engine can hold either.
    pub fn outstanding(&self) -> u64 {
        self.shared.counters.outstanding.load(Ordering::Relaxed)
    }

    /// Cumulative counters (shared across every magazine of the pool).
    pub fn counters(&self) -> PoolCounters {
        SharedPool {
            inner: Arc::clone(&self.shared),
        }
        .counters()
    }

    /// A handle on the backing shared pool (to carve more magazines).
    pub fn pool(&self) -> SharedPool {
        SharedPool {
            inner: Arc::clone(&self.shared),
        }
    }
}

impl Drop for Magazine {
    fn drop(&mut self) {
        // Hand every cached buffer back so the shared pool remains the
        // sole owner of free memory; custody accounting is untouched
        // (cached buffers were never outstanding).
        self.flush(usize::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_then_hits_after_reclaim() {
        let mut p = BufferPool::new(4);
        let b = p.take(64);
        assert_eq!(p.counters().allocs, 1);
        assert_eq!(p.counters().hits, 0);
        p.reclaim(b.freeze());
        assert_eq!(p.counters().reclaims, 1);
        assert_eq!(p.free_buffers(), 1);
        let b2 = p.take(32);
        assert_eq!(p.counters().hits, 1);
        assert!(b2.capacity() >= 32);
        assert!(b2.is_empty(), "recycled buffer must come back cleared");
    }

    #[test]
    fn shared_buffer_is_a_miss() {
        let mut p = BufferPool::new(4);
        let b = p.take(16).freeze();
        let _other = b.clone();
        p.reclaim(b);
        assert_eq!(p.counters().reclaim_misses, 1);
        assert_eq!(p.free_buffers(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut p = BufferPool::new(2);
        for _ in 0..5 {
            let b = p.take(8);
            p.reclaim(b.freeze());
        }
        assert!(p.free_buffers() <= 2);
    }

    #[test]
    fn outstanding_ledger_tracks_take_and_reclaim() {
        let mut p = BufferPool::new(4);
        assert_eq!(p.outstanding(), 0);
        let a = p.take(64);
        let b = p.take(64);
        assert_eq!(p.outstanding(), 2, "two buffers out");
        p.reclaim(a.freeze());
        assert_eq!(p.outstanding(), 1, "one still held — a would-be leak");
        // A shared reclaim (miss) still closes the ledger entry: custody
        // returned even though the allocation could not be recycled.
        let frozen = b.freeze();
        let _shared = frozen.clone();
        p.reclaim(frozen);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.counters().reclaim_misses, 1);
    }

    #[test]
    fn capacity_preference() {
        let mut p = BufferPool::new(4);
        let small = p.take(8);
        let big = p.take(4096);
        p.reclaim(small.freeze());
        p.reclaim(big.freeze());
        let got = p.take(2048);
        assert!(got.capacity() >= 2048, "must pick the big free buffer");
        assert_eq!(p.counters().hits, 1);
    }

    #[test]
    fn magazine_serves_locally_after_warmup() {
        let pool = SharedPool::new(32);
        let mut mag = pool.magazine(8);
        // First round allocates; reclaims land in the local cache.
        let bufs: Vec<_> = (0..4).map(|_| mag.take(64)).collect();
        for b in bufs {
            mag.reclaim(b.freeze());
        }
        assert_eq!(mag.counters().allocs, 4);
        // Steady state: every take is a lock-free magazine hit.
        for _ in 0..100 {
            let b = mag.take(64);
            mag.reclaim(b.freeze());
        }
        let c = mag.counters();
        assert_eq!(c.magazine_hits, 100);
        assert_eq!(c.allocs, 4, "no further allocations after warmup");
        assert!(
            c.magazine_hit_rate() > 0.9,
            "rate {}",
            c.magazine_hit_rate()
        );
        assert_eq!(mag.outstanding(), 0, "ledger balanced");
    }

    #[test]
    fn magazine_ledger_counts_custody_not_cache() {
        let pool = SharedPool::new(32);
        let mut mag = pool.magazine(4);
        let a = mag.take(64);
        let b = mag.take(64);
        assert_eq!(pool.outstanding(), 2);
        mag.reclaim(a.freeze());
        assert_eq!(
            pool.outstanding(),
            1,
            "cached buffer is free, not outstanding"
        );
        assert_eq!(mag.cached(), 1);
        // Shared reclaim still closes the ledger entry.
        let frozen = b.freeze();
        let _other = frozen.clone();
        mag.reclaim(frozen);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(mag.counters().reclaim_misses, 1);
    }

    #[test]
    fn magazine_overflow_flushes_to_shared_and_drop_returns_cache() {
        let pool = SharedPool::new(32);
        {
            let mut mag = pool.magazine(2);
            let bufs: Vec<_> = (0..6).map(|_| mag.take(32)).collect();
            for b in bufs {
                mag.reclaim(b.freeze());
            }
            // cap 2 exceeded -> at least one batch flush crossed the lock.
            assert!(mag.counters().magazine_flushes >= 1);
            assert!(mag.cached() <= 2 + 1, "cache stays near its bound");
        }
        // Magazine dropped: everything is back on the shared list.
        assert_eq!(pool.outstanding(), 0);
        assert!(pool.free_buffers() >= 1);
    }

    #[test]
    fn magazines_refill_from_shared_free_list() {
        let pool = SharedPool::new(32);
        // Populate the shared list through one magazine...
        {
            let mut feeder = pool.magazine(8);
            let bufs: Vec<_> = (0..6).map(|_| feeder.take(128)).collect();
            for b in bufs {
                feeder.reclaim(b.freeze());
            }
        }
        // ...and serve another from it without fresh allocations.
        let mut mag = pool.magazine(8);
        let b = mag.take(64);
        let c = mag.counters();
        assert_eq!(c.allocs, 6, "refill hit, no new allocation");
        assert!(c.magazine_refills >= 1);
        assert!(b.capacity() >= 64);
        mag.reclaim(b.freeze());
    }

    #[test]
    fn magazines_concurrent_ledger_exact() {
        let pool = SharedPool::new(64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut mag = pool.magazine(8);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let b = mag.take(64 + (i % 7) * 16);
                    mag.reclaim(b.freeze());
                }
            }));
        }
        for h in handles {
            h.join().expect("worker ok");
        }
        assert_eq!(pool.outstanding(), 0, "ledger exact under contention");
        let c = pool.counters();
        assert_eq!(c.hits + c.allocs, 2000);
        assert_eq!(c.reclaims + c.reclaim_misses, 2000);
    }
}
