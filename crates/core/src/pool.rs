//! Reusable buffer pool for the transmit hot path.
//!
//! Every packet needs a small owned head buffer (envelope + body header)
//! and aggregation needs a staging slab; allocating them fresh per packet
//! is exactly the per-packet overhead §3.3 warns about. The pool keeps a
//! free list of recycled `Vec<u8>` allocations: [`BufferPool::take`] pops
//! one (a *pool hit*) or allocates (a counted *hot-path alloc*), and
//! [`BufferPool::reclaim`] recovers the allocation from a frozen
//! [`Bytes`] once the frame leaves the in-flight set — which succeeds
//! precisely when no one else still holds a reference (the threaded
//! transports drop theirs at tx completion; the in-process fabric's
//! receiver may legitimately still hold one, which is counted as a miss,
//! not an error).

use bytes::{Bytes, BytesMut};

/// Counters the pool reports back to
/// [`crate::stats::DataPathStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Requests served from the free list.
    pub hits: u64,
    /// Requests that had to allocate.
    pub allocs: u64,
    /// Buffers recovered into the free list.
    pub reclaims: u64,
    /// Reclaim attempts on still-shared buffers.
    pub reclaim_misses: u64,
}

/// A bounded free list of byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    counters: PoolCounters,
    /// Leak ledger: buffers taken and not yet handed back to `reclaim`.
    /// Every `take` must eventually be answered by exactly one `reclaim`
    /// (shared buffers count — a miss still closes the ledger entry), so
    /// a nonzero value at engine drop is a leaked buffer.
    outstanding: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(32)
    }
}

impl BufferPool {
    /// Pool keeping at most `max_buffers` free buffers (excess reclaims
    /// are dropped to bound memory).
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_buffers,
            counters: PoolCounters::default(),
            outstanding: 0,
        }
    }

    /// Take a cleared buffer with at least `min_capacity` bytes of
    /// capacity, preferring a recycled one.
    pub fn take(&mut self, min_capacity: usize) -> BytesMut {
        // Find a free buffer that already has the capacity; otherwise
        // reuse the largest available (growing it amortizes like a fresh
        // Vec, but keeps the allocation count honest).
        self.outstanding += 1;
        if let Some(idx) = self.free.iter().position(|b| b.capacity() >= min_capacity) {
            let mut buf = self.free.swap_remove(idx);
            buf.clear();
            self.counters.hits += 1;
            return BytesMut::from(buf);
        }
        self.counters.allocs += 1;
        BytesMut::with_capacity(min_capacity)
    }

    /// Try to recover the allocation behind `buf` into the free list.
    /// Succeeds only when `buf` is the sole reference; a shared buffer is
    /// counted as a miss and dropped (the other holder keeps it alive).
    pub fn reclaim(&mut self, buf: Bytes) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if buf.is_unique() {
            if self.free.len() < self.max_buffers {
                let v: Vec<u8> = buf.into();
                self.free.push(v);
            }
            self.counters.reclaims += 1;
        } else {
            self.counters.reclaim_misses += 1;
        }
    }

    /// Buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Buffers taken and not yet reclaimed (the leak ledger). A steady
    /// nonzero value equals the frames currently in flight; a value that
    /// stays nonzero after the engine quiesces is a leak.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Cumulative hit/alloc/reclaim counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_allocates_then_hits_after_reclaim() {
        let mut p = BufferPool::new(4);
        let b = p.take(64);
        assert_eq!(p.counters().allocs, 1);
        assert_eq!(p.counters().hits, 0);
        p.reclaim(b.freeze());
        assert_eq!(p.counters().reclaims, 1);
        assert_eq!(p.free_buffers(), 1);
        let b2 = p.take(32);
        assert_eq!(p.counters().hits, 1);
        assert!(b2.capacity() >= 32);
        assert!(b2.is_empty(), "recycled buffer must come back cleared");
    }

    #[test]
    fn shared_buffer_is_a_miss() {
        let mut p = BufferPool::new(4);
        let b = p.take(16).freeze();
        let _other = b.clone();
        p.reclaim(b);
        assert_eq!(p.counters().reclaim_misses, 1);
        assert_eq!(p.free_buffers(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut p = BufferPool::new(2);
        for _ in 0..5 {
            let b = p.take(8);
            p.reclaim(b.freeze());
        }
        assert!(p.free_buffers() <= 2);
    }

    #[test]
    fn outstanding_ledger_tracks_take_and_reclaim() {
        let mut p = BufferPool::new(4);
        assert_eq!(p.outstanding(), 0);
        let a = p.take(64);
        let b = p.take(64);
        assert_eq!(p.outstanding(), 2, "two buffers out");
        p.reclaim(a.freeze());
        assert_eq!(p.outstanding(), 1, "one still held — a would-be leak");
        // A shared reclaim (miss) still closes the ledger entry: custody
        // returned even though the allocation could not be recycled.
        let frozen = b.freeze();
        let _shared = frozen.clone();
        p.reclaim(frozen);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.counters().reclaim_misses, 1);
    }

    #[test]
    fn capacity_preference() {
        let mut p = BufferPool::new(4);
        let small = p.take(8);
        let big = p.take(4096);
        p.reclaim(small.freeze());
        p.reclaim(big.freeze());
        let got = p.take(2048);
        assert!(got.capacity() >= 2048, "must pick the big free buffer");
        assert_eq!(p.counters().hits, 1);
    }
}
