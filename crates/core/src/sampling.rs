//! Initialization-time network sampling (paper §3.4).
//!
//! "According to samplings performed on the different available NICs (this
//! step is done at the NewMadeleine initialization time), an adaptive
//! stripping ratio can be determined." A [`PerfTable`] is the outcome of
//! sampling one rail: a monotone size → one-way-time curve. The adaptive
//! splitting strategy asks [`split_weights`] for per-rail byte shares such
//! that every rail's chunk takes (approximately) the same time — the
//! paper's "fragments for which transfer times are equivalent on their
//! respective networks".

use nmad_model::NicModel;

/// A sampled size → one-way time curve for one rail.
///
/// Times are in microseconds; interpolation is piecewise linear in size,
/// with slope-extrapolation past the largest sample (the slope *is* the
/// inverse asymptotic bandwidth).
#[derive(Clone, Debug)]
pub struct PerfTable {
    sizes: Vec<u64>,
    times_us: Vec<f64>,
}

/// The default sampling ladder: powers of two from 4 B to 16 MiB, the
/// range covered by the paper's plots plus one octave of headroom.
pub fn default_ladder() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s: u64 = 4;
    while s <= 16 << 20 {
        v.push(s);
        s *= 2;
    }
    v
}

impl PerfTable {
    /// Build from `(size, one-way time in us)` samples. Points are sorted
    /// by size; duplicate sizes keep the *last* measurement.
    pub fn new(mut points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "a PerfTable needs at least one sample");
        points.sort_by_key(|p| p.0);
        points.dedup_by_key(|p| p.0);
        assert!(
            points.iter().all(|p| p.1.is_finite() && p.1 > 0.0),
            "sample times must be positive and finite"
        );
        // Enforce monotonicity: a larger transfer can never be faster.
        // Measured jitter can produce tiny inversions; flatten them.
        let mut times: Vec<f64> = points.iter().map(|p| p.1).collect();
        for i in 1..times.len() {
            if times[i] < times[i - 1] {
                times[i] = times[i - 1];
            }
        }
        PerfTable {
            sizes: points.iter().map(|p| p.0).collect(),
            times_us: times,
        }
    }

    /// Seed a table from the analytic NIC model (used before real sampling
    /// has run, and by unit tests).
    pub fn from_analytic(nic: &NicModel, ladder: &[u64]) -> Self {
        let points = ladder
            .iter()
            .map(|&s| (s, nic.analytic_oneway(s as usize).as_us_f64()))
            .collect();
        PerfTable::new(points)
    }

    /// Sampled sizes, ascending.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Interpolated one-way time (µs) for a transfer of `size` bytes.
    pub fn time_for(&self, size: u64) -> f64 {
        let n = self.sizes.len();
        if size <= self.sizes[0] {
            return self.times_us[0];
        }
        if size >= self.sizes[n - 1] {
            if n == 1 {
                return self.times_us[0];
            }
            // Extrapolate with the last slope (inverse asymptotic bw).
            let ds = (self.sizes[n - 1] - self.sizes[n - 2]) as f64;
            let dt = self.times_us[n - 1] - self.times_us[n - 2];
            let slope = (dt / ds).max(0.0);
            return self.times_us[n - 1] + slope * (size - self.sizes[n - 1]) as f64;
        }
        let idx = self.sizes.partition_point(|&s| s <= size) - 1;
        let (s0, s1) = (self.sizes[idx] as f64, self.sizes[idx + 1] as f64);
        let (t0, t1) = (self.times_us[idx], self.times_us[idx + 1]);
        t0 + (t1 - t0) * ((size as f64 - s0) / (s1 - s0))
    }

    /// Largest size this rail can move within `time_us` microseconds
    /// (inverse of [`Self::time_for`]); zero when even the smallest sample
    /// takes longer.
    pub fn size_for(&self, time_us: f64) -> f64 {
        let n = self.sizes.len();
        if time_us <= self.times_us[0] {
            return 0.0;
        }
        if time_us >= self.times_us[n - 1] {
            if n == 1 {
                return self.sizes[0] as f64;
            }
            let ds = (self.sizes[n - 1] - self.sizes[n - 2]) as f64;
            let dt = self.times_us[n - 1] - self.times_us[n - 2];
            if dt <= 0.0 {
                return self.sizes[n - 1] as f64;
            }
            return self.sizes[n - 1] as f64 + ds / dt * (time_us - self.times_us[n - 1]);
        }
        let idx = self.times_us.partition_point(|&t| t <= time_us) - 1;
        let (s0, s1) = (self.sizes[idx] as f64, self.sizes[idx + 1] as f64);
        let (t0, t1) = (self.times_us[idx], self.times_us[idx + 1]);
        if t1 <= t0 {
            return s1;
        }
        s0 + (s1 - s0) * ((time_us - t0) / (t1 - t0))
    }

    /// Effective bandwidth in bytes/second at `size` (diagnostics).
    pub fn bandwidth_at(&self, size: u64) -> f64 {
        size as f64 / (self.time_for(size) * 1e-6)
    }
}

/// Compute per-rail byte weights for splitting `total` bytes across the
/// given rails so all chunks finish at (approximately) the same time:
/// solve `t*` with `Σ size_i(t*) = total` by bisection, then weight rail i
/// by `size_i(t*)`. Rails too slow to contribute get weight 0.
pub fn split_weights(tables: &[&PerfTable], total: u64) -> Vec<f64> {
    assert!(!tables.is_empty(), "need at least one rail table");
    if total == 0 {
        return vec![0.0; tables.len()];
    }
    // Upper bound: the fastest single rail carries everything.
    let hi0 = tables
        .iter()
        .map(|t| t.time_for(total))
        .fold(f64::INFINITY, f64::min);
    let (mut lo, mut hi) = (0.0f64, hi0);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let cap: f64 = tables.iter().map(|t| t.size_for(mid)).sum();
        if cap >= total as f64 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let weights: Vec<f64> = tables.iter().map(|t| t.size_for(hi)).collect();
    debug_assert!(weights.iter().sum::<f64>() > 0.0);
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_model::platform;

    fn myri_table() -> PerfTable {
        PerfTable::from_analytic(&platform::myri_10g(), &default_ladder())
    }

    fn quad_table() -> PerfTable {
        PerfTable::from_analytic(&platform::quadrics_qm500(), &default_ladder())
    }

    #[test]
    fn ladder_covers_paper_range() {
        let l = default_ladder();
        assert_eq!(l[0], 4);
        assert_eq!(*l.last().unwrap(), 16 << 20);
        assert!(l.contains(&(8 << 20)), "8 MB point of the plots");
    }

    #[test]
    fn interpolation_between_samples() {
        let t = PerfTable::new(vec![(100, 10.0), (200, 20.0)]);
        assert!((t.time_for(150) - 15.0).abs() < 1e-9);
        assert_eq!(t.time_for(50), 10.0, "clamp below first sample");
        // Extrapolation continues the last slope: 0.1 us/byte.
        assert!((t.time_for(300) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_roundtrips() {
        let t = myri_table();
        for &s in &[64u64, 4096, 1 << 20, 8 << 20] {
            let time = t.time_for(s);
            let back = t.size_for(time);
            let rel = (back - s as f64).abs() / s as f64;
            assert!(rel < 0.01, "size {s}: roundtrip {back} (rel err {rel})");
        }
    }

    #[test]
    fn size_for_below_latency_floor_is_zero() {
        let t = quad_table();
        assert_eq!(t.size_for(0.1), 0.0, "nothing fits in 0.1 us");
    }

    #[test]
    fn monotonicity_enforced_on_noisy_input() {
        let t = PerfTable::new(vec![(100, 10.0), (200, 9.0), (300, 30.0)]);
        assert!(t.time_for(200) >= t.time_for(100));
    }

    #[test]
    fn analytic_tables_match_paper_anchors() {
        let myri = myri_table();
        let quad = quad_table();
        assert!((myri.time_for(4) - 2.8).abs() < 0.15);
        assert!((quad.time_for(4) - 1.7).abs() < 0.15);
        let bw = myri.bandwidth_at(8 << 20) / 1e6;
        assert!((bw - 1200.0).abs() < 40.0, "myri bw {bw}");
    }

    #[test]
    fn split_weights_equalize_times() {
        let myri = myri_table();
        let quad = quad_table();
        let total = 8u64 << 20;
        let w = split_weights(&[&myri, &quad], total);
        assert_eq!(w.len(), 2);
        let sum: f64 = w.iter().sum();
        assert!((sum - total as f64).abs() / (total as f64) < 0.01);
        // Times on each rail for its share must be within 2% of each other.
        let t0 = myri.time_for(w[0] as u64);
        let t1 = quad.time_for(w[1] as u64);
        assert!(
            (t0 - t1).abs() / t0.max(t1) < 0.02,
            "unbalanced: {t0} vs {t1} us"
        );
        // Myri (faster) must carry the larger share — the paper: "the major
        // part of the initial segment must be sent through Myri-10G".
        assert!(w[0] > w[1]);
        let frac = w[0] / sum;
        assert!(
            (0.52..0.68).contains(&frac),
            "myri fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn split_weights_zero_total() {
        let myri = myri_table();
        let quad = quad_table();
        assert_eq!(split_weights(&[&myri, &quad], 0), vec![0.0, 0.0]);
    }

    #[test]
    fn split_weights_small_message_starves_slow_rail() {
        // For a very small transfer the fast-latency rail should take all
        // of it: the other rail cannot finish anything within t*.
        let myri = myri_table();
        let quad = quad_table();
        let w = split_weights(&[&myri, &quad], 64);
        // Quadrics has the lower latency, so it carries the message.
        assert!(w[1] > 0.0);
        assert!(
            w[0] < 1.0,
            "Myri should carry (almost) nothing of a 64B message, got {}",
            w[0]
        );
    }

    #[test]
    fn split_weights_three_rails() {
        let myri = myri_table();
        let quad = quad_table();
        let sci = PerfTable::from_analytic(&platform::sci_dolphin(), &default_ladder());
        let total = 4u64 << 20;
        let w = split_weights(&[&myri, &quad, &sci], total);
        let sum: f64 = w.iter().sum();
        assert!((sum - total as f64).abs() / (total as f64) < 0.01);
        // Ordering by asymptotic bandwidth: myri > quad > sci.
        assert!(w[0] > w[1] && w[1] > w[2], "weights {w:?}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_table_rejected() {
        PerfTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_time_rejected() {
        PerfTable::new(vec![(10, -1.0)]);
    }
}
