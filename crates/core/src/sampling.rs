//! Network sampling and online recalibration (paper §3.4).
//!
//! "According to samplings performed on the different available NICs (this
//! step is done at the NewMadeleine initialization time), an adaptive
//! stripping ratio can be determined." A [`PerfTable`] is the outcome of
//! sampling one rail: a monotone size → one-way-time curve. The adaptive
//! splitting strategy asks [`split_weights`] for per-rail byte shares such
//! that every rail's chunk takes (approximately) the same time — the
//! paper's "fragments for which transfer times are equivalent on their
//! respective networks".
//!
//! The paper's authors flag init-time sampling as fragile under changing
//! conditions. The [`OnlineCalibrator`] closes that loop: it ingests
//! per-chunk `(rail, size, observed time)` samples from the engine's
//! completion path, maintains per-rail per-size-bucket EWMA corrections
//! over the seeded ladder, and periodically rebuilds monotone
//! [`PerfTable`]s that the adaptive split consults live.

#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

use nmad_model::NicModel;

/// A sampled size → one-way time curve for one rail.
///
/// Times are in microseconds; interpolation is piecewise linear in size,
/// with slope-extrapolation past the largest sample (the slope *is* the
/// inverse asymptotic bandwidth).
#[derive(Clone, Debug)]
pub struct PerfTable {
    sizes: Vec<u64>,
    times_us: Vec<f64>,
}

/// The default sampling ladder: powers of two from 4 B to 16 MiB, the
/// range covered by the paper's plots plus one octave of headroom.
pub fn default_ladder() -> Vec<u64> {
    let mut v = Vec::new();
    let mut s: u64 = 4;
    while s <= 16 << 20 {
        v.push(s);
        s *= 2;
    }
    v
}

impl PerfTable {
    /// Build from `(size, one-way time in us)` samples. Points are sorted
    /// by size; duplicate sizes keep the *last* measurement.
    pub fn new(mut points: Vec<(u64, f64)>) -> Self {
        assert!(!points.is_empty(), "a PerfTable needs at least one sample");
        // Stable sort keeps equal-size samples in input order, so the last
        // element of each run is the freshest measurement; `dedup_by` keeps
        // the *first* of a run, hence the overwrite-in-place pass.
        points.sort_by_key(|p| p.0);
        let mut deduped: Vec<(u64, f64)> = Vec::with_capacity(points.len());
        for p in points {
            match deduped.last_mut() {
                Some(last) if last.0 == p.0 => *last = p,
                _ => deduped.push(p),
            }
        }
        let points = deduped;
        assert!(
            points.iter().all(|p| p.1.is_finite() && p.1 > 0.0),
            "sample times must be positive and finite"
        );
        // Enforce monotonicity: a larger transfer can never be faster.
        // Measured jitter can produce tiny inversions; flatten them.
        let mut times: Vec<f64> = points.iter().map(|p| p.1).collect();
        for i in 1..times.len() {
            if times[i] < times[i - 1] {
                times[i] = times[i - 1];
            }
        }
        PerfTable {
            sizes: points.iter().map(|p| p.0).collect(),
            times_us: times,
        }
    }

    /// Seed a table from the analytic NIC model (used before real sampling
    /// has run, and by unit tests).
    pub fn from_analytic(nic: &NicModel, ladder: &[u64]) -> Self {
        let points = ladder
            .iter()
            .map(|&s| (s, nic.analytic_oneway(s as usize).as_us_f64()))
            .collect();
        PerfTable::new(points)
    }

    /// Sampled sizes, ascending.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Interpolated one-way time (µs) for a transfer of `size` bytes.
    pub fn time_for(&self, size: u64) -> f64 {
        let n = self.sizes.len();
        if size <= self.sizes[0] {
            return self.times_us[0];
        }
        if size >= self.sizes[n - 1] {
            if n == 1 {
                return self.times_us[0];
            }
            // Extrapolate with the last slope (inverse asymptotic bw).
            let ds = (self.sizes[n - 1] - self.sizes[n - 2]) as f64;
            let dt = self.times_us[n - 1] - self.times_us[n - 2];
            let slope = (dt / ds).max(0.0);
            return self.times_us[n - 1] + slope * (size - self.sizes[n - 1]) as f64;
        }
        let idx = self.sizes.partition_point(|&s| s <= size) - 1;
        let (s0, s1) = (self.sizes[idx] as f64, self.sizes[idx + 1] as f64);
        let (t0, t1) = (self.times_us[idx], self.times_us[idx + 1]);
        t0 + (t1 - t0) * ((size as f64 - s0) / (s1 - s0))
    }

    /// Largest size this rail can move within `time_us` microseconds
    /// (inverse of [`Self::time_for`]); zero when even the smallest sample
    /// takes longer.
    pub fn size_for(&self, time_us: f64) -> f64 {
        let n = self.sizes.len();
        if time_us <= self.times_us[0] {
            return 0.0;
        }
        // First index with times[up] >= time_us (times ascend non-strictly).
        // An exact hit lands on the *leftmost* point of a clamp-flattened
        // plateau: the clamp means sizes further right were never actually
        // measured faster, so crediting them to a stalled rail would hand
        // it bytes it cannot move.
        let up = self.times_us.partition_point(|&t| t < time_us);
        if up < n && self.times_us[up] <= time_us {
            return self.sizes[up] as f64;
        }
        if up == n {
            if n == 1 {
                return self.sizes[0] as f64;
            }
            // Strictly past the last sample: extrapolate with the last
            // slope; a flat tail caps capacity at the largest size measured.
            let ds = (self.sizes[n - 1] - self.sizes[n - 2]) as f64;
            let dt = self.times_us[n - 1] - self.times_us[n - 2];
            if dt <= 0.0 {
                return self.sizes[n - 1] as f64;
            }
            return self.sizes[n - 1] as f64 + ds / dt * (time_us - self.times_us[n - 1]);
        }
        // Strict bracket: times[up-1] < time_us < times[up].
        let (s0, s1) = (self.sizes[up - 1] as f64, self.sizes[up] as f64);
        let (t0, t1) = (self.times_us[up - 1], self.times_us[up]);
        s0 + (s1 - s0) * ((time_us - t0) / (t1 - t0))
    }

    /// Effective bandwidth in bytes/second at `size` (diagnostics).
    pub fn bandwidth_at(&self, size: u64) -> f64 {
        size as f64 / (self.time_for(size) * 1e-6)
    }
}

/// Compute per-rail byte weights for splitting `total` bytes across the
/// given rails so all chunks finish at (approximately) the same time:
/// solve `t*` with `Σ size_i(t*) = total` by bisection, then weight rail i
/// by `size_i(t*)`. Rails too slow to contribute get weight 0.
pub fn split_weights(tables: &[&PerfTable], total: u64) -> Vec<f64> {
    assert!(!tables.is_empty(), "need at least one rail table");
    if total == 0 {
        return vec![0.0; tables.len()];
    }
    // Upper bound: the fastest single rail carries everything.
    let hi0 = tables
        .iter()
        .map(|t| t.time_for(total))
        .fold(f64::INFINITY, f64::min);
    let (mut lo, mut hi) = (0.0f64, hi0);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let cap: f64 = tables.iter().map(|t| t.size_for(mid)).sum();
        if cap >= total as f64 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut weights: Vec<f64> = tables.iter().map(|t| t.size_for(hi)).collect();
    // Renormalize to exactly `total`: at the bisection's final `hi` the
    // capacities can over- or undershoot (flat table tails make size_for
    // jump), and the caller divides these into byte counts — shares that
    // don't sum to the message size would silently drop or invent bytes.
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 {
        let scale = total as f64 / sum;
        for w in &mut weights {
            *w *= scale;
        }
    } else {
        // Degenerate tables (all-flat plateaus) can yield zero capacity at
        // every probed time; fall back to an even split rather than NaN.
        let even = total as f64 / weights.len() as f64;
        weights.fill(even);
    }
    debug_assert!(
        weights.iter().all(|w| *w >= 0.0),
        "split weights must be non-negative: {weights:?}"
    );
    debug_assert!(
        (weights.iter().sum::<f64>() - total as f64).abs() <= 1e-6 * total as f64,
        "split weights must sum to total {total}: {weights:?}"
    );
    weights
}

/// Per-rail share of splitting `reference` bytes, in permille (sums to
/// 1000). This is the one-number-per-rail summary the calibrator snapshots
/// after every rebuild and the `calibrate` obs event carries.
pub fn split_ratio_permille(tables: &[&PerfTable], reference: u64) -> Vec<u16> {
    let w = split_weights(tables, reference.max(1));
    let sum: f64 = w.iter().sum();
    let mut out: Vec<u16> = w
        .iter()
        .map(|x| ((x / sum) * 1000.0).round() as u16)
        .collect();
    // Push any rounding residue onto the largest share so Σ == 1000.
    let total: i32 = out.iter().map(|&p| i32::from(p)).sum();
    if let Some(max) = out.iter_mut().max() {
        *max = (i32::from(*max) + (1000 - total)).clamp(0, 1000) as u16;
    }
    out
}

/// Knobs of the [`OnlineCalibrator`]. Lives here (not in `config.rs`) so
/// the calibrator is usable standalone; [`crate::EngineConfig`] embeds it.
#[derive(Clone, Debug)]
pub struct CalibrationConfig {
    /// Master switch. Off by default: the engine then behaves exactly as
    /// before (frozen init-time tables).
    pub enabled: bool,
    /// EWMA smoothing factor applied to per-bucket corrections, in (0, 1].
    /// Effective step is `alpha * sample_weight`, so down-weighted samples
    /// (rails under suspicion) move the estimate proportionally less.
    pub alpha: f64,
    /// Recalibration cadence: rebuild the live tables after this many
    /// accepted samples.
    pub rebuild_every: u32,
    /// Total accepted samples required before the first rebuild — keeps a
    /// couple of noisy early chunks from immediately skewing the split.
    pub min_samples: u32,
    /// Clamp on the per-bucket correction ratio (and its inverse): a
    /// single wild measurement can claim at most this slowdown/speedup.
    pub max_correction: f64,
    /// Correction floor applied to every bucket of a rail when it fails
    /// over (transitions to `Down`): its table immediately reads
    /// `failover_penalty`× slower, and the rail re-earns traffic gradually
    /// as fresh samples pull the EWMA back down.
    pub failover_penalty: f64,
    /// Message size whose split ratio the history snapshots (diagnostics
    /// and the `calibrate` obs event).
    pub reference_size: u64,
    /// Per-rebuild multiplicative decay applied to bucket sample weights,
    /// in (0, 1]. A bucket that stops receiving samples decays below the
    /// staleness floor after a few rebuilds and is treated as unsampled
    /// again, so fresher neighbouring buckets interpolate over it. Without
    /// this, one pre-drift measurement in a large-size bucket would pin
    /// the split ratio forever once the traffic mix shifts to smaller
    /// chunks. `1.0` disables staleness (buckets stay authoritative).
    pub stale_decay: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            enabled: false,
            alpha: 0.25,
            rebuild_every: 16,
            min_samples: 8,
            max_correction: 16.0,
            failover_penalty: 4.0,
            reference_size: 1 << 20,
            stale_decay: 0.5,
        }
    }
}

impl CalibrationConfig {
    /// Sanity-check parameter ranges.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "calibration alpha {} must be in (0, 1]",
            self.alpha
        );
        assert!(self.rebuild_every >= 1, "rebuild_every must be >= 1");
        assert!(
            self.max_correction >= 1.0,
            "max_correction {} must be >= 1",
            self.max_correction
        );
        assert!(
            self.failover_penalty >= 1.0 && self.failover_penalty <= self.max_correction,
            "failover_penalty {} must be in [1, max_correction {}]",
            self.failover_penalty,
            self.max_correction
        );
        assert!(self.reference_size > 0, "reference_size must be positive");
        assert!(
            self.stale_decay > 0.0 && self.stale_decay <= 1.0,
            "stale_decay {} must be in (0, 1]",
            self.stale_decay
        );
    }
}

/// One history entry: the split ratio right after a rebuild.
#[derive(Clone, Debug)]
pub struct CalibrationSnapshot {
    /// Rebuild ordinal (1-based).
    pub rebuild: u64,
    /// Accepted samples ingested up to this rebuild.
    pub samples: u64,
    /// Per-rail permille share of a [`CalibrationConfig::reference_size`]
    /// split under the freshly rebuilt tables.
    pub permille: Vec<u16>,
}

/// Per-(rail, ladder-bucket) EWMA state.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// EWMA of `observed / predicted` time. 1.0 = the seed table is right.
    corr: f64,
    /// Accumulated sample weight, decayed by
    /// [`CalibrationConfig::stale_decay`] on every rebuild; below
    /// [`MIN_BUCKET_WEIGHT`] the bucket counts as unmeasured again.
    weight: f64,
}

/// Staleness floor: buckets whose decayed weight falls below this are
/// treated as unsampled by [`OnlineCalibrator::rebuild`] and re-derived
/// from their fresher neighbours. With the default `stale_decay` of 0.5 a
/// single full-weight sample stays authoritative for two rebuilds.
const MIN_BUCKET_WEIGHT: f64 = 0.2;

/// Closes the sampling loop: turns live per-chunk transfer times back into
/// the [`PerfTable`]s the adaptive split consults (see module docs).
///
/// The calibrator never mutates its seed tables. Each accepted sample
/// updates an EWMA *correction ratio* (`observed / seed-predicted`) in the
/// ladder bucket nearest the chunk size; [`Self::rebuild`] multiplies the
/// seed curve by the corrections (unsampled buckets interpolate between
/// their sampled neighbours in log-size space, boundary buckets carry
/// flat) and re-runs the monotonicity clamp. Keeping the analytic seed as
/// the prior means a half-empty sample set degrades to "what init-time
/// sampling believed", not to garbage.
#[derive(Clone, Debug)]
pub struct OnlineCalibrator {
    cfg: CalibrationConfig,
    ladder: Vec<u64>,
    base: Vec<PerfTable>,
    buckets: Vec<Vec<Bucket>>,
    /// Per-rail failover multiplier applied *outside* the EWMA and its
    /// `max_correction` clamp (see [`Self::penalize`]). 1.0 = no penalty.
    penalty: Vec<f64>,
    since_rebuild: u32,
    samples: u64,
    rebuilds: u64,
    history: Vec<CalibrationSnapshot>,
}

impl OnlineCalibrator {
    /// Build over seed tables (one per rail) and a sampling ladder.
    pub fn new(base: Vec<PerfTable>, ladder: Vec<u64>, cfg: CalibrationConfig) -> Self {
        cfg.validate();
        assert!(!base.is_empty(), "calibrator needs at least one rail table");
        assert!(!ladder.is_empty(), "calibrator needs a non-empty ladder");
        let mut ladder = ladder;
        ladder.sort_unstable();
        ladder.dedup();
        let buckets = vec![
            vec![
                Bucket {
                    corr: 1.0,
                    weight: 0.0
                };
                ladder.len()
            ];
            base.len()
        ];
        let penalty = vec![1.0; base.len()];
        OnlineCalibrator {
            cfg,
            ladder,
            base,
            buckets,
            penalty,
            since_rebuild: 0,
            samples: 0,
            rebuilds: 0,
            history: Vec::new(),
        }
    }

    /// The ladder bucket nearest `size` in log space.
    fn bucket_for(&self, size: u64) -> usize {
        let idx = self.ladder.partition_point(|&s| s < size);
        if idx == 0 {
            return 0;
        }
        if idx == self.ladder.len() {
            return self.ladder.len() - 1;
        }
        // Compare geometric distance: size/lo vs hi/size.
        let (lo, hi) = (self.ladder[idx - 1] as f64, self.ladder[idx] as f64);
        let s = size as f64;
        if s / lo <= hi / s {
            idx - 1
        } else {
            idx
        }
    }

    /// Ingest one completed-chunk measurement. `weight` in (0, 1] scales
    /// the EWMA step (health down-weighting); non-positive weights and
    /// non-finite times are rejected so a sick rail cannot poison state.
    pub fn observe(&mut self, rail: usize, size: u64, observed_us: f64, weight: f64) {
        if rail >= self.base.len()
            || size == 0
            || !observed_us.is_finite()
            || observed_us <= 0.0
            || !weight.is_finite()
            || weight <= 0.0
        {
            return;
        }
        let predicted = self.base[rail].time_for(size);
        if !predicted.is_finite() || predicted <= 0.0 {
            return;
        }
        let ratio =
            (observed_us / predicted).clamp(1.0 / self.cfg.max_correction, self.cfg.max_correction);
        let bucket = self.bucket_for(size);
        let step = (self.cfg.alpha * weight.min(1.0)).clamp(0.0, 1.0);
        let b = &mut self.buckets[rail][bucket];
        b.corr += step * (ratio - b.corr);
        b.weight += weight.min(1.0);
        // Re-earning: every accepted sample on a penalized rail is fresh
        // evidence the rail moves bytes again, so the failover multiplier
        // decays toward neutral at the EWMA's own pace.
        let p = &mut self.penalty[rail];
        if *p > 1.0 {
            *p = 1.0 + (1.0 - step) * (*p - 1.0);
            if *p < 1.0 + 1e-6 {
                *p = 1.0;
            }
        }
        self.samples += 1;
        self.since_rebuild = self.since_rebuild.saturating_add(1);
    }

    /// Whether enough samples accrued for the next [`Self::rebuild`].
    pub fn due(&self) -> bool {
        self.samples >= u64::from(self.cfg.min_samples)
            && self.since_rebuild >= self.cfg.rebuild_every
    }

    /// Failover decay: mark `rail` as `failover_penalty`× slower than its
    /// EWMA currently reads, so the rebuilt table strips its byte share
    /// and the rail re-earns it through fresh measurements.
    ///
    /// The penalty is a separate multiplier, deliberately outside the
    /// per-bucket EWMA and its `max_correction` clamp: under saturation
    /// every rail's EWMA can sit pinned at `max_correction` (queueing
    /// delay reads as "slow" everywhere), and raising the dead rail's
    /// buckets to an absolute level would be a relative no-op — the split
    /// would keep feeding a black hole. A multiplier guarantees the strip
    /// is relative to wherever the siblings are.
    pub fn penalize(&mut self, rail: usize) {
        if rail >= self.penalty.len() {
            return;
        }
        self.penalty[rail] = self.penalty[rail].max(self.cfg.failover_penalty);
    }

    /// Effective correction per ladder bucket: sampled buckets use their
    /// EWMA, gaps interpolate linearly in ladder-index (≈ log-size) space,
    /// and buckets outside the sampled range carry the boundary value flat
    /// (a rail measured 2× slow at 1 MiB is presumed 2× slow at 4 MiB —
    /// the bandwidth regime is what drifts).
    fn effective_corr(&self, rail: usize) -> Vec<f64> {
        let bs = &self.buckets[rail];
        let penalty = self.penalty[rail];
        let sampled: Vec<usize> = (0..bs.len())
            .filter(|&i| bs[i].weight >= MIN_BUCKET_WEIGHT)
            .collect();
        if sampled.is_empty() {
            return vec![penalty; bs.len()];
        }
        let mut out = Vec::with_capacity(bs.len());
        let mut next = 0usize; // index into `sampled`, first entry >= i
        for i in 0..bs.len() {
            while next < sampled.len() && sampled[next] < i {
                next += 1;
            }
            if next < sampled.len() && sampled[next] == i {
                out.push(bs[i].corr);
                continue;
            }
            let right = sampled.get(next).copied();
            let left = next.checked_sub(1).map(|j| sampled[j]);
            out.push(match (left, right) {
                (Some(l), Some(r)) => {
                    let f = (i - l) as f64 / (r - l) as f64;
                    bs[l].corr + (bs[r].corr - bs[l].corr) * f
                }
                (Some(l), None) => bs[l].corr,
                (None, Some(r)) => bs[r].corr,
                (None, None) => 1.0,
            });
        }
        // The failover multiplier rides on top of the EWMA, unclamped:
        // it must strip share even when every bucket is pinned at
        // `max_correction` (see `penalize`).
        if penalty > 1.0 {
            for c in &mut out {
                *c *= penalty;
            }
        }
        out
    }

    /// Rebuild live tables from the seed curves and current corrections,
    /// snapshot the resulting reference-size split ratio into the history,
    /// and reset the cadence counter. Returns one monotone table per rail.
    pub fn rebuild(&mut self) -> Vec<PerfTable> {
        let tables: Vec<PerfTable> = (0..self.base.len())
            .map(|rail| {
                let corr = self.effective_corr(rail);
                let points: Vec<(u64, f64)> = self
                    .ladder
                    .iter()
                    .zip(&corr)
                    .map(|(&s, &c)| (s, self.base[rail].time_for(s) * c))
                    .collect();
                PerfTable::new(points)
            })
            .collect();
        self.rebuilds += 1;
        self.since_rebuild = 0;
        // Age every bucket: a bucket the traffic mix no longer exercises
        // decays below the staleness floor within a few rebuilds and stops
        // pinning its size regime (fresher neighbours take over via
        // interpolation). Buckets that keep receiving samples keep their
        // authority — `observe` replenishes the weight.
        for rail in &mut self.buckets {
            for b in rail.iter_mut() {
                b.weight *= self.cfg.stale_decay;
                if b.weight < MIN_BUCKET_WEIGHT {
                    b.weight = 0.0;
                }
            }
        }
        let refs: Vec<&PerfTable> = tables.iter().collect();
        self.history.push(CalibrationSnapshot {
            rebuild: self.rebuilds,
            samples: self.samples,
            permille: split_ratio_permille(&refs, self.cfg.reference_size),
        });
        tables
    }

    /// Split-ratio snapshots, one per rebuild (oldest first).
    pub fn history(&self) -> &[CalibrationSnapshot] {
        &self.history
    }

    /// Rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Accepted samples ingested so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Effective correction ratio the next rebuild would apply to `rail`
    /// at `size` (diagnostics: `nmad calibrate` prints these).
    pub fn correction_at(&self, rail: usize, size: u64) -> f64 {
        if rail >= self.buckets.len() {
            return 1.0;
        }
        self.effective_corr(rail)[self.bucket_for(size)]
    }

    /// The calibrator's configuration.
    pub fn config(&self) -> &CalibrationConfig {
        &self.cfg
    }

    /// The sampling ladder the corrections are bucketed over.
    pub fn ladder(&self) -> &[u64] {
        &self.ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_model::platform;

    fn myri_table() -> PerfTable {
        PerfTable::from_analytic(&platform::myri_10g(), &default_ladder())
    }

    fn quad_table() -> PerfTable {
        PerfTable::from_analytic(&platform::quadrics_qm500(), &default_ladder())
    }

    #[test]
    fn ladder_covers_paper_range() {
        let l = default_ladder();
        assert_eq!(l[0], 4);
        assert_eq!(*l.last().unwrap(), 16 << 20);
        assert!(l.contains(&(8 << 20)), "8 MB point of the plots");
    }

    #[test]
    fn interpolation_between_samples() {
        let t = PerfTable::new(vec![(100, 10.0), (200, 20.0)]);
        assert!((t.time_for(150) - 15.0).abs() < 1e-9);
        assert_eq!(t.time_for(50), 10.0, "clamp below first sample");
        // Extrapolation continues the last slope: 0.1 us/byte.
        assert!((t.time_for(300) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_roundtrips() {
        let t = myri_table();
        for &s in &[64u64, 4096, 1 << 20, 8 << 20] {
            let time = t.time_for(s);
            let back = t.size_for(time);
            let rel = (back - s as f64).abs() / s as f64;
            assert!(rel < 0.01, "size {s}: roundtrip {back} (rel err {rel})");
        }
    }

    #[test]
    fn size_for_below_latency_floor_is_zero() {
        let t = quad_table();
        assert_eq!(t.size_for(0.1), 0.0, "nothing fits in 0.1 us");
    }

    #[test]
    fn monotonicity_enforced_on_noisy_input() {
        let t = PerfTable::new(vec![(100, 10.0), (200, 9.0), (300, 30.0)]);
        assert!(t.time_for(200) >= t.time_for(100));
    }

    #[test]
    fn analytic_tables_match_paper_anchors() {
        let myri = myri_table();
        let quad = quad_table();
        assert!((myri.time_for(4) - 2.8).abs() < 0.15);
        assert!((quad.time_for(4) - 1.7).abs() < 0.15);
        let bw = myri.bandwidth_at(8 << 20) / 1e6;
        assert!((bw - 1200.0).abs() < 40.0, "myri bw {bw}");
    }

    #[test]
    fn split_weights_equalize_times() {
        let myri = myri_table();
        let quad = quad_table();
        let total = 8u64 << 20;
        let w = split_weights(&[&myri, &quad], total);
        assert_eq!(w.len(), 2);
        let sum: f64 = w.iter().sum();
        assert!((sum - total as f64).abs() / (total as f64) < 0.01);
        // Times on each rail for its share must be within 2% of each other.
        let t0 = myri.time_for(w[0] as u64);
        let t1 = quad.time_for(w[1] as u64);
        assert!(
            (t0 - t1).abs() / t0.max(t1) < 0.02,
            "unbalanced: {t0} vs {t1} us"
        );
        // Myri (faster) must carry the larger share — the paper: "the major
        // part of the initial segment must be sent through Myri-10G".
        assert!(w[0] > w[1]);
        let frac = w[0] / sum;
        assert!(
            (0.52..0.68).contains(&frac),
            "myri fraction {frac} out of plausible band"
        );
    }

    #[test]
    fn split_weights_zero_total() {
        let myri = myri_table();
        let quad = quad_table();
        assert_eq!(split_weights(&[&myri, &quad], 0), vec![0.0, 0.0]);
    }

    #[test]
    fn split_weights_small_message_starves_slow_rail() {
        // For a very small transfer the fast-latency rail should take all
        // of it: the other rail cannot finish anything within t*.
        let myri = myri_table();
        let quad = quad_table();
        let w = split_weights(&[&myri, &quad], 64);
        // Quadrics has the lower latency, so it carries the message.
        assert!(w[1] > 0.0);
        assert!(
            w[0] < 1.0,
            "Myri should carry (almost) nothing of a 64B message, got {}",
            w[0]
        );
    }

    #[test]
    fn split_weights_three_rails() {
        let myri = myri_table();
        let quad = quad_table();
        let sci = PerfTable::from_analytic(&platform::sci_dolphin(), &default_ladder());
        let total = 4u64 << 20;
        let w = split_weights(&[&myri, &quad, &sci], total);
        let sum: f64 = w.iter().sum();
        assert!((sum - total as f64).abs() / (total as f64) < 0.01);
        // Ordering by asymptotic bandwidth: myri > quad > sci.
        assert!(w[0] > w[1] && w[1] > w[2], "weights {w:?}");
    }

    #[test]
    fn dedup_keeps_last_measurement() {
        // Regression: dedup_by_key kept the *first* sample of a size run,
        // contradicting the doc (and starving the calibrator of fresh data).
        let t = PerfTable::new(vec![(100, 10.0), (100, 20.0), (200, 30.0)]);
        assert_eq!(t.time_for(100), 20.0, "freshest sample must win");
        let t = PerfTable::new(vec![(100, 20.0), (100, 10.0)]);
        assert_eq!(t.time_for(100), 10.0);
    }

    #[test]
    fn size_for_returns_leftmost_plateau_size() {
        // Monotonicity clamp flattens 300/400 up to 10.0; the inverse must
        // not credit the stalled region (sizes 300/400) as movable in 10us.
        let t = PerfTable::new(vec![
            (100, 5.0),
            (200, 10.0),
            (300, 9.0),
            (400, 9.5),
            (500, 20.0),
        ]);
        assert_eq!(t.size_for(10.0), 200.0, "leftmost plateau size");
        // Strictly above the plateau interpolation resumes from its right
        // edge toward the next measured point.
        assert!((t.size_for(15.0) - 450.0).abs() < 1e-9);
        // A plateau at the table's end: an exact hit still answers with
        // the plateau's left edge, not the flat-tail capacity cap.
        let t = PerfTable::new(vec![(100, 5.0), (200, 10.0), (300, 10.0)]);
        assert_eq!(t.size_for(10.0), 200.0);
        assert_eq!(t.size_for(12.0), 300.0, "past a flat tail: capped");
    }

    #[test]
    fn split_weights_renormalize_with_flat_tails() {
        // Flat tails make Σ size_i(t*) miss `total` at the bisection's
        // final bracket; the weights must still sum to the message size.
        let a = PerfTable::new(vec![(100, 10.0), (200, 20.0), (300, 20.0), (400, 20.0)]);
        let b = PerfTable::new(vec![(100, 10.0), (400, 40.0)]);
        let total = 600u64;
        let w = split_weights(&[&a, &b], total);
        assert!(w.iter().all(|&x| x >= 0.0), "weights {w:?}");
        let sum: f64 = w.iter().sum();
        assert!(
            (sum - total as f64).abs() <= 1e-6 * total as f64,
            "sum {sum} != total {total}"
        );
    }

    #[test]
    fn split_weights_all_flat_tables_fall_back_to_even() {
        let a = PerfTable::new(vec![(100, 10.0), (200, 10.0)]);
        let b = PerfTable::new(vec![(100, 10.0), (200, 10.0)]);
        let w = split_weights(&[&a, &b], 1000);
        assert_eq!(w, vec![500.0, 500.0]);
    }

    #[test]
    fn ratio_permille_sums_to_1000() {
        let myri = myri_table();
        let quad = quad_table();
        let p = split_ratio_permille(&[&myri, &quad], 1 << 20);
        assert_eq!(p.iter().map(|&x| u32::from(x)).sum::<u32>(), 1000);
        assert!(p[0] > p[1], "myri carries the larger share");
    }

    fn test_calibrator() -> OnlineCalibrator {
        let ladder = default_ladder();
        let base = vec![
            PerfTable::from_analytic(&platform::myri_10g(), &ladder),
            PerfTable::from_analytic(&platform::quadrics_qm500(), &ladder),
        ];
        let cfg = CalibrationConfig {
            enabled: true,
            min_samples: 4,
            rebuild_every: 4,
            ..Default::default()
        };
        OnlineCalibrator::new(base, ladder, cfg)
    }

    #[test]
    fn calibrator_shifts_share_away_from_degraded_rail() {
        let mut c = test_calibrator();
        let before = {
            let t = c.rebuild();
            let refs: Vec<&PerfTable> = t.iter().collect();
            split_ratio_permille(&refs, 1 << 20)
        };
        // Rail 0 reports 2x the predicted time at 1 MiB, repeatedly.
        let pred = c.base[0].time_for(1 << 20);
        for _ in 0..32 {
            c.observe(0, 1 << 20, pred * 2.0, 1.0);
        }
        assert!(c.due());
        let t = c.rebuild();
        let refs: Vec<&PerfTable> = t.iter().collect();
        let after = split_ratio_permille(&refs, 1 << 20);
        assert!(
            after[0] < before[0],
            "degraded rail share must drop: {before:?} -> {after:?}"
        );
        assert_eq!(c.history().len(), 2);
    }

    #[test]
    fn calibrator_down_weights_suspect_samples() {
        let mut a = test_calibrator();
        let mut b = test_calibrator();
        let pred = a.base[0].time_for(1 << 20);
        for _ in 0..8 {
            a.observe(0, 1 << 20, pred * 4.0, 1.0);
            b.observe(0, 1 << 20, pred * 4.0, 0.25);
        }
        let full = a.correction_at(0, 1 << 20);
        let light = b.correction_at(0, 1 << 20);
        assert!(
            light < full,
            "down-weighted samples must move the EWMA less: {light} vs {full}"
        );
    }

    #[test]
    fn calibrator_penalize_reads_slow_until_reearned() {
        let mut c = test_calibrator();
        c.penalize(0);
        let corr = c.correction_at(0, 1 << 20);
        assert!((corr - c.config().failover_penalty).abs() < 1e-9);
        let t = c.rebuild();
        // Penalized rail's table is slower than its seed across the ladder.
        assert!(t[0].time_for(1 << 20) > c.base[0].time_for(1 << 20) * 2.0);
        // Fresh on-prediction samples pull the correction back down.
        let pred = c.base[0].time_for(1 << 20);
        for _ in 0..64 {
            c.observe(0, 1 << 20, pred, 1.0);
        }
        assert!(c.correction_at(0, 1 << 20) < corr * 0.5);
    }

    #[test]
    fn calibrator_penalty_strips_share_even_at_saturation() {
        let mut c = test_calibrator();
        // Sustained queueing delay reads "slow" on every rail: both EWMAs
        // pin at max_correction and carry no relative signal. An absolute
        // penalty would be a no-op here — the regression this guards.
        let sat = c.config().max_correction * 4.0;
        for _ in 0..64 {
            for rail in 0..2 {
                let pred = c.base[rail].time_for(1 << 20);
                c.observe(rail, 1 << 20, pred * sat, 1.0);
            }
        }
        let t = c.rebuild();
        let refs: Vec<&PerfTable> = t.iter().collect();
        let before = split_ratio_permille(&refs, 1 << 20);
        c.penalize(0);
        let t = c.rebuild();
        let refs: Vec<&PerfTable> = t.iter().collect();
        let after = split_ratio_permille(&refs, 1 << 20);
        assert!(
            after[0] < before[0],
            "penalty must stay relative under saturation: {before:?} -> {after:?}"
        );
        // Fresh on-prediction samples both decay the multiplier and pull
        // the EWMA back: the rail re-earns its share.
        let pred = c.base[0].time_for(1 << 20);
        for _ in 0..64 {
            c.observe(0, 1 << 20, pred, 1.0);
        }
        let t = c.rebuild();
        let refs: Vec<&PerfTable> = t.iter().collect();
        let healed = split_ratio_permille(&refs, 1 << 20);
        assert!(
            healed[0] > after[0],
            "share must be re-earnable: {after:?} -> {healed:?}"
        );
    }

    #[test]
    fn calibrator_interpolates_unsampled_buckets() {
        let mut c = test_calibrator();
        let p64k = c.base[0].time_for(64 << 10);
        let p1m = c.base[0].time_for(1 << 20);
        for _ in 0..32 {
            c.observe(0, 64 << 10, p64k * 2.0, 1.0);
            c.observe(0, 1 << 20, p1m * 2.0, 1.0);
        }
        // 256 KiB sits between the two sampled buckets: its correction
        // must interpolate to ~2x, not stay at the neutral 1.0.
        let mid = c.correction_at(0, 256 << 10);
        assert!(mid > 1.5, "interpolated correction {mid}");
        // Beyond the sampled range the boundary carries flat.
        let high = c.correction_at(0, 8 << 20);
        assert!(high > 1.5, "carried correction {high}");
        // The other rail is untouched.
        assert!((c.correction_at(1, 1 << 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibrator_stale_bucket_decays_to_fresher_neighbour() {
        let mut c = test_calibrator();
        // One early on-prediction sample at 1 MiB, then the traffic mix
        // shifts: only 64 KiB chunks, all reading 2x slow.
        let p1m = c.base[0].time_for(1 << 20);
        c.observe(0, 1 << 20, p1m, 1.0);
        let p64k = c.base[0].time_for(64 << 10);
        for _ in 0..4 {
            for _ in 0..16 {
                c.observe(0, 64 << 10, p64k * 2.0, 1.0);
            }
            let _ = c.rebuild();
        }
        // The lone stale 1 MiB sample must not pin the large-size regime:
        // after a few rebuilds the 64 KiB correction carries up.
        let high = c.correction_at(0, 1 << 20);
        assert!(
            high > 1.5,
            "stale bucket must yield to fresher neighbour: corr {high}"
        );
    }

    #[test]
    fn calibrator_rejects_garbage_samples() {
        let mut c = test_calibrator();
        c.observe(0, 1 << 20, f64::NAN, 1.0);
        c.observe(0, 1 << 20, -5.0, 1.0);
        c.observe(0, 1 << 20, 10.0, 0.0);
        c.observe(9, 1 << 20, 10.0, 1.0);
        c.observe(0, 0, 10.0, 1.0);
        assert_eq!(c.samples(), 0);
        assert!((c.correction_at(0, 1 << 20) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_table_rejected() {
        PerfTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_time_rejected() {
        PerfTable::new(vec![(10, -1.0)]);
    }
}
