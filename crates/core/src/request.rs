//! The collect layer: request handles, segment states, and the backlog of
//! "waiting packs" the optimizing schedulers work on (paper Figure 1).

use nmad_wire::{ConnId, MsgId};

/// Handle to a submitted (non-blocking) send.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SendId(pub u64);

/// Handle to a posted (non-blocking) receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecvId(pub u64);

/// Identifies one segment of one message on one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SegKey {
    /// Connection.
    pub conn: ConnId,
    /// Message id (per-connection sequence assigned at submit).
    pub msg_id: MsgId,
    /// Segment index within the message.
    pub seg_index: u16,
}

/// Lifecycle of a waiting segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegPhase {
    /// Small enough for the eager track; a strategy may send or aggregate
    /// it at any time.
    EagerReady,
    /// Large segment: a rendezvous request is out, waiting for the grant.
    /// Not schedulable yet.
    RdvRequested,
    /// Rendezvous granted: the strategy may emit chunks for it.
    RdvGranted,
}

/// One chunk of a split plan attached to a granted segment (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedChunk {
    /// Rail earmarked to carry the chunk.
    pub rail: usize,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Chunk length.
    pub len: u64,
    /// Set once a tx decision consumed the chunk.
    pub taken: bool,
}

/// The result of consuming a chunk from the backlog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TakenChunk {
    /// Segment the chunk came from.
    pub key: SegKey,
    /// Total segments of the parent message.
    pub total_segs: u16,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Chunk length.
    pub len: u64,
    /// Chunk sequence number within the segment.
    pub chunk_index: u16,
    /// True when this take fully consumed the segment (it left the
    /// backlog).
    pub seg_exhausted: bool,
}

/// A waiting segment — the unit the optimizing schedulers reason about.
#[derive(Clone, Debug)]
pub struct BacklogItem {
    /// Segment identity.
    pub key: SegKey,
    /// Total segments in the parent message.
    pub total_segs: u16,
    /// Segment payload size in bytes.
    pub size: u64,
    /// Lifecycle phase.
    pub phase: SegPhase,
    /// Next unconsumed byte (chunk consumption without a plan).
    pub next_offset: u64,
    /// Chunk counter for wire diagnostics.
    pub chunks_emitted: u16,
    /// Optional split plan (set once by a splitting strategy).
    pub plan: Option<Vec<PlannedChunk>>,
    /// Monotonic submit order, for FIFO fairness.
    pub submit_seq: u64,
}

impl BacklogItem {
    /// Bytes not yet consumed by any tx decision.
    pub fn remaining(&self) -> u64 {
        match &self.plan {
            None => self.size - self.next_offset,
            Some(plan) => plan.iter().filter(|c| !c.taken).map(|c| c.len).sum(),
        }
    }
}

/// The set of waiting segments, in submit order.
///
/// This is the "waiting packs" box of the paper's Figure 1: requests
/// accumulate here while NICs are busy; each NIC-idle event lets the
/// strategy pick (and remove) work from it.
#[derive(Debug, Default)]
pub struct Backlog {
    items: Vec<BacklogItem>,
    next_seq: u64,
}

impl Backlog {
    /// Empty backlog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting segments.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueue a segment (engine-side).
    pub fn push(&mut self, key: SegKey, total_segs: u16, size: u64, phase: SegPhase) {
        let submit_seq = self.next_seq;
        self.next_seq += 1;
        self.items.push(BacklogItem {
            key,
            total_segs,
            size,
            phase,
            next_offset: 0,
            chunks_emitted: 0,
            plan: None,
            submit_seq,
        });
    }

    /// Waiting eager segments, in submit order.
    pub fn eager_items(&self) -> impl Iterator<Item = &BacklogItem> {
        self.items
            .iter()
            .filter(|i| i.phase == SegPhase::EagerReady)
    }

    /// Granted (chunk-schedulable) segments, in submit order.
    pub fn granted_items(&self) -> impl Iterator<Item = &BacklogItem> {
        self.items
            .iter()
            .filter(|i| i.phase == SegPhase::RdvGranted)
    }

    /// Whether any segment is waiting for a rendezvous grant.
    pub fn has_rdv_pending(&self) -> bool {
        self.items.iter().any(|i| i.phase == SegPhase::RdvRequested)
    }

    fn position(&self, key: SegKey) -> Option<usize> {
        self.items.iter().position(|i| i.key == key)
    }

    /// Mark a rendezvous-requested segment as granted. Returns false if the
    /// segment is unknown or not awaiting a grant.
    pub fn grant(&mut self, key: SegKey) -> bool {
        match self.position(key) {
            Some(idx) if self.items[idx].phase == SegPhase::RdvRequested => {
                self.items[idx].phase = SegPhase::RdvGranted;
                true
            }
            _ => false,
        }
    }

    /// Remove and return an eager segment (strategy committed to send it).
    pub fn take_eager(&mut self, key: SegKey) -> Option<BacklogItem> {
        let idx = self.position(key)?;
        if self.items[idx].phase != SegPhase::EagerReady {
            return None;
        }
        Some(self.items.remove(idx))
    }

    /// Consume up to `max_len` bytes from the front of a granted segment
    /// that has *no* split plan. The item is removed once fully consumed.
    pub fn take_chunk(&mut self, key: SegKey, max_len: u64) -> Option<TakenChunk> {
        assert!(max_len > 0, "take_chunk with zero max_len");
        let idx = self.position(key)?;
        let item = &mut self.items[idx];
        if item.phase != SegPhase::RdvGranted || item.plan.is_some() {
            return None;
        }
        let offset = item.next_offset;
        let len = (item.size - offset).min(max_len);
        if len == 0 {
            return None;
        }
        let chunk_index = item.chunks_emitted;
        item.next_offset += len;
        item.chunks_emitted += 1;
        let total_segs = item.total_segs;
        let seg_exhausted = item.next_offset == item.size;
        if seg_exhausted {
            self.items.remove(idx);
        }
        Some(TakenChunk {
            key,
            total_segs,
            offset,
            len,
            chunk_index,
            seg_exhausted,
        })
    }

    /// Attach a split plan to a granted segment. The plan must cover
    /// exactly the unconsumed remainder, in offset order. Returns false on
    /// any mismatch (unknown segment, wrong phase, plan already set, bad
    /// coverage).
    pub fn set_plan(&mut self, key: SegKey, chunks: Vec<PlannedChunk>) -> bool {
        let Some(idx) = self.position(key) else {
            return false;
        };
        let item = &mut self.items[idx];
        if item.phase != SegPhase::RdvGranted || item.plan.is_some() {
            return false;
        }
        let mut expect = item.next_offset;
        for c in &chunks {
            if c.offset != expect || c.len == 0 || c.taken {
                return false;
            }
            expect += c.len;
        }
        if expect != item.size {
            return false;
        }
        item.plan = Some(chunks);
        true
    }

    /// Take the first untaken planned chunk earmarked for `rail`, across
    /// all granted segments in submit order. Fully-consumed items are
    /// removed.
    pub fn take_planned(&mut self, rail: usize) -> Option<TakenChunk> {
        let mut found: Option<(usize, usize)> = None;
        'outer: for (i, item) in self.items.iter().enumerate() {
            if item.phase != SegPhase::RdvGranted {
                continue;
            }
            let Some(plan) = &item.plan else { continue };
            for (j, c) in plan.iter().enumerate() {
                if !c.taken && c.rail == rail {
                    found = Some((i, j));
                    break 'outer;
                }
            }
        }
        let (i, j) = found?;
        let item = &mut self.items[i];
        let plan = item.plan.as_mut().unwrap();
        plan[j].taken = true;
        let (offset, len) = (plan[j].offset, plan[j].len);
        let chunk_index = item.chunks_emitted;
        item.chunks_emitted += 1;
        let key = item.key;
        let total_segs = item.total_segs;
        let seg_exhausted = plan.iter().all(|c| c.taken);
        if seg_exhausted {
            self.items.remove(i);
        }
        Some(TakenChunk {
            key,
            total_segs,
            offset,
            len,
            chunk_index,
            seg_exhausted,
        })
    }

    /// Sum of eager segment sizes (used by aggregation threshold checks).
    pub fn eager_bytes(&self) -> u64 {
        self.eager_items().map(|i| i.size).sum()
    }

    /// Failover support: re-point every not-yet-taken planned chunk that
    /// targets `dead` at the surviving rails (round-robin). Returns how
    /// many chunks moved.
    pub fn reassign_rail(&mut self, dead: usize, survivors: &[usize]) -> usize {
        assert!(!survivors.is_empty(), "failover needs a surviving rail");
        let mut moved = 0;
        for item in &mut self.items {
            let Some(plan) = &mut item.plan else { continue };
            for c in plan.iter_mut() {
                if !c.taken && c.rail == dead {
                    c.rail = survivors[moved % survivors.len()];
                    moved += 1;
                }
            }
        }
        moved
    }

    /// Remove every waiting segment of one message (retransmission
    /// support); returns how many were dropped.
    pub fn remove_msg(&mut self, conn: nmad_wire::ConnId, msg_id: nmad_wire::MsgId) -> usize {
        let before = self.items.len();
        self.items
            .retain(|i| !(i.key.conn == conn && i.key.msg_id == msg_id));
        before - self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(msg: u64, seg: u16) -> SegKey {
        SegKey {
            conn: 0,
            msg_id: msg,
            seg_index: seg,
        }
    }

    #[test]
    fn push_and_take_eager_fifo() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        b.push(key(1, 1), 2, 100, SegPhase::EagerReady);
        let order: Vec<u16> = b.eager_items().map(|i| i.key.seg_index).collect();
        assert_eq!(order, vec![0, 1]);
        let item = b.take_eager(key(1, 0)).unwrap();
        assert_eq!(item.key.seg_index, 0);
        assert_eq!(b.len(), 1);
        assert!(b.take_eager(key(1, 0)).is_none(), "already taken");
    }

    #[test]
    fn take_eager_rejects_wrong_phase() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        assert!(b.take_eager(key(1, 0)).is_none());
    }

    #[test]
    fn grant_transitions_phase() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1 << 20, SegPhase::RdvRequested);
        assert!(b.has_rdv_pending());
        assert_eq!(b.granted_items().count(), 0);
        assert!(b.grant(key(1, 0)));
        assert!(!b.has_rdv_pending());
        assert_eq!(b.granted_items().count(), 1);
        assert!(!b.grant(key(1, 0)), "double grant must fail");
        assert!(!b.grant(key(9, 0)), "unknown segment must fail");
    }

    #[test]
    fn take_chunk_consumes_and_removes() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        b.grant(key(1, 0));
        let tc = b.take_chunk(key(1, 0), 600).unwrap();
        assert_eq!((tc.offset, tc.len, tc.chunk_index), (0, 600, 0));
        assert!(!tc.seg_exhausted);
        assert_eq!(b.len(), 1, "not exhausted yet");
        let tc = b.take_chunk(key(1, 0), 600).unwrap();
        assert_eq!((tc.offset, tc.len, tc.chunk_index), (600, 400, 1));
        assert!(tc.seg_exhausted);
        assert!(b.is_empty(), "exhausted item must be removed");
        assert!(b.take_chunk(key(1, 0), 10).is_none());
    }

    #[test]
    fn take_chunk_requires_grant() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        assert!(b.take_chunk(key(1, 0), 100).is_none());
    }

    #[test]
    fn plan_lifecycle() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        b.grant(key(1, 0));
        let plan = vec![
            PlannedChunk {
                rail: 0,
                offset: 0,
                len: 600,
                taken: false,
            },
            PlannedChunk {
                rail: 1,
                offset: 600,
                len: 400,
                taken: false,
            },
        ];
        assert!(b.set_plan(key(1, 0), plan));
        // Rail 1 takes its earmarked chunk even though rail 0's is first.
        let tc = b.take_planned(1).unwrap();
        assert_eq!(tc.key, key(1, 0));
        assert_eq!(tc.total_segs, 1);
        assert_eq!((tc.offset, tc.len), (600, 400));
        assert!(!tc.seg_exhausted);
        assert!(b.take_planned(1).is_none(), "rail 1 has nothing left");
        let tc = b.take_planned(0).unwrap();
        assert_eq!((tc.offset, tc.len), (0, 600));
        assert!(tc.seg_exhausted);
        assert!(b.is_empty(), "fully taken plan removes item");
    }

    #[test]
    fn set_plan_validates_coverage() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        b.grant(key(1, 0));
        // Gap.
        assert!(!b.set_plan(
            key(1, 0),
            vec![
                PlannedChunk {
                    rail: 0,
                    offset: 0,
                    len: 500,
                    taken: false
                },
                PlannedChunk {
                    rail: 1,
                    offset: 600,
                    len: 400,
                    taken: false
                },
            ]
        ));
        // Short coverage.
        assert!(!b.set_plan(
            key(1, 0),
            vec![PlannedChunk {
                rail: 0,
                offset: 0,
                len: 500,
                taken: false
            }]
        ));
        // Correct plan still accepted afterwards.
        assert!(b.set_plan(
            key(1, 0),
            vec![PlannedChunk {
                rail: 0,
                offset: 0,
                len: 1000,
                taken: false
            }]
        ));
        // And not twice.
        assert!(!b.set_plan(
            key(1, 0),
            vec![PlannedChunk {
                rail: 0,
                offset: 0,
                len: 1000,
                taken: false
            }]
        ));
    }

    #[test]
    fn plan_blocks_unplanned_take_chunk() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        b.grant(key(1, 0));
        b.set_plan(
            key(1, 0),
            vec![PlannedChunk {
                rail: 0,
                offset: 0,
                len: 1000,
                taken: false,
            }],
        );
        assert!(b.take_chunk(key(1, 0), 100).is_none());
    }

    #[test]
    fn take_planned_respects_submit_order() {
        let mut b = Backlog::new();
        for msg in 0..2 {
            b.push(key(msg, 0), 1, 100, SegPhase::RdvRequested);
            b.grant(key(msg, 0));
            b.set_plan(
                key(msg, 0),
                vec![PlannedChunk {
                    rail: 0,
                    offset: 0,
                    len: 100,
                    taken: false,
                }],
            );
        }
        let tc = b.take_planned(0).unwrap();
        assert_eq!(tc.key.msg_id, 0, "earliest submitted plan first");
    }

    #[test]
    fn remaining_accounts_for_plan_and_offset() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 1, 1000, SegPhase::RdvRequested);
        b.grant(key(1, 0));
        b.take_chunk(key(1, 0), 300).unwrap();
        let item = b.granted_items().next().unwrap();
        assert_eq!(item.remaining(), 700);
    }

    #[test]
    fn eager_bytes_sums_only_eager() {
        let mut b = Backlog::new();
        b.push(key(1, 0), 2, 100, SegPhase::EagerReady);
        b.push(key(1, 1), 2, 50, SegPhase::EagerReady);
        b.push(key(2, 0), 1, 1 << 20, SegPhase::RdvRequested);
        assert_eq!(b.eager_bytes(), 150);
    }
}
