//! The transmit-layer contract between the engine and its runtime.
//!
//! The engine never performs I/O. When a rail is idle the runtime calls
//! [`crate::Engine::next_tx`]; if work exists it receives a [`TxDecision`]:
//! an encoded scatter-gather frame plus the cost metadata the runtime
//! needs to model (or actually perform) the transfer. When the injection
//! finishes, the runtime hands the decision's [`TxToken`] back via
//! [`crate::Engine::on_tx_done`].

use nmad_model::TxMode;
use nmad_wire::PacketFrame;

use crate::request::SegKey;

/// Opaque identifier of an in-flight tx decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TxToken(pub u64);

/// What a tx decision carried (engine-internal bookkeeping, exposed for
/// tests and tracing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxItem {
    /// A whole eager segment.
    EagerSeg(SegKey),
    /// A segment carried inside an aggregate container.
    AggSeg(SegKey),
    /// A byte range of a granted segment.
    Chunk {
        /// Which segment.
        key: SegKey,
        /// Byte offset within the segment.
        offset: u64,
        /// Chunk length.
        len: u64,
    },
    /// A control packet (rdv request/ack, ack).
    Control,
}

/// One scheduled transmission, returned by [`crate::Engine::next_tx`].
#[derive(Clone, Debug)]
pub struct TxDecision {
    /// Token to return via `on_tx_done`.
    pub token: TxToken,
    /// Encoded wire image as a scatter-gather frame: an owned
    /// envelope+header head part followed by refcounted payload slices.
    /// Runtimes that can gather (vectored writes, modelled DMA) transmit
    /// the parts directly; [`PacketFrame::to_bytes`] flattens for those
    /// that cannot.
    ///
    /// Invariant: a placeholder decision carries
    /// [`PacketFrame::empty()`] — zero parts, zero `wire_len()` — so
    /// pooled-buffer and copy accounting never see phantom bytes.
    pub frame: PacketFrame,
    /// Transmission regime on the chosen rail — the runtime models PIO as
    /// CPU-occupying and DMA as bus traffic.
    pub mode: TxMode,
    /// Bytes the engine memcpy'd into a staging buffer to build this
    /// packet (sub-PIO aggregation staging only). The runtime charges CPU
    /// time for them.
    pub copied_bytes: usize,
    /// True when this is a control packet (runtime may trace differently).
    pub control: bool,
}

impl TxDecision {
    /// Total bytes that will cross the wire.
    pub fn wire_len(&self) -> usize {
        self.frame.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_reflects_frame() {
        use bytes::Bytes;
        let d = TxDecision {
            token: TxToken(1),
            frame: PacketFrame::from_wire(Bytes::from(vec![0u8; 40])),
            mode: TxMode::Pio,
            copied_bytes: 0,
            control: false,
        };
        assert_eq!(d.wire_len(), 40);
    }

    #[test]
    fn placeholder_frame_counts_no_phantom_bytes() {
        let d = TxDecision {
            token: TxToken(0),
            frame: PacketFrame::empty(),
            mode: TxMode::Pio,
            copied_bytes: 0,
            control: false,
        };
        assert_eq!(d.wire_len(), 0);
        assert!(d.frame.is_empty());
    }
}
