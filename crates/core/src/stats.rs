//! Behavioural counters.
//!
//! Timing alone cannot distinguish "the strategy aggregated" from "the
//! strategy got lucky"; these counters record what the engine actually did
//! so tests and EXPERIMENTS.md can assert on mechanism, not just effect.

use crate::obs::Log2Histogram;

/// Per-rail transmit counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RailStats {
    /// Data packets posted on this rail.
    pub packets: u64,
    /// Wire bytes posted (envelope + body).
    pub wire_bytes: u64,
    /// Application payload bytes posted.
    pub payload_bytes: u64,
    /// Packets sent in the PIO regime.
    pub pio_packets: u64,
    /// Packets sent in a DMA regime (eager DMA or rendezvous chunk).
    pub dma_packets: u64,
    /// Control packets (rdv request/ack, acks).
    pub control_packets: u64,
    /// Packets received on this rail (before decoding).
    pub rx_packets: u64,
    /// Retransmission timeouts blamed on this rail (drops observed).
    pub timeouts: u64,
    /// Data packets that re-sent payload of a retransmitted message.
    pub retransmit_packets: u64,
    /// Health probes issued on this rail.
    pub probes_sent: u64,
    /// Health state transitions (Up/Suspect/Down/Probing changes).
    pub state_transitions: u64,
}

/// Copy and allocation accounting for the scatter-gather datapath.
///
/// The zero-copy refactor makes every copy on the hot path *explicit*:
/// the only tx-side payload copy allowed is sub-PIO aggregation staging
/// (see DESIGN.md "Datapath and copy discipline"), and these counters
/// prove it. `nmad-bench`'s `ablate_zero_copy` target and the
/// `scripts/verify.sh` smoke gate read them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataPathStats {
    /// Payload bytes memcpy'd into staging slabs on transmit (sub-PIO
    /// aggregation entries only — everything else must be zero).
    pub tx_staged_copy_bytes: u64,
    /// Payload bytes transmitted as refcounted slices (no copy).
    pub tx_zero_copy_bytes: u64,
    /// Payload bytes copied on receive (part-straddling reads and legacy
    /// flat-buffer delivery; frame delivery keeps this at zero).
    pub rx_copy_bytes: u64,
    /// Payload bytes sliced zero-copy out of received frames.
    pub rx_zero_copy_bytes: u64,
    /// Fresh allocations taken on the hot path (head buffers or staging
    /// slabs the pool could not satisfy).
    pub hot_path_allocs: u64,
    /// Buffer requests served from the pool free list.
    pub pool_hits: u64,
    /// Transmit buffers reclaimed into the pool at tx completion.
    pub pool_reclaims: u64,
    /// Reclaim attempts that failed because the buffer was still shared
    /// (e.g. the in-process fabric's receiver holds a reference).
    pub pool_reclaim_misses: u64,
    /// Pool buffers taken and not yet reclaimed (gauge, not a counter):
    /// the leak ledger. After the engine quiesces this must equal the
    /// buffers still legitimately in custody (in-flight heads and slabs);
    /// at engine drop it must be zero (see `Engine::pool_leaks`).
    pub pool_outstanding: u64,
    /// Buffer requests served from a per-worker magazine cache without
    /// touching the shared pool lock (subset of `pool_hits`).
    pub pool_magazine_hits: u64,
    /// Magazine batch refills that crossed the shared pool lock.
    pub pool_magazine_refills: u64,
    /// Magazine batch flushes back to the shared free list.
    pub pool_magazine_flushes: u64,
}

impl DataPathStats {
    /// Total payload bytes copied on the hot path (tx staging + rx).
    pub fn total_copied_bytes(&self) -> u64 {
        self.tx_staged_copy_bytes + self.rx_copy_bytes
    }

    /// Total payload bytes moved without copying.
    pub fn total_zero_copy_bytes(&self) -> u64 {
        self.tx_zero_copy_bytes + self.rx_zero_copy_bytes
    }

    /// Fraction of buffer takes served lock-free from a magazine.
    pub fn magazine_hit_rate(&self) -> f64 {
        let takes = self.pool_hits + self.hot_path_allocs;
        if takes == 0 {
            0.0
        } else {
            self.pool_magazine_hits as f64 / takes as f64
        }
    }
}

/// Syscall amortization counters for the threaded transports: how many
/// kernel crossings the rail workers spent per frame moved. The batched
/// TX path coalesces multiple outbox frames into one `write_vectored`
/// and the RX path carves multiple frames out of one `read`, so both
/// ratios drop below 1 under load (see the `ablate_cycles` gate).
/// Maintained by the transport workers outside any lock and mirrored
/// here via `Engine::note_syscalls`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyscallStats {
    /// `write`/`write_vectored` calls issued by TX workers.
    pub tx_calls: u64,
    /// Frames those TX calls moved onto the wire.
    pub tx_frames: u64,
    /// `read` calls issued by RX workers (excluding would-block polls).
    pub rx_calls: u64,
    /// Frames decoded out of those reads.
    pub rx_frames: u64,
}

impl SyscallStats {
    /// TX syscalls per transmitted frame (0 when nothing was sent).
    pub fn tx_per_packet(&self) -> f64 {
        if self.tx_frames == 0 {
            0.0
        } else {
            self.tx_calls as f64 / self.tx_frames as f64
        }
    }

    /// RX syscalls per received frame (0 when nothing arrived).
    pub fn rx_per_packet(&self) -> f64 {
        if self.rx_frames == 0 {
            0.0
        } else {
            self.rx_calls as f64 / self.rx_frames as f64
        }
    }

    /// Overall syscalls per frame moved in either direction.
    pub fn per_packet(&self) -> f64 {
        let frames = self.tx_frames + self.rx_frames;
        if frames == 0 {
            0.0
        } else {
            (self.tx_calls + self.rx_calls) as f64 / frames as f64
        }
    }

    /// Counter growth since an earlier snapshot, saturating at zero so a
    /// counter reset (e.g. a restarted transport worker) yields an empty
    /// delta rather than a wrapped one. This is how the telemetry
    /// aggregator turns the cumulative totals into per-window rates.
    pub fn delta_since(&self, prev: &SyscallStats) -> SyscallStats {
        SyscallStats {
            tx_calls: self.tx_calls.saturating_sub(prev.tx_calls),
            tx_frames: self.tx_frames.saturating_sub(prev.tx_frames),
            rx_calls: self.rx_calls.saturating_sub(prev.rx_calls),
            rx_frames: self.rx_frames.saturating_sub(prev.rx_frames),
        }
    }
}

/// Event-loop telemetry for the readiness-driven reactor transport
/// ([`crate::EngineConfig::reactor`]): a fixed pool of epoll workers
/// multiplexing every rail/peer connection. Counters are maintained by
/// the reactor workers outside any lock and mirrored here by the
/// scheduler (continuously) and at stats export, the same way
/// [`SyscallStats`] flows in. All zero when the reactor is off.
#[derive(Clone, Debug, Default)]
pub struct ReactorStats {
    /// Worker threads in the reactor pool (gauge; 0 = reactor off).
    pub workers: u64,
    /// Connections currently registered across all workers (gauge).
    pub conns: u64,
    /// `epoll_wait` calls that returned (with or without events).
    pub polls: u64,
    /// Polls that returned at least one readiness event.
    pub wakeups: u64,
    /// Readiness events handled in total.
    pub events: u64,
    /// Wakeups caused by the scheduler's eventfd (published TX work),
    /// as opposed to socket readiness.
    pub sched_wakes: u64,
    /// Connections shed because the process hit its fd limit
    /// (`EMFILE`/`ENFILE` on accept) — the graceful path, not a panic.
    pub fd_shed: u64,
    /// Times a partial write armed WRITE interest (socket pushed back;
    /// the batch resumes on the next writable edge).
    pub write_stalls: u64,
    /// Hot-path allocations the event loop had to take (buffer growth
    /// past the pre-allocated footprint). The `ablate_reactor` gate
    /// holds this at zero for the echo event loop.
    pub hot_path_allocs: u64,
    /// Nanoseconds the workers spent handling events (summed).
    pub busy_ns: u64,
    /// Nanoseconds since the pool started, per worker (wall clock).
    pub elapsed_ns: u64,
    /// Per-worker busy time, ns — the per-worker loop utilization
    /// numerator (`busy / elapsed`).
    pub per_worker_busy_ns: Vec<u64>,
    /// Events handled per non-empty wakeup.
    pub events_per_wake: Log2Histogram,
    /// Ready-queue depth at each wakeup: kernel-ready events plus
    /// pending registrations and staged TX batches.
    pub ready_depth: Log2Histogram,
}

impl ReactorStats {
    /// Mean readiness events handled per non-empty wakeup.
    pub fn mean_events_per_wake(&self) -> f64 {
        if self.wakeups == 0 {
            0.0
        } else {
            self.events as f64 / self.wakeups as f64
        }
    }

    /// Fraction of wall-clock the pool spent handling events, averaged
    /// across workers, in `[0, 1]`.
    pub fn loop_utilization(&self) -> f64 {
        let denom = self.elapsed_ns.saturating_mul(self.workers);
        if denom == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / denom as f64).min(1.0)
        }
    }

    /// Loop utilization of one worker, in `[0, 1]`.
    pub fn worker_utilization(&self, worker: usize) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.per_worker_busy_ns
            .get(worker)
            .map_or(0.0, |&busy| (busy as f64 / self.elapsed_ns as f64).min(1.0))
    }
}

/// Per-rail observability gauges and histograms.
#[derive(Clone, Debug, Default)]
pub struct RailObs {
    /// Measured RTT samples on this rail (ack round trips and probe
    /// pongs), nanoseconds.
    pub latency_ns: Log2Histogram,
    /// Wire bytes posted but not yet completed (gauge).
    pub in_flight_bytes: u64,
    /// Accumulated time the rail spent busy (a frame posted and not yet
    /// completed), nanoseconds.
    pub busy_ns: u64,
    /// When the rail last went busy, if it currently is.
    pub busy_since_ns: Option<u64>,
}

impl RailObs {
    /// Mark the rail busy as of `now_ns` (no-op if already busy).
    pub fn note_busy(&mut self, now_ns: u64) {
        if self.busy_since_ns.is_none() {
            self.busy_since_ns = Some(now_ns);
        }
    }

    /// Mark the rail idle as of `now_ns`, banking the busy interval.
    pub fn note_idle(&mut self, now_ns: u64) {
        if let Some(since) = self.busy_since_ns.take() {
            self.busy_ns += now_ns.saturating_sub(since);
        }
    }

    /// Fraction of `[0, now_ns]` the rail spent busy, in `[0, 1]`.
    pub fn utilization(&self, now_ns: u64) -> f64 {
        if now_ns == 0 {
            return 0.0;
        }
        let busy = self.busy_ns
            + self
                .busy_since_ns
                .map_or(0, |since| now_ns.saturating_sub(since));
        (busy as f64 / now_ns as f64).min(1.0)
    }
}

/// Histograms and gauges maintained alongside the counters. Recording
/// into these is allocation-free (fixed bucket arrays), so they are
/// always on — unlike the flight recorder, which must be enabled.
#[derive(Clone, Debug, Default)]
pub struct ObsStats {
    /// Per-rail gauges and latency histograms.
    pub rails: Vec<RailObs>,
    /// Submitted segment sizes, bytes.
    pub seg_size: Log2Histogram,
    /// Backlog depth sampled at each submit, segments.
    pub backlog_depth: Log2Histogram,
    /// Retransmission timeouts armed (initial and backed-off), ns.
    pub rto_ns: Log2Histogram,
    /// Time the parallel scheduler held the engine lock per pass, ns.
    /// Empty unless [`crate::EngineConfig::parallel`] is on — the whole
    /// point of the sharded pipeline is keeping this distribution tight
    /// while transport writes happen outside the lock.
    pub lock_hold_ns: Log2Histogram,
    /// Per-rail outbox depth sampled after each scheduler refill, frames.
    pub outbox_depth: Log2Histogram,
    /// Completion events drained per scheduler pass (TX-done + RX + ack
    /// batched into one amortized critical section).
    pub completion_batch: Log2Histogram,
}

impl ObsStats {
    /// Obs stats for an engine with `n_rails` rails.
    pub fn new(n_rails: usize) -> Self {
        ObsStats {
            rails: vec![RailObs::default(); n_rails],
            ..Default::default()
        }
    }
}

/// Overload-protection counters: how often the admission boundary said
/// no, and why. All zero unless [`crate::OverloadConfig`] limits are set
/// (except `shutdown_rejections`, which counts submit-after-shutdown
/// attempts regardless of configuration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Submissions refused because the submission queue was at its
    /// configured depth.
    pub queue_rejections: u64,
    /// Submissions refused by per-tenant admission control.
    pub admission_rejections: u64,
    /// Submissions shed because the buffer pool was above its watermark.
    pub watermark_rejections: u64,
    /// Submissions refused because shutdown had already begun.
    pub shutdown_rejections: u64,
}

impl OverloadStats {
    /// Total submissions refused for overload reasons (excludes
    /// shutdown, which is lifecycle, not load).
    pub fn total_shed(&self) -> u64 {
        self.queue_rejections + self.admission_rejections + self.watermark_rejections
    }
}

/// Engine-wide counters.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Per-rail transmit counters.
    pub rails: Vec<RailStats>,
    /// Aggregate containers built.
    pub aggregates_built: u64,
    /// Segments carried inside aggregate containers.
    pub segments_aggregated: u64,
    /// Bytes memcpy'd into staging buffers for aggregation.
    pub aggregation_copy_bytes: u64,
    /// Chunks emitted for split segments.
    pub chunks_sent: u64,
    /// Segments that went through the rendezvous handshake.
    pub rdv_handshakes: u64,
    /// Split plans computed (adaptive or iso).
    pub split_plans: u64,
    /// Messages fully sent (local completion).
    pub msgs_sent: u64,
    /// Messages fully received and reassembled.
    pub msgs_received: u64,
    /// Strategy invocations that returned no work.
    pub idle_queries: u64,
    /// Delivery acknowledgements emitted (receiver side, acked mode).
    pub acks_sent: u64,
    /// Delivery acknowledgements received (sender side, acked mode).
    pub acks_received: u64,
    /// Messages re-enqueued by [`crate::Engine::retransmit`].
    pub retransmits: u64,
    /// Duplicate packets tolerated on the receive side (acked mode).
    pub duplicates_dropped: u64,
    /// Copy/allocation accounting for the scatter-gather datapath.
    pub datapath: DataPathStats,
    /// Syscall amortization on the threaded transports (batched I/O).
    pub syscalls: SyscallStats,
    /// Overload-protection rejections (backpressure and shedding).
    pub overload: OverloadStats,
    /// Histograms and per-rail gauges (always on, allocation-free).
    pub obs: ObsStats,
    /// Event-loop telemetry from the reactor transport (all zero when
    /// [`crate::EngineConfig::reactor`] is off).
    pub reactor: ReactorStats,
}

impl EngineStats {
    /// Stats for an engine with `n_rails` rails.
    pub fn new(n_rails: usize) -> Self {
        EngineStats {
            rails: vec![RailStats::default(); n_rails],
            obs: ObsStats::new(n_rails),
            ..Default::default()
        }
    }

    /// Total data packets across rails.
    pub fn total_packets(&self) -> u64 {
        self.rails.iter().map(|r| r.packets).sum()
    }

    /// Total payload bytes across rails.
    pub fn total_payload_bytes(&self) -> u64 {
        self.rails.iter().map(|r| r.payload_bytes).sum()
    }

    /// Fraction of payload bytes that travelled on `rail`, in `[0, 1]`.
    /// Returns 0 when nothing was sent.
    pub fn rail_share(&self, rail: usize) -> f64 {
        let total = self.total_payload_bytes();
        if total == 0 {
            return 0.0;
        }
        self.rails[rail].payload_bytes as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut s = EngineStats::new(2);
        s.rails[0].payload_bytes = 600;
        s.rails[1].payload_bytes = 400;
        assert!((s.rail_share(0) - 0.6).abs() < 1e-12);
        assert!((s.rail_share(0) + s.rail_share(1) - 1.0).abs() < 1e-12);
        assert_eq!(s.total_payload_bytes(), 1000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = EngineStats::new(3);
        assert_eq!(s.total_packets(), 0);
        assert_eq!(s.rail_share(1), 0.0);
        assert_eq!(s.rails.len(), 3);
        assert_eq!(s.datapath, DataPathStats::default());
    }

    #[test]
    fn overload_total_shed_excludes_shutdown() {
        let o = OverloadStats {
            queue_rejections: 3,
            admission_rejections: 2,
            watermark_rejections: 1,
            shutdown_rejections: 100,
        };
        assert_eq!(o.total_shed(), 6);
    }

    #[test]
    fn datapath_totals() {
        let d = DataPathStats {
            tx_staged_copy_bytes: 100,
            tx_zero_copy_bytes: 1000,
            rx_copy_bytes: 7,
            rx_zero_copy_bytes: 2000,
            ..Default::default()
        };
        assert_eq!(d.total_copied_bytes(), 107);
        assert_eq!(d.total_zero_copy_bytes(), 3000);
    }
}
