//! Engine error type.

use nmad_wire::reassembly::ReasmError;
use nmad_wire::WireError;

/// Errors surfaced by the engine to its runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// An incoming packet failed to decode.
    Wire(WireError),
    /// An incoming packet violated reassembly invariants.
    Reassembly(ReasmError),
    /// A packet referenced an unknown connection.
    UnknownConnection(u32),
    /// A rendezvous control packet referenced an unknown message/segment.
    UnknownRendezvous {
        /// Message id in the packet.
        msg_id: u64,
        /// Segment index in the packet.
        seg_index: u16,
    },
    /// A tx-done notification carried a token the engine never issued or
    /// already retired.
    BadToken(u64),
    /// The strategy returned an operation the backlog cannot satisfy
    /// (always a strategy bug; surfaced instead of panicking so the
    /// failure-injection tests can drive hostile strategies).
    InvalidStrategyOp(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Wire(e) => write!(f, "wire error: {e}"),
            EngineError::Reassembly(e) => write!(f, "reassembly error: {e}"),
            EngineError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
            EngineError::UnknownRendezvous { msg_id, seg_index } => {
                write!(f, "unknown rendezvous msg {msg_id} seg {seg_index}")
            }
            EngineError::BadToken(t) => write!(f, "unknown tx token {t}"),
            EngineError::InvalidStrategyOp(what) => {
                write!(f, "strategy returned invalid op: {what}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        EngineError::Wire(e)
    }
}

impl From<ReasmError> for EngineError {
    fn from(e: ReasmError) -> Self {
        EngineError::Reassembly(e)
    }
}

/// Why a submission was refused at the admission boundary.
///
/// Returned by [`crate::ParallelHub::try_submit_send`] (and, for the
/// `Shutdown` case, by the infallible-looking submit paths too): the hub
/// never panics and never silently drops a submission — it either accepts
/// it or tells the caller exactly why not, so the caller can back off,
/// shed, or stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The engine is overloaded: the submission queue is at its
    /// configured depth, the tenant is over its admission quota, or the
    /// buffer pool is above its watermark (see
    /// [`crate::OverloadConfig`]). Retry after completions drain.
    WouldBlock,
    /// [`crate::ParallelHub::begin_shutdown`] was already called; no new
    /// work is accepted while in-flight work drains.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::WouldBlock => write!(f, "submission refused: overloaded (would block)"),
            SubmitError::Shutdown => write!(f, "submission refused: engine shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = WireError::BadMagic(0).into();
        assert!(matches!(e, EngineError::Wire(_)));
        assert!(e.to_string().contains("wire error"));
        let e: EngineError = ReasmError::DuplicateSegment {
            msg_id: 1,
            seg_index: 2,
        }
        .into();
        assert!(e.to_string().contains("reassembly"));
        assert!(EngineError::BadToken(9).to_string().contains('9'));
    }

    #[test]
    fn submit_error_display() {
        assert!(SubmitError::WouldBlock.to_string().contains("would block"));
        assert!(SubmitError::Shutdown.to_string().contains("shutting down"));
    }
}
