//! The NewMadeleine engine: collect layer + global scheduler + transmit
//! bookkeeping (paper §2, Figure 1).
//!
//! The engine is *passive* and runtime-agnostic. A runtime (the
//! discrete-event simulator or the threaded transport) drives it:
//!
//! ```text
//! app  ──────── submit_send / post_recv ───────►  Engine (collect layer)
//! rail idle ──── next_tx(rail) ───────────────►  strategy decision → TxDecision
//! injection done ── on_tx_done(rail, token) ──►  send completions
//! packet arrives ── on_packet(rail, bytes) ───►  reassembly, grants, recv completions
//! ```
//!
//! Request processing is entirely disconnected from the submit calls:
//! `submit_send` only queues work; all transmission decisions happen in
//! `next_tx`, invoked when a NIC reports idle — the paper's core design
//! point.

pub mod parallel;

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use nmad_model::{NicModel, RailId, TxMode};
use nmad_wire::agg::{parse_aggregate, AggregateBuilder, AggregateEntry, AggregateParts};
use nmad_wire::frame::encode_parts_frame;
use nmad_wire::header::{
    AckPacket, ChunkPacket, EagerPacket, Envelope, Packet, PacketKind, RdvAck, RdvRequest,
    SamplePacket,
};
use nmad_wire::reassembly::{MessageAssembly, ReasmError, Reassembler};
use nmad_wire::{ConnId, FrameBody, MsgId, PacketFrame};

use crate::config::EngineConfig;
use crate::driver::{TxDecision, TxItem, TxToken};
use crate::error::EngineError;
use crate::health::{HealthTracker, RailState, RailTelemetry, Transition};
use crate::obs::{Event, EventKind, FlightRecorder, TelemetryAggregator, Watchdog};
use crate::pool::{Magazine, SharedPool};
use crate::request::{Backlog, RecvId, SegKey, SegPhase, SendId};
use crate::sampling::{default_ladder, split_ratio_permille, OnlineCalibrator, PerfTable};
use crate::stats::EngineStats;
use crate::strategy::{RailFlight, Strategy, StrategyCtx, TxOp};

/// Pool capacity for packet head buffers: envelope (24 bytes) plus the
/// largest per-kind body header (chunk, 34 bytes), rounded up.
const HEAD_CAPACITY: usize = 64;

/// Outcome of processing one incoming packet.
#[derive(Debug, Default)]
pub struct OnPacketOutcome {
    /// Receives completed by this packet.
    pub completed_recvs: Vec<RecvId>,
    /// True when the packet caused control traffic to be queued (the
    /// runtime should offer idle rails to the engine again).
    pub control_enqueued: bool,
    /// True when a rendezvous grant arrived (backlog became schedulable).
    pub granted: bool,
    /// Sampling pongs received: `(probe_id, payload_len)`.
    pub sample_pongs: Vec<(u64, usize)>,
}

/// Outcome of one [`Engine::progress`] call.
#[derive(Debug, Default)]
pub struct ProgressOutcome {
    /// Sends automatically re-enqueued after a retransmission timeout.
    pub retransmitted: Vec<SendId>,
    /// True when control traffic (probes) was queued — the runtime should
    /// offer idle rails to the engine again.
    pub control_enqueued: bool,
}

/// High bit of a sample probe id marks engine-internal health probes, so
/// they never collide with runtime-issued sampling probes and are consumed
/// by the engine instead of surfacing in
/// [`OnPacketOutcome::sample_pongs`].
const PROBE_BIT: u64 = 1 << 63;

/// Per-message retransmission timer state (acked mode only).
#[derive(Debug)]
struct Attempt {
    /// When the current attempt started (Karn: RTT samples only come from
    /// attempts that were never retransmitted).
    started_ns: u64,
    /// When the retransmission timer fires.
    deadline_ns: u64,
    /// Current timeout, doubled on every expiry (exponential backoff).
    rto_ns: u64,
    /// The message was retransmitted at least once.
    retransmitted: bool,
    /// Rails that carried packets of the current attempt.
    rails_used: Vec<bool>,
}

#[derive(Debug)]
struct SendState {
    /// Segments not yet fully consumed from the backlog.
    segs_unconsumed: usize,
    /// Tx items issued but not yet reported done.
    items_outstanding: usize,
    /// Completed (all bytes injected).
    done: bool,
}

#[derive(Debug, Default)]
struct ConnRx {
    reassembler: Reassembler,
    /// Messages fully delivered (kept only in acked mode, for duplicate
    /// tolerance under retransmission).
    delivered: std::collections::HashSet<MsgId>,
    /// Rendezvous requests waiting for their receive to be posted
    /// (flow control: large data moves only into posted buffers). The
    /// rail the request arrived on routes the eventual grant back over
    /// a path known to work.
    pending_rdv: Vec<(MsgId, u16, RailId)>,
    /// Completed messages with no matching posted recv yet ("unexpected").
    unexpected: HashMap<MsgId, MessageAssembly>,
    /// Posted recvs by the msg_id they match (in-order matching).
    posted: HashMap<MsgId, RecvId>,
    /// Matched results awaiting `try_recv`.
    results: HashMap<RecvId, MessageAssembly>,
    /// Next msg_id a `post_recv` will match.
    next_match: MsgId,
}

#[derive(Debug, Default)]
struct ConnTx {
    /// Next msg_id `submit_send` will assign.
    next_msg: MsgId,
}

/// The NewMadeleine engine. One instance per node endpoint.
pub struct Engine {
    config: EngineConfig,
    rails: Vec<NicModel>,
    tables: Vec<PerfTable>,
    strategy: Option<Box<dyn Strategy>>,
    backlog: Backlog,
    /// Injections in flight per rail. The transmit gate admits work
    /// while this sits below [`EngineConfig::rail_pipeline`]; depth 1
    /// (the default) reproduces the historical one-frame-per-rail
    /// behaviour bit for bit, deeper pipelines let the parallel
    /// scheduler queue several frames into a rail's outbox so the TX
    /// worker can coalesce them into one vectored write.
    rail_inflight: Vec<u32>,
    /// Outbound control packets: `(conn, packet, rail pin)` FIFO. Most
    /// control traffic is unpinned (any usable rail); health probes and
    /// their pongs are pinned to the rail under test.
    control_q: VecDeque<(ConnId, Packet, Option<RailId>)>,
    /// Send-side payloads, keyed by (conn, msg): one `Bytes` per segment.
    send_data: HashMap<(ConnId, MsgId), Vec<Bytes>>,
    sends: HashMap<SendId, SendState>,
    send_index: HashMap<(ConnId, MsgId), SendId>,
    next_send_id: u64,
    next_recv_id: u64,
    recv_conn: HashMap<RecvId, ConnId>,
    conn_tx: HashMap<ConnId, ConnTx>,
    conn_rx: HashMap<ConnId, ConnRx>,
    next_conn: ConnId,
    next_token: u64,
    in_flight: HashMap<u64, InFlightTx>,
    tx_seq: Vec<u32>,
    stats: EngineStats,
    /// Recycled head/slab buffers for the transmit hot path: the
    /// engine's own magazine over a shared pool (rail workers can carve
    /// further magazines from [`Engine::pool_handle`]).
    pool: Magazine,
    /// Reverse index SendId -> (conn, msg) for ack bookkeeping.
    send_key: HashMap<SendId, (ConnId, MsgId)>,
    /// Messages confirmed delivered by the peer (acked mode).
    acked: std::collections::HashSet<(ConnId, MsgId)>,
    /// Per-rail health records (fed by acks/timeouts, drives failover).
    health: HealthTracker,
    /// Engine-internal clock, advanced by [`Engine::progress`].
    now_ns: u64,
    /// Retransmission timers, one per unacknowledged send (acked mode).
    attempts: HashMap<SendId, Attempt>,
    /// Health probes in flight: probe id -> rail under test, sent at.
    probe_sent: HashMap<u64, (usize, u64)>,
    next_probe_id: u64,
    /// Packet-lifecycle flight recorder (disabled unless
    /// [`EngineConfig::record_capacity`] is nonzero).
    obs: FlightRecorder,
    /// Continuous telemetry: windowed aggregator tailing the recorder,
    /// plus the optional SLO watchdog over its closed windows (present
    /// iff [`EngineConfig::telemetry`] is enabled). Boxed so the common
    /// telemetry-off engine doesn't carry the window ring inline.
    telemetry: Option<Box<TelemetryState>>,
    /// Online recalibration of `tables` from observed transfer times
    /// (present iff [`crate::CalibrationConfig::enabled`]).
    calibrator: Option<OnlineCalibrator>,
    /// Per-rail EWMA of observed data-frame service time (ns), fed to
    /// strategies via [`RailFlight`] so SRPT can predict completions.
    ewma_service_ns: Vec<u64>,
}

/// Telemetry state folded inside the engine lock: the aggregator and
/// (when enabled) the watchdog consuming its newly closed windows.
struct TelemetryState {
    agg: TelemetryAggregator,
    dog: Option<Watchdog>,
}

/// Bookkeeping held between `next_tx` and `on_tx_done`: what the decision
/// carried, plus the pooled head buffer to reclaim at tx completion.
#[derive(Debug)]
struct InFlightTx {
    items: Vec<TxItem>,
    head: Option<Bytes>,
    /// Pooled aggregation staging slab riding in this frame (aggregate
    /// decisions only); reclaimed alongside the head at tx completion so
    /// the pool's leak ledger balances.
    slab: Option<Bytes>,
    /// Wire bytes of the posted frame (for the in-flight gauge and the
    /// `TxDone` event).
    wire_len: usize,
    /// Engine clock at `next_tx`; `on_tx_done - posted_ns` is the
    /// injection time the online calibrator ingests.
    posted_ns: u64,
    /// Control-only frame (excluded from calibration: latency-bound).
    control: bool,
    /// Rail the frame was posted on (per-rail flight view, blame).
    rail: usize,
}

impl Engine {
    /// Build an engine for the given rails. `tables` may be empty, in
    /// which case analytic seed tables are derived from the NIC models
    /// (real init-time sampling replaces them via [`Engine::set_tables`]).
    pub fn new(config: EngineConfig, rails: Vec<NicModel>, tables: Vec<PerfTable>) -> Self {
        config.validate();
        assert!(!rails.is_empty(), "engine needs at least one rail");
        let tables = if tables.is_empty() {
            let ladder = default_ladder();
            rails
                .iter()
                .map(|n| PerfTable::from_analytic(n, &ladder))
                .collect()
        } else {
            assert_eq!(tables.len(), rails.len(), "one table per rail");
            tables
        };
        let n = rails.len();
        // The calibrator's seed (and prior) is whatever tables the engine
        // starts from: analytic or real init-time sampling.
        let calibrator = config.calibration.enabled.then(|| {
            OnlineCalibrator::new(tables.clone(), default_ladder(), config.calibration.clone())
        });
        let telemetry = config.telemetry.enabled().then(|| {
            Box::new(TelemetryState {
                agg: TelemetryAggregator::new(n, config.telemetry),
                dog: config
                    .watchdog
                    .enabled
                    .then(|| Watchdog::new(n, config.watchdog)),
            })
        });
        Engine {
            strategy: Some(config.strategy.build()),
            health: HealthTracker::new(config.health, n),
            obs: FlightRecorder::with_capacity(config.record_capacity),
            calibrator,
            telemetry,
            config,
            tables,
            backlog: Backlog::new(),
            rail_inflight: vec![0; n],
            control_q: VecDeque::new(),
            send_data: HashMap::new(),
            sends: HashMap::new(),
            send_index: HashMap::new(),
            next_send_id: 0,
            next_recv_id: 0,
            recv_conn: HashMap::new(),
            conn_tx: HashMap::new(),
            conn_rx: HashMap::new(),
            next_conn: 0,
            next_token: 0,
            in_flight: HashMap::new(),
            tx_seq: vec![0; n],
            stats: EngineStats::new(n),
            pool: SharedPool::default().magazine(16),
            send_key: HashMap::new(),
            acked: std::collections::HashSet::new(),
            now_ns: 0,
            attempts: HashMap::new(),
            probe_sent: HashMap::new(),
            next_probe_id: 0,
            ewma_service_ns: vec![0; n],
            rails,
        }
    }

    /// Read access to the flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.obs
    }

    /// Mutable access to the flight recorder (e.g. to clear it between
    /// workload phases).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.obs
    }

    /// The continuous telemetry aggregator, when
    /// [`EngineConfig::telemetry`] is enabled.
    pub fn telemetry(&self) -> Option<&TelemetryAggregator> {
        self.telemetry.as_deref().map(|t| &t.agg)
    }

    /// The SLO watchdog, when [`EngineConfig::watchdog`] is enabled.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.telemetry.as_deref().and_then(|t| t.dog.as_ref())
    }

    /// Fold new recorder events into the telemetry windows and run the
    /// watchdog over any windows that closed. Called from
    /// [`Engine::progress`] and from the parallel scheduler's amortized
    /// section; cheap no-op when no events arrived and no window
    /// boundary passed, free when telemetry is off.
    ///
    /// Newly fired alerts are recorded as [`EventKind::Alert`] events
    /// into the flight-recorder ring, so they travel with every existing
    /// exporter; the fold cursor has already moved past them, so each
    /// alert event is folded back into the *next* window's `alerts`
    /// count rather than the one that tripped it.
    pub fn fold_telemetry(&mut self) {
        // Take the state out of `self` so the fold can borrow the
        // recorder and stats immutably alongside it (a move of a Box,
        // not an allocation).
        let Some(mut ts) = self.telemetry.take() else {
            return;
        };
        let newly_closed = ts.agg.fold(&self.obs, self.now_ns, &self.stats) as usize;
        if newly_closed > 0 {
            if let TelemetryState {
                agg,
                dog: Some(dog),
            } = &mut *ts
            {
                let fired_from = dog.alerts().len();
                let kept = agg.windows().count();
                // More windows may have closed than the ring retains
                // (e.g. a long idle gap): observe the survivors.
                for w in agg.windows().skip(kept.saturating_sub(newly_closed)) {
                    dog.observe(w);
                }
                for a in &dog.alerts()[fired_from..] {
                    let mut ev = Event::new(a.ts_ns, EventKind::Alert)
                        .seq(a.window)
                        .aux(a.kind.code())
                        .size(a.value as u64);
                    if let Some(r) = a.rail {
                        ev = ev.rail(r);
                    }
                    self.obs.record(ev);
                }
            }
        }
        self.telemetry = Some(ts);
    }

    /// Advance the engine's observation clock without running any timer
    /// work. Runtimes that rarely (or never) call [`Engine::progress`] —
    /// the simulator only ticks it when a fault plan is armed — use this
    /// so event timestamps and RTT samples still track their clock.
    pub fn observe_clock(&mut self, now_ns: u64) {
        self.now_ns = self.now_ns.max(now_ns);
    }

    /// Health telemetry snapshot for `rail` as of the engine clock.
    pub fn rail_telemetry(&self, rail: usize) -> RailTelemetry {
        self.health.telemetry(RailId(rail), self.now_ns)
    }

    /// Open a logical channel. Both endpoints must open connections in the
    /// same order (like the paper's channel establishment).
    pub fn conn_open(&mut self) -> ConnId {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conn_tx.insert(id, ConnTx::default());
        self.conn_rx.insert(id, ConnRx::default());
        id
    }

    /// Replace the per-rail performance tables (after init-time sampling).
    /// When online calibration is enabled, the new tables also become the
    /// calibrator's seed curves (corrections and history reset: the prior
    /// they corrected no longer exists).
    pub fn set_tables(&mut self, tables: Vec<PerfTable>) {
        assert_eq!(tables.len(), self.rails.len(), "one table per rail");
        if self.calibrator.is_some() {
            self.calibrator = Some(OnlineCalibrator::new(
                tables.clone(),
                default_ladder(),
                self.config.calibration.clone(),
            ));
        }
        self.tables = tables;
    }

    /// The live per-rail performance tables the split strategy consults.
    pub fn tables(&self) -> &[PerfTable] {
        &self.tables
    }

    /// The online calibrator, when [`crate::CalibrationConfig::enabled`].
    pub fn calibrator(&self) -> Option<&OnlineCalibrator> {
        self.calibrator.as_ref()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Rail models.
    pub fn rails(&self) -> &[NicModel] {
        &self.rails
    }

    /// Behavioural counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Record one parallel-scheduler critical section: how long the
    /// engine lock was held and how many completion events the pass
    /// drained (see [`parallel`]).
    pub fn note_sched_pass(&mut self, lock_hold_ns: u64, completions_drained: u64) {
        self.stats.obs.lock_hold_ns.record(lock_hold_ns);
        self.stats.obs.completion_batch.record(completions_drained);
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.agg.note_sched_batch(completions_drained);
        }
    }

    /// Record a per-rail outbox depth sample after a scheduler refill.
    pub fn note_outbox_depth(&mut self, depth: u64) {
        self.stats.obs.outbox_depth.record(depth);
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.agg.note_outbox_depth(depth);
        }
    }

    /// Whether `rail` currently has an injection in flight.
    pub fn rail_busy(&self, rail: RailId) -> bool {
        self.rail_inflight[rail.0] > 0
    }

    /// Injections currently in flight on `rail` (bounded by
    /// [`EngineConfig::rail_pipeline`]).
    pub fn rail_inflight(&self, rail: RailId) -> u32 {
        self.rail_inflight[rail.0]
    }

    /// Mirror the transport workers' syscall amortization counters into
    /// the stats (like [`Engine::note_overload`], the counting happens
    /// outside the engine lock; this stores a snapshot).
    pub fn note_syscalls(&mut self, syscalls: crate::stats::SyscallStats) {
        self.stats.syscalls = syscalls;
    }

    /// Mirror the reactor pool's event-loop telemetry into the stats
    /// (same discipline as [`Engine::note_syscalls`]: the reactor
    /// workers count lock-free, the scheduler stores snapshots here).
    pub fn note_reactor(&mut self, reactor: crate::stats::ReactorStats) {
        self.stats.reactor = reactor;
    }

    /// True when the engine has transmit work queued (control or backlog).
    /// Segments awaiting a rendezvous grant don't count: they cannot be
    /// scheduled until the peer answers.
    pub fn has_tx_work(&self) -> bool {
        !self.control_q.is_empty()
            || self.backlog.eager_items().next().is_some()
            || self.backlog.granted_items().next().is_some()
    }

    /// True when any request (send or rendezvous handshake) is unfinished.
    pub fn is_quiescent(&self) -> bool {
        self.control_q.is_empty()
            && self.backlog.is_empty()
            && self.in_flight.is_empty()
            && self.sends.values().all(|s| s.done)
    }

    // ------------------------------------------------------------------
    // Collect layer
    // ------------------------------------------------------------------

    /// Submit a non-blocking send of a multi-segment message. Segments are
    /// exactly the units the optimizing scheduler may aggregate or split.
    pub fn submit_send(&mut self, conn: ConnId, segments: Vec<Bytes>) -> SendId {
        let send_id = SendId(self.next_send_id);
        self.submit_send_with_id(conn, segments, send_id);
        send_id
    }

    /// [`Engine::submit_send`] with a caller-allocated id. The parallel
    /// submission queue hands out ids from an atomic counter *before*
    /// enqueueing, so the id must travel with the queued op: queue drain
    /// order is not guaranteed to match allocation order across producer
    /// threads. `next_send_id` is bumped past `id` so the two allocation
    /// schemes never collide.
    pub fn submit_send_with_id(&mut self, conn: ConnId, segments: Vec<Bytes>, send_id: SendId) {
        assert!(!segments.is_empty(), "a message needs at least one segment");
        assert!(segments.len() <= u16::MAX as usize, "too many segments");
        assert!(
            !self.sends.contains_key(&send_id),
            "send id {send_id:?} already in use"
        );
        let ct = self
            .conn_tx
            .get_mut(&conn)
            .unwrap_or_else(|| panic!("unknown connection {conn}"));
        let msg_id = ct.next_msg;
        ct.next_msg += 1;

        self.next_send_id = self.next_send_id.max(send_id.0 + 1);
        let total_segs = segments.len() as u16;
        let total_bytes: u64 = segments.iter().map(|s| s.len() as u64).sum();
        self.obs.record(
            Event::new(self.now_ns, EventKind::Submit)
                .seq(msg_id)
                .size(total_bytes)
                .aux(total_segs as u64),
        );
        for (i, seg) in segments.iter().enumerate() {
            let key = SegKey {
                conn,
                msg_id,
                seg_index: i as u16,
            };
            self.stats.obs.seg_size.record(seg.len() as u64);
            let rdv = seg.len() >= self.config.rdv_threshold;
            self.obs.record(
                Event::new(self.now_ns, EventKind::BacklogPush)
                    .seq(msg_id)
                    .size(seg.len() as u64)
                    .aux(rdv as u64),
            );
            if rdv {
                // Rendezvous track: announce and wait for the grant.
                self.backlog
                    .push(key, total_segs, seg.len() as u64, SegPhase::RdvRequested);
                self.control_q.push_back((
                    conn,
                    Packet::RdvRequest(RdvRequest {
                        msg_id,
                        seg_index: i as u16,
                        total_segs,
                        total_len: seg.len() as u64,
                    }),
                    None,
                ));
                self.stats.rdv_handshakes += 1;
            } else {
                self.backlog
                    .push(key, total_segs, seg.len() as u64, SegPhase::EagerReady);
            }
        }
        self.stats
            .obs
            .backlog_depth
            .record(self.backlog.len() as u64);
        self.send_data.insert((conn, msg_id), segments);
        self.send_index.insert((conn, msg_id), send_id);
        self.send_key.insert(send_id, (conn, msg_id));
        self.sends.insert(
            send_id,
            SendState {
                segs_unconsumed: total_segs as usize,
                items_outstanding: 0,
                done: false,
            },
        );
        if self.config.acked {
            let rto = self.health.rto_hint_ns();
            self.stats.obs.rto_ns.record(rto);
            self.attempts.insert(
                send_id,
                Attempt {
                    started_ns: self.now_ns,
                    deadline_ns: self.now_ns.saturating_add(rto),
                    rto_ns: rto,
                    retransmitted: false,
                    rails_used: vec![false; self.rails.len()],
                },
            );
        }
    }

    /// Queue a sampling probe (`SamplePing`) of `size` zero bytes on
    /// `conn`. The peer engine echoes it back as a pong; the runtime
    /// measures the round trip (init-time sampling, paper §3.4).
    pub fn send_sample(&mut self, conn: ConnId, probe_id: u64, size: usize) {
        self.control_q.push_back((
            conn,
            Packet::SamplePing(SamplePacket {
                probe_id,
                data: Bytes::from(vec![0u8; size]),
            }),
            None,
        ));
    }

    /// Post a non-blocking receive on `conn`. Receives match incoming
    /// messages in order (the paper's benchmark model; tags live in the
    /// mini-MPI layer above).
    pub fn post_recv(&mut self, conn: ConnId) -> RecvId {
        let recv_id = RecvId(self.next_recv_id);
        self.post_recv_with_id(conn, recv_id);
        recv_id
    }

    /// [`Engine::post_recv`] with a caller-allocated id (see
    /// [`Engine::submit_send_with_id`] for why the parallel submission
    /// queue needs to carry the id through the queue).
    pub fn post_recv_with_id(&mut self, conn: ConnId, recv_id: RecvId) {
        assert!(
            !self.recv_conn.contains_key(&recv_id),
            "recv id {recv_id:?} already in use"
        );
        self.next_recv_id = self.next_recv_id.max(recv_id.0 + 1);
        self.recv_conn.insert(recv_id, conn);
        let rx = self
            .conn_rx
            .get_mut(&conn)
            .unwrap_or_else(|| panic!("unknown connection {conn}"));
        let msg_id = rx.next_match;
        rx.next_match += 1;
        if let Some(assembly) = rx.unexpected.remove(&msg_id) {
            rx.results.insert(recv_id, assembly);
        } else {
            rx.posted.insert(msg_id, recv_id);
        }
        // Release any rendezvous parked on this receive (flow control).
        let mut grants = Vec::new();
        rx.pending_rdv.retain(|&(m, seg, rail)| {
            if m == msg_id {
                grants.push((m, seg, rail));
                false
            } else {
                true
            }
        });
        for (m, seg, rail) in grants {
            self.control_q.push_back((
                conn,
                Packet::RdvAck(RdvAck {
                    msg_id: m,
                    seg_index: seg,
                }),
                Some(rail),
            ));
        }
    }

    /// True when the send has been fully injected (local completion).
    pub fn send_complete(&self, id: SendId) -> bool {
        self.sends.get(&id).map(|s| s.done).unwrap_or(false)
    }

    /// True when the peer confirmed full delivery of the message (only
    /// meaningful with [`EngineConfig::acked`] set on *both* endpoints).
    pub fn send_acked(&self, id: SendId) -> bool {
        self.send_key
            .get(&id)
            .map(|k| self.acked.contains(k))
            .unwrap_or(false)
    }

    /// Take the reassembled message for a completed receive, if ready.
    pub fn try_recv(&mut self, id: RecvId) -> Option<MessageAssembly> {
        let conn = *self.recv_conn.get(&id)?;
        let result = self.conn_rx.get_mut(&conn)?.results.remove(&id);
        if result.is_some() {
            self.recv_conn.remove(&id);
        }
        result
    }

    /// Connection a receive was posted on.
    pub fn recv_conn(&self, id: RecvId) -> Option<ConnId> {
        self.recv_conn.get(&id).copied()
    }

    /// Connection a send was submitted on (None once the send's
    /// bookkeeping is fully retired). The parallel hub's per-tenant
    /// admission control uses this to credit the tenant back at local
    /// completion.
    pub fn send_conn(&self, id: SendId) -> Option<ConnId> {
        self.send_key.get(&id).map(|&(conn, _)| conn)
    }

    /// Merge externally-observed overload rejections into the stats (the
    /// admission boundary lives in the parallel hub, outside the engine
    /// lock; the hub mirrors its atomic counters here so `stats()` is the
    /// one place to read them).
    pub fn note_overload(&mut self, overload: crate::stats::OverloadStats) {
        self.stats.overload = overload;
    }

    // ------------------------------------------------------------------
    // Transmit layer: NIC-activity-driven scheduling
    // ------------------------------------------------------------------

    /// Offer idle `rail` to the engine. Control packets are served first;
    /// otherwise the optimizing scheduler picks from the backlog. Returns
    /// `None` when the rail should stay idle. On `Some`, the rail is
    /// marked busy until [`Engine::on_tx_done`].
    pub fn next_tx(&mut self, rail: RailId) -> Result<Option<TxDecision>, EngineError> {
        if self.rail_inflight[rail.0] >= self.config.rail_pipeline as u32 {
            return Ok(None);
        }
        let usable = self.health.usable(rail);
        // Control plane jumps the queue: rendezvous latency directly gates
        // large-message throughput. A control packet pinned to a rail only
        // goes out on that rail (health probes must travel the rail under
        // test); unpinned control avoids unusable rails unless no rail is
        // usable at all (an ack is better sent on a dying rail than never).
        let unpinned_ok = usable || self.health.none_usable();
        if let Some(pos) = self.control_q.iter().position(|(_, _, pin)| match pin {
            Some(p) => *p == rail,
            None => unpinned_ok,
        }) {
            let (conn, pkt, _) = self.control_q.remove(pos).expect("position valid");
            // A rendezvous request travels on behalf of an acked send: tie
            // it to the attempt so a lost request blames this rail too.
            if let Packet::RdvRequest(ref rr) = pkt {
                if let Some(&sid) = self.send_index.get(&(conn, rr.msg_id)) {
                    if let Some(att) = self.attempts.get_mut(&sid) {
                        att.rails_used[rail.0] = true;
                    }
                }
            }
            let decision = self.finish_decision(rail, conn, pkt, vec![TxItem::Control], 0, 0);
            return Ok(Some(decision));
        }
        if !usable {
            // Down/Probing rails carry nothing but their own probes.
            return Ok(None);
        }

        let rail_ok: Vec<bool> = (0..self.rails.len())
            .map(|r| self.health.usable(RailId(r)))
            .collect();
        // Strategies see "busy" as "at pipeline capacity": with depth 1
        // this is exactly the old has-anything-in-flight flag.
        let depth = self.config.rail_pipeline as u32;
        let rail_at_cap: Vec<bool> = self.rail_inflight.iter().map(|&n| n >= depth).collect();
        let flight = self.flight_view();
        let mut strategy = self.strategy.take().expect("strategy present");
        let op = {
            let mut ctx = StrategyCtx {
                backlog: &mut self.backlog,
                rails: &self.rails,
                rail_busy: &rail_at_cap,
                rail_ok: &rail_ok,
                tables: &self.tables,
                config: &self.config,
                obs: &mut self.obs,
                now_ns: self.now_ns,
                flight: &flight,
            };
            strategy.next_tx(rail, &mut ctx)
        };
        self.strategy = Some(strategy);

        let Some(op) = op else {
            self.stats.idle_queries += 1;
            return Ok(None);
        };
        self.execute_op(rail, op).map(Some)
    }

    /// Snapshot the per-rail in-flight data-frame load for a strategy
    /// decision. One pass over the (small, pipeline-bounded) in-flight
    /// map; control frames are excluded — strategies reason about where
    /// payload bytes are.
    fn flight_view(&self) -> Vec<RailFlight> {
        let mut flight: Vec<RailFlight> = (0..self.rails.len())
            .map(|r| RailFlight {
                sent_bytes: self.stats.rails[r].wire_bytes,
                ewma_service_ns: self.ewma_service_ns[r],
                ..RailFlight::default()
            })
            .collect();
        for tx in self.in_flight.values() {
            if tx.control {
                continue;
            }
            let f = &mut flight[tx.rail];
            f.inflight += 1;
            f.inflight_bytes += tx.wire_len as u64;
            if f.oldest_post_ns == 0 || tx.posted_ns < f.oldest_post_ns {
                f.oldest_post_ns = tx.posted_ns;
            }
        }
        flight
    }

    fn execute_op(&mut self, rail: RailId, op: TxOp) -> Result<TxDecision, EngineError> {
        match op {
            TxOp::Eager(key) => {
                let item = self
                    .backlog
                    .take_eager(key)
                    .ok_or(EngineError::InvalidStrategyOp("eager segment not takeable"))?;
                let data = self.segment_data(key)?;
                self.note_seg_consumed(key);
                let pkt = Packet::Eager(EagerPacket {
                    msg_id: key.msg_id,
                    seg_index: key.seg_index,
                    total_segs: item.total_segs,
                    data,
                });
                let items = vec![TxItem::EagerSeg(key)];
                self.charge_items(&items);
                let payload = match &pkt {
                    Packet::Eager(p) => p.data.len(),
                    _ => unreachable!("built above"),
                };
                self.stats.datapath.tx_zero_copy_bytes += payload as u64;
                self.obs.record(
                    Event::new(self.now_ns, EventKind::DecideEager)
                        .rail(rail.0)
                        .seq(key.msg_id)
                        .size(payload as u64),
                );
                Ok(self.finish_decision(rail, key.conn, pkt, items, 0, payload))
            }
            TxOp::Aggregate(keys) => {
                if keys.is_empty() {
                    return Err(EngineError::InvalidStrategyOp("empty aggregate"));
                }
                let mut builder = AggregateBuilder::new();
                let mut items = Vec::with_capacity(keys.len());
                let first_conn = keys[0].conn;
                for key in keys {
                    let item =
                        self.backlog
                            .take_eager(key)
                            .ok_or(EngineError::InvalidStrategyOp(
                                "aggregate segment not takeable",
                            ))?;
                    let data = self.segment_data(key)?;
                    self.note_seg_consumed(key);
                    builder.push(AggregateEntry {
                        conn_id: key.conn,
                        msg_id: key.msg_id,
                        seg_index: key.seg_index,
                        total_segs: item.total_segs,
                        data,
                    });
                    items.push(TxItem::AggSeg(key));
                }
                self.stats.aggregates_built += 1;
                self.stats.segments_aggregated += items.len() as u64;
                let payload = builder.payload_bytes();
                // Entries below the PIO threshold are memcpy'd into one
                // pooled staging slab (the only copy the tx hot path is
                // allowed); larger entries ride as refcounted slices.
                let slab = self.pool.take(builder.container_len());
                let stage_threshold = self.rails[rail.0].pio_threshold;
                let agg = builder.finish_parts(stage_threshold, slab);
                self.stats.aggregation_copy_bytes += agg.staged_bytes as u64;
                self.stats.datapath.tx_staged_copy_bytes += agg.staged_bytes as u64;
                self.stats.datapath.tx_zero_copy_bytes += agg.zero_copy_bytes as u64;
                self.sync_pool_counters();
                self.charge_items(&items);
                self.obs.record(
                    Event::new(self.now_ns, EventKind::DecideAggregate)
                        .rail(rail.0)
                        .size(payload as u64)
                        .aux(items.len() as u64),
                );
                Ok(self.finish_agg_decision(rail, first_conn, agg, items, payload))
            }
            TxOp::Chunk { key, max_len } => {
                let max_len = max_len.min(self.rails[rail.0].mtu as u64);
                let tc = self
                    .backlog
                    .take_chunk(key, max_len)
                    .ok_or(EngineError::InvalidStrategyOp("chunk not takeable"))?;
                self.emit_chunk(rail, tc, false)
            }
            TxOp::PlannedChunk => {
                let tc = self
                    .backlog
                    .take_planned(rail.0)
                    .ok_or(EngineError::InvalidStrategyOp("no planned chunk for rail"))?;
                self.emit_chunk(rail, tc, true)
            }
        }
    }

    fn emit_chunk(
        &mut self,
        rail: RailId,
        tc: crate::request::TakenChunk,
        planned: bool,
    ) -> Result<TxDecision, EngineError> {
        let key = tc.key;
        let data = self
            .segment_data(key)?
            .slice(tc.offset as usize..(tc.offset + tc.len) as usize);
        if tc.seg_exhausted {
            self.note_seg_consumed(key);
        }
        let seg_total = self
            .send_data
            .get(&(key.conn, key.msg_id))
            .map(|segs| segs[key.seg_index as usize].len() as u64)
            .expect("checked by segment_data");
        let pkt = Packet::Chunk(ChunkPacket {
            msg_id: key.msg_id,
            seg_index: key.seg_index,
            total_segs: tc.total_segs,
            offset: tc.offset,
            total_len: seg_total,
            chunk_index: tc.chunk_index,
            data,
        });
        self.stats.chunks_sent += 1;
        self.stats.datapath.tx_zero_copy_bytes += tc.len;
        // Planned chunks got their DecideSplit event (with the split
        // ratio) when the strategy computed the plan; a bounded chunk
        // outside any plan is a decision of its own.
        if !planned {
            self.obs.record(
                Event::new(self.now_ns, EventKind::DecideChunk)
                    .rail(rail.0)
                    .seq(key.msg_id)
                    .size(tc.len),
            );
        }
        let items = vec![TxItem::Chunk {
            key,
            offset: tc.offset,
            len: tc.len,
        }];
        self.charge_items(&items);
        Ok(self.finish_decision(rail, key.conn, pkt, items, 0, tc.len as usize))
    }

    fn segment_data(&self, key: SegKey) -> Result<Bytes, EngineError> {
        self.send_data
            .get(&(key.conn, key.msg_id))
            .and_then(|segs| segs.get(key.seg_index as usize))
            .cloned()
            .ok_or(EngineError::InvalidStrategyOp("unknown segment payload"))
    }

    fn note_seg_consumed(&mut self, key: SegKey) {
        if let Some(&send_id) = self.send_index.get(&(key.conn, key.msg_id)) {
            if let Some(s) = self.sends.get_mut(&send_id) {
                debug_assert!(s.segs_unconsumed > 0);
                s.segs_unconsumed -= 1;
            }
        }
    }

    fn charge_items(&mut self, items: &[TxItem]) {
        for item in items {
            let key = match item {
                TxItem::EagerSeg(k) | TxItem::AggSeg(k) => *k,
                TxItem::Chunk { key, .. } => *key,
                TxItem::Control => continue,
            };
            if let Some(&send_id) = self.send_index.get(&(key.conn, key.msg_id)) {
                if let Some(s) = self.sends.get_mut(&send_id) {
                    s.items_outstanding += 1;
                }
            }
        }
    }

    fn alloc_seq(&mut self, rail: RailId) -> u32 {
        let seq = self.tx_seq[rail.0];
        self.tx_seq[rail.0] = seq.wrapping_add(1);
        seq
    }

    /// Mirror the pool's cumulative counters into the datapath stats.
    fn sync_pool_counters(&mut self) {
        let c = self.pool.counters();
        let d = &mut self.stats.datapath;
        d.hot_path_allocs = c.allocs;
        d.pool_hits = c.hits;
        d.pool_reclaims = c.reclaims;
        d.pool_reclaim_misses = c.reclaim_misses;
        d.pool_magazine_hits = c.magazine_hits;
        d.pool_magazine_refills = c.magazine_refills;
        d.pool_magazine_flushes = c.magazine_flushes;
        d.pool_outstanding = self.pool.outstanding();
    }

    /// Handle on the shared buffer pool behind the engine's magazine,
    /// so transport workers can carve their own magazines and recycle
    /// buffers without crossing the engine lock.
    pub fn pool_handle(&self) -> SharedPool {
        self.pool.pool()
    }

    /// Pool buffers outside anyone's custody: taken from the pool but
    /// neither reclaimed nor accounted to an in-flight frame. Zero on a
    /// healthy engine at all times; asserted at drop.
    pub fn pool_leaks(&self) -> u64 {
        let in_custody: u64 = self
            .in_flight
            .values()
            .map(|t| t.head.is_some() as u64 + t.slab.is_some() as u64)
            .sum();
        self.pool.outstanding().saturating_sub(in_custody)
    }

    fn finish_decision(
        &mut self,
        rail: RailId,
        conn: ConnId,
        pkt: Packet,
        items: Vec<TxItem>,
        copied_bytes: usize,
        app_payload: usize,
    ) -> TxDecision {
        let seq = self.alloc_seq(rail);
        let head = self.pool.take(HEAD_CAPACITY);
        self.sync_pool_counters();
        let frame = pkt.encode_frame_into(conn, seq, self.config.crc, head);
        let control = pkt.is_control();
        self.seal_decision(rail, frame, control, items, copied_bytes, app_payload, None)
    }

    /// Aggregate counterpart of [`Self::finish_decision`]: the body parts
    /// are already encoded (staged runs + zero-copy slices); only the
    /// envelope is written here.
    fn finish_agg_decision(
        &mut self,
        rail: RailId,
        conn: ConnId,
        agg: AggregateParts,
        items: Vec<TxItem>,
        app_payload: usize,
    ) -> TxDecision {
        let seq = self.alloc_seq(rail);
        let head = self.pool.take(HEAD_CAPACITY);
        self.sync_pool_counters();
        let copied = agg.staged_bytes;
        // Keep a handle on the staging slab: the frame's staged runs are
        // slices of it, and on_tx_done hands the allocation back to the
        // pool once the frame retires (without this, every aggregate
        // leaked its slab).
        let slab = Some(agg.slab.clone());
        let frame = encode_parts_frame(
            PacketKind::Aggregate,
            conn,
            seq,
            self.config.crc,
            agg.parts,
            head,
        );
        self.seal_decision(rail, frame, false, items, copied, app_payload, slab)
    }

    #[allow(clippy::too_many_arguments)]
    fn seal_decision(
        &mut self,
        rail: RailId,
        frame: PacketFrame,
        control: bool,
        items: Vec<TxItem>,
        copied_bytes: usize,
        app_payload: usize,
        slab: Option<Bytes>,
    ) -> TxDecision {
        let nic = &self.rails[rail.0];
        let wire_len = frame.wire_len();
        let mode = if wire_len < nic.pio_threshold {
            TxMode::Pio
        } else {
            TxMode::EagerDma
        };
        let rs = &mut self.stats.rails[rail.0];
        if control {
            rs.control_packets += 1;
        } else {
            rs.packets += 1;
            rs.payload_bytes += app_payload as u64;
            match mode {
                TxMode::Pio => rs.pio_packets += 1,
                _ => rs.dma_packets += 1,
            }
        }
        rs.wire_bytes += wire_len as u64;
        // Arm/refresh the retransmission timers of the sends this packet
        // carries, and remember which rails the attempt touched so a
        // timeout knows whom to blame.
        let mut retransmitted_payload = false;
        for item in &items {
            let key = match item {
                TxItem::EagerSeg(k) | TxItem::AggSeg(k) => *k,
                TxItem::Chunk { key, .. } => *key,
                TxItem::Control => continue,
            };
            let Some(&send_id) = self.send_index.get(&(key.conn, key.msg_id)) else {
                continue;
            };
            if let Some(att) = self.attempts.get_mut(&send_id) {
                att.rails_used[rail.0] = true;
                let deadline = self.now_ns.saturating_add(att.rto_ns);
                att.deadline_ns = att.deadline_ns.max(deadline);
                retransmitted_payload |= att.retransmitted;
            }
        }
        if retransmitted_payload {
            self.stats.rails[rail.0].retransmit_packets += 1;
        }

        let token = TxToken(self.next_token);
        self.next_token += 1;
        self.obs.record(
            Event::new(self.now_ns, EventKind::TxPost)
                .rail(rail.0)
                .seq(token.0)
                .size(wire_len as u64)
                .aux(control as u64),
        );
        let ro = &mut self.stats.obs.rails[rail.0];
        ro.in_flight_bytes += wire_len as u64;
        ro.note_busy(self.now_ns);
        // Keep a reference to the pooled head so on_tx_done can reclaim
        // the allocation once the runtime drops its copy of the frame.
        let head = frame.head().cloned();
        self.in_flight.insert(
            token.0,
            InFlightTx {
                items,
                head,
                slab,
                wire_len,
                posted_ns: self.now_ns,
                control,
                rail: rail.0,
            },
        );
        self.rail_inflight[rail.0] += 1;
        TxDecision {
            token,
            frame,
            mode,
            copied_bytes,
            control,
        }
    }

    /// Report that the injection for `token` finished on `rail`. Returns
    /// sends that reached local completion.
    pub fn on_tx_done(&mut self, rail: RailId, token: TxToken) -> Result<Vec<SendId>, EngineError> {
        let InFlightTx {
            items,
            head,
            slab,
            wire_len,
            posted_ns,
            control,
            rail: _,
        } = self
            .in_flight
            .remove(&token.0)
            .ok_or(EngineError::BadToken(token.0))?;
        self.rail_inflight[rail.0] = self.rail_inflight[rail.0].saturating_sub(1);
        self.obs.record(
            Event::new(self.now_ns, EventKind::TxDone)
                .rail(rail.0)
                .seq(token.0)
                .size(wire_len as u64),
        );
        let ro = &mut self.stats.obs.rails[rail.0];
        ro.in_flight_bytes = ro.in_flight_bytes.saturating_sub(wire_len as u64);
        // The busy gauge tracks "anything in flight": with a pipeline
        // deeper than 1 the rail stays busy until the last frame lands.
        if self.rail_inflight[rail.0] == 0 {
            ro.note_idle(self.now_ns);
        }
        if let Some(h) = head {
            // Succeeds when the runtime has dropped its frame (threaded
            // transports at completion); the in-process fabric's receiver
            // may still hold a reference — a counted miss, not an error.
            self.pool.reclaim(h);
            self.sync_pool_counters();
        }
        if let Some(s) = slab {
            // Same deal for the aggregation staging slab.
            self.pool.reclaim(s);
            self.sync_pool_counters();
        }
        // Per-rail service-time EWMA: SRPT's straggler predictor. First
        // sample seeds; after that a 3/4-old, 1/4-new blend tracks drift
        // without chasing noise. Control frames excluded, same as below.
        if !control {
            let elapsed_ns = self.now_ns.saturating_sub(posted_ns);
            if elapsed_ns > 0 {
                let ewma = &mut self.ewma_service_ns[rail.0];
                *ewma = if *ewma == 0 {
                    elapsed_ns
                } else {
                    (*ewma * 3 + elapsed_ns) / 4
                };
            }
        }
        // Online calibration: a completed data injection is a live
        // transfer-time sample for this rail (control frames are excluded —
        // latency-bound, not representative of the split's regime). The
        // sample is down-weighted while the rail is under suspicion.
        if !control && self.calibrator.is_some() {
            let elapsed_ns = self.now_ns.saturating_sub(posted_ns);
            if elapsed_ns > 0 {
                let weight = self.health.calibration_weight(rail);
                if let Some(cal) = self.calibrator.as_mut() {
                    cal.observe(rail.0, wire_len as u64, elapsed_ns as f64 / 1_000.0, weight);
                }
                self.maybe_recalibrate();
            }
        }
        let mut completed = Vec::new();
        for item in items {
            let key = match item {
                TxItem::EagerSeg(k) | TxItem::AggSeg(k) => k,
                TxItem::Chunk { key, .. } => key,
                TxItem::Control => continue,
            };
            let Some(&send_id) = self.send_index.get(&(key.conn, key.msg_id)) else {
                continue;
            };
            let Some(s) = self.sends.get_mut(&send_id) else {
                continue;
            };
            debug_assert!(s.items_outstanding > 0);
            s.items_outstanding -= 1;
            if !s.done && s.items_outstanding == 0 && s.segs_unconsumed == 0 {
                s.done = true;
                self.stats.msgs_sent += 1;
                // Payload no longer needed once fully injected — unless we
                // may have to retransmit it (acked mode keeps it until the
                // delivery confirmation arrives).
                if !self.config.acked {
                    self.send_data.remove(&(key.conn, key.msg_id));
                }
                completed.push(send_id);
            }
        }
        Ok(completed)
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Process one incoming flat wire packet from `rail`.
    ///
    /// Legacy entry point: the buffer is copied into an owned frame
    /// (charged to `rx_copy_bytes`). Runtimes that receive whole frames
    /// should hand them to [`Engine::on_frame`] instead, which keeps
    /// payload slices refcounted all the way into reassembly.
    pub fn on_packet(&mut self, rail: RailId, wire: &[u8]) -> Result<OnPacketOutcome, EngineError> {
        let frame = PacketFrame::from_wire(Bytes::copy_from_slice(wire));
        self.stats.datapath.rx_copy_bytes += wire.len() as u64;
        self.dispatch_frame(rail, &frame)
    }

    /// Process one incoming scatter-gather frame from `rail` without
    /// flattening it: payload slices flow into reassembly refcounted.
    pub fn on_frame(
        &mut self,
        rail: RailId,
        frame: &PacketFrame,
    ) -> Result<OnPacketOutcome, EngineError> {
        self.dispatch_frame(rail, frame)
    }

    fn dispatch_frame(
        &mut self,
        rail: RailId,
        frame: &PacketFrame,
    ) -> Result<OnPacketOutcome, EngineError> {
        let (env, body, straddle_copied) = frame.decode()?;
        self.stats.rails[rail.0].rx_packets += 1;
        self.obs.record(
            Event::new(self.now_ns, EventKind::Rx)
                .rail(rail.0)
                .size(frame.wire_len() as u64),
        );
        let data_len: usize = match &body {
            FrameBody::Packet(p) => match p {
                Packet::Eager(e) => e.data.len(),
                Packet::Chunk(c) => c.data.len(),
                Packet::SamplePing(s) | Packet::SamplePong(s) => s.data.len(),
                _ => 0,
            },
            FrameBody::Aggregate(entries) => entries.iter().map(|e| e.data.len()).sum(),
        };
        self.stats.datapath.rx_copy_bytes += straddle_copied as u64;
        self.stats.datapath.rx_zero_copy_bytes += data_len.saturating_sub(straddle_copied) as u64;
        let mut out = OnPacketOutcome::default();
        match body {
            FrameBody::Aggregate(entries) => {
                self.handle_aggregate_entries(rail, entries, &mut out)?
            }
            FrameBody::Packet(pkt) => self.handle_packet(rail, env, pkt, &mut out)?,
        }
        Ok(out)
    }

    fn handle_aggregate_entries(
        &mut self,
        rail: RailId,
        entries: Vec<AggregateEntry>,
        out: &mut OnPacketOutcome,
    ) -> Result<(), EngineError> {
        for e in entries {
            if self.drop_duplicate(e.conn_id, rail, e.msg_id, out)? {
                continue;
            }
            let done =
                self.insert_eager_tolerant(e.conn_id, e.msg_id, e.seg_index, e.total_segs, e.data)?;
            self.settle_completion(e.conn_id, rail, done, out);
        }
        Ok(())
    }

    fn handle_packet(
        &mut self,
        rail: RailId,
        env: Envelope,
        pkt: Packet,
        out: &mut OnPacketOutcome,
    ) -> Result<(), EngineError> {
        match pkt {
            Packet::Eager(p) => {
                if self.drop_duplicate(env.conn_id, rail, p.msg_id, out)? {
                    return Ok(());
                }
                let done = self.insert_eager_tolerant(
                    env.conn_id,
                    p.msg_id,
                    p.seg_index,
                    p.total_segs,
                    p.data,
                )?;
                self.settle_completion(env.conn_id, rail, done, out);
            }
            Packet::Aggregate(body) => {
                // Frames decode aggregates straight to entries; this arm
                // only serves packets built in memory.
                let entries = parse_aggregate(&body)?;
                self.handle_aggregate_entries(rail, entries, out)?;
            }
            Packet::Chunk(p) => {
                if self.drop_duplicate(env.conn_id, rail, p.msg_id, out)? {
                    return Ok(());
                }
                let done = self.insert_chunk_tolerant(env.conn_id, &p)?;
                self.settle_completion(env.conn_id, rail, done, out);
            }
            Packet::RdvRequest(p) => {
                // A rendezvous for a message we already delivered means the
                // sender lost our ack: answer with the ack, not a grant.
                if self.drop_duplicate(env.conn_id, rail, p.msg_id, out)? {
                    return Ok(());
                }
                // Flow control: the whole point of the rendezvous track is
                // that large data only moves once the receiver is ready.
                // Grant immediately when the matching receive is already
                // posted (its msg_id is below the in-order match counter);
                // otherwise park the request until `post_recv` matches it.
                let rx = self.rx_conn(env.conn_id)?;
                if p.msg_id < rx.next_match {
                    // Answer over the rail the request arrived on: it
                    // demonstrably works, which matters mid-outage.
                    self.control_q.push_back((
                        env.conn_id,
                        Packet::RdvAck(RdvAck {
                            msg_id: p.msg_id,
                            seg_index: p.seg_index,
                        }),
                        Some(rail),
                    ));
                    out.control_enqueued = true;
                } else {
                    rx.pending_rdv.push((p.msg_id, p.seg_index, rail));
                }
            }
            Packet::RdvAck(p) => {
                let key = SegKey {
                    conn: env.conn_id,
                    msg_id: p.msg_id,
                    seg_index: p.seg_index,
                };
                if self.backlog.grant(key) {
                    out.granted = true;
                } else if self.config.acked {
                    // A duplicated or stale grant: a retransmitted request
                    // can be answered twice, or the answer can outlive the
                    // message it granted. Carries no work.
                    self.stats.duplicates_dropped += 1;
                } else {
                    return Err(EngineError::UnknownRendezvous {
                        msg_id: p.msg_id,
                        seg_index: p.seg_index,
                    });
                }
            }
            Packet::Ack(p) => {
                self.stats.acks_received += 1;
                // The rail the ack itself rode is alive right now.
                self.health.note_ok(rail, self.now_ns);
                // Feed the health tracker: the ack proves every rail the
                // current attempt used is alive. Karn's rule: only a
                // never-retransmitted attempt yields an RTT sample.
                if let Some(&send_id) = self.send_index.get(&(env.conn_id, p.msg_id)) {
                    if let Some(att) = self.attempts.remove(&send_id) {
                        let rtt = self.now_ns.saturating_sub(att.started_ns);
                        self.obs.record(
                            Event::new(self.now_ns, EventKind::AckReceived)
                                .rail(rail.0)
                                .seq(p.msg_id)
                                .aux(rtt),
                        );
                        for (r, used) in att.rails_used.iter().enumerate() {
                            if !used {
                                continue;
                            }
                            // A per-message ack is coarse evidence: it
                            // cannot say WHICH rail delivered. Enough to
                            // exonerate a rail still in service, not to
                            // reinstate a Down one — the attempt may have
                            // succeeded entirely over the survivors.
                            // Reinstatement requires a rail-pinned probe
                            // pong.
                            if !self.health.usable(RailId(r)) {
                                continue;
                            }
                            self.health.note_ok(RailId(r), self.now_ns);
                            let t = if att.retransmitted {
                                self.health.on_success(RailId(r), self.now_ns)
                            } else {
                                self.stats.obs.rails[r].latency_ns.record(rtt);
                                self.obs.record(
                                    Event::new(self.now_ns, EventKind::RttSample)
                                        .rail(r)
                                        .seq(p.msg_id)
                                        .aux(rtt),
                                );
                                self.health.on_rtt_sample(RailId(r), rtt, self.now_ns)
                            };
                            self.note_transition(t);
                        }
                        // A single-rail attempt doubles as a calibration
                        // sample: rtt/2 approximates the one-way time of
                        // the whole message on that rail. Multi-rail
                        // attempts are skipped — a per-message ack cannot
                        // apportion the time between rails.
                        if !att.retransmitted && self.calibrator.is_some() {
                            let used: Vec<usize> = att
                                .rails_used
                                .iter()
                                .enumerate()
                                .filter_map(|(r, &u)| u.then_some(r))
                                .collect();
                            if let [r] = used[..] {
                                let bytes: u64 = self
                                    .send_data
                                    .get(&(env.conn_id, p.msg_id))
                                    .map(|segs| segs.iter().map(|b| b.len() as u64).sum())
                                    .unwrap_or(0);
                                if bytes > 0 {
                                    let w = self.health.calibration_weight(RailId(r));
                                    if let Some(cal) = self.calibrator.as_mut() {
                                        cal.observe(r, bytes, rtt as f64 / 2_000.0, w);
                                    }
                                    self.maybe_recalibrate();
                                }
                            }
                        }
                    }
                }
                if self.acked.insert((env.conn_id, p.msg_id)) {
                    // Confirmed: the retransmission copy can go, and any
                    // queued re-send of this message is now pointless (a
                    // lost ack may have triggered a retransmission that the
                    // receiver already answered).
                    self.send_data.remove(&(env.conn_id, p.msg_id));
                    self.backlog.remove_msg(env.conn_id, p.msg_id);
                    if let Some(&send_id) = self.send_index.get(&(env.conn_id, p.msg_id)) {
                        if let Some(st) = self.sends.get_mut(&send_id) {
                            st.segs_unconsumed = 0;
                            if !st.done && st.items_outstanding == 0 {
                                st.done = true;
                                self.stats.msgs_sent += 1;
                            }
                        }
                    }
                }
            }
            Packet::SamplePing(p) => {
                // Echo back for RTT sampling. Health probes (high bit set)
                // must return on the rail under test, so their pong is
                // pinned to the arrival rail.
                let pin = (p.probe_id & PROBE_BIT != 0).then_some(rail);
                self.control_q.push_back((
                    env.conn_id,
                    Packet::SamplePong(SamplePacket {
                        probe_id: p.probe_id,
                        data: p.data,
                    }),
                    pin,
                ));
                out.control_enqueued = true;
            }
            Packet::SamplePong(p) => {
                if p.probe_id & PROBE_BIT != 0 {
                    // A health probe came home: the probed rail is alive.
                    if let Some((r, sent_ns)) = self.probe_sent.remove(&p.probe_id) {
                        let rtt = self.now_ns.saturating_sub(sent_ns);
                        self.health.note_ok(RailId(r), self.now_ns);
                        self.stats.obs.rails[r].latency_ns.record(rtt);
                        self.obs.record(
                            Event::new(self.now_ns, EventKind::ProbeOk)
                                .rail(r)
                                .seq(p.probe_id & !PROBE_BIT)
                                .aux(rtt),
                        );
                        let t = self.health.on_probe_ok(RailId(r), rtt, self.now_ns);
                        self.note_transition(t);
                    }
                } else {
                    out.sample_pongs.push((p.probe_id, p.data.len()));
                }
            }
        }
        Ok(())
    }

    /// Acked-mode duplicate tolerance: a payload packet for an
    /// already-delivered message is dropped and re-acknowledged (the
    /// original ack may have been lost). Returns true when the packet was
    /// consumed here.
    fn drop_duplicate(
        &mut self,
        conn: ConnId,
        rail: RailId,
        msg_id: MsgId,
        out: &mut OnPacketOutcome,
    ) -> Result<bool, EngineError> {
        if !self.config.acked {
            return Ok(false);
        }
        let rx = self.rx_conn(conn)?;
        if !rx.delivered.contains(&msg_id) {
            return Ok(false);
        }
        self.stats.duplicates_dropped += 1;
        self.control_q
            .push_back((conn, Packet::Ack(AckPacket { msg_id }), Some(rail)));
        self.stats.acks_sent += 1;
        out.control_enqueued = true;
        Ok(true)
    }

    /// Re-enqueue an unacknowledged message for transmission (acked mode).
    ///
    /// Callers (a runtime's retransmission timer, or a recovery loop)
    /// should invoke this only after a timeout. Returns false when the
    /// message is already acknowledged, still has injections in flight,
    /// or its payload is gone.
    pub fn retransmit(&mut self, id: SendId) -> bool {
        assert!(self.config.acked, "retransmission requires acked mode");
        let Some(&(conn, msg_id)) = self.send_key.get(&id) else {
            return false;
        };
        if self.acked.contains(&(conn, msg_id)) {
            return false;
        }
        let Some(st) = self.sends.get_mut(&id) else {
            return false;
        };
        if st.items_outstanding > 0 {
            return false; // injections still in flight; wait for them
        }
        // Only the segment lengths matter here: re-enqueueing must not
        // clone the payload handles (the backlog re-reads them from
        // `send_data` when the segments are actually scheduled).
        let seg_lens: Vec<usize> = match self.send_data.get(&(conn, msg_id)) {
            Some(segs) => segs.iter().map(|s| s.len()).collect(),
            None => return false,
        };
        // Drop any stale waiting pieces (e.g. a rendezvous stuck without a
        // grant because the request was lost) and start over.
        self.backlog.remove_msg(conn, msg_id);
        st.done = false;
        st.segs_unconsumed = seg_lens.len();
        let total_segs = seg_lens.len() as u16;
        for (i, &len) in seg_lens.iter().enumerate() {
            let key = SegKey {
                conn,
                msg_id,
                seg_index: i as u16,
            };
            if len >= self.config.rdv_threshold {
                self.backlog
                    .push(key, total_segs, len as u64, SegPhase::RdvRequested);
                self.control_q.push_back((
                    conn,
                    Packet::RdvRequest(RdvRequest {
                        msg_id,
                        seg_index: i as u16,
                        total_segs,
                        total_len: len as u64,
                    }),
                    None,
                ));
            } else {
                self.backlog
                    .push(key, total_segs, len as u64, SegPhase::EagerReady);
            }
        }
        self.stats.retransmits += 1;
        // Blame the rails that plausibly lost the expired attempt so
        // telemetry can attribute the storm per rail (a drop storm on the
        // second rail of a split attempt must show up in *that* rail's
        // window, not the first rail's). Rails with positive evidence
        // newer than the attempt are exonerated, mirroring the timeout
        // path; when everything was exonerated (or nothing was used yet,
        // e.g. a lost rendezvous request before any data went out), fall
        // back to all used rails. The event carries the full blame set as
        // a bitmask in `size` (unused for Retransmit) plus the first
        // blamed rail in `rail` for single-rail consumers.
        let mut ev = Event::new(self.now_ns, EventKind::Retransmit)
            .seq(msg_id)
            .aux(self.attempts.get(&id).map_or(0, |a| a.rto_ns));
        if let Some(att) = self.attempts.get(&id) {
            let used: Vec<usize> = att
                .rails_used
                .iter()
                .enumerate()
                .filter(|(_, &u)| u)
                .map(|(r, _)| r)
                .collect();
            let started = att.started_ns;
            let mut blamed: Vec<usize> = used
                .iter()
                .copied()
                .filter(|&r| !self.health.ok_since(RailId(r), started))
                .collect();
            if blamed.is_empty() {
                blamed = used;
            }
            if let Some(&first) = blamed.first() {
                let mask: u64 = blamed
                    .iter()
                    .filter(|&&r| r < 64)
                    .fold(0u64, |m, &r| m | (1 << r));
                ev = ev.rail(first).size(mask);
            }
        }
        self.obs.record(ev);
        // Restart the attempt: Karn's rule forbids RTT samples from now on,
        // and the timer re-arms from scratch.
        if let Some(att) = self.attempts.get_mut(&id) {
            att.retransmitted = true;
            att.started_ns = self.now_ns;
            att.deadline_ns = self.now_ns.saturating_add(att.rto_ns);
            att.rails_used.iter_mut().for_each(|u| *u = false);
        }
        true
    }

    // ------------------------------------------------------------------
    // Fault tolerance: timers, health, probes
    // ------------------------------------------------------------------

    /// Advance the engine clock and run everything time-based: fire
    /// retransmission timeouts (adaptive RTO with exponential backoff),
    /// blame the rails an expired attempt used, take failed rails out of
    /// service, and issue/expire reinstatement probes.
    ///
    /// Runtimes should call this whenever they drive the engine, passing a
    /// monotonic clock in nanoseconds (wall clock for threads, virtual
    /// time for the simulator). Without `progress` the engine behaves
    /// exactly as before: no timers, no probes, caller-driven recovery.
    pub fn progress(&mut self, now_ns: u64) -> ProgressOutcome {
        self.now_ns = self.now_ns.max(now_ns);
        let now = self.now_ns;
        let mut out = ProgressOutcome::default();
        if self.config.acked {
            let mut due: Vec<SendId> = self
                .attempts
                .iter()
                .filter(|(_, a)| now >= a.deadline_ns)
                .map(|(&id, _)| id)
                .collect();
            due.sort_unstable();
            // Several attempts expiring in the same pass are correlated
            // evidence, not independent failures: blame each rail at most
            // once per pass, or a burst of in-flight messages lost to one
            // dead rail would condemn the healthy survivors alongside it.
            let mut blamed_this_pass = vec![false; self.rails.len()];
            for id in due {
                // Injections still in flight, or schedulable segments
                // still queued behind other traffic: the attempt is
                // waiting on the local scheduler, not the network — push
                // the deadline out without blame or backoff. A message
                // parked in the rendezvous handshake (RdvRequested, not
                // yet granted) does NOT defer: a lost request or grant is
                // exactly what the timer must catch.
                let outstanding = self
                    .sends
                    .get(&id)
                    .map(|s| s.items_outstanding > 0)
                    .unwrap_or(false);
                let queued = self
                    .send_key
                    .get(&id)
                    .map(|&(conn, msg)| {
                        let mine = |k: &SegKey| k.conn == conn && k.msg_id == msg;
                        self.backlog.eager_items().any(|i| mine(&i.key))
                            || self.backlog.granted_items().any(|i| mine(&i.key))
                    })
                    .unwrap_or(false);
                let att = self.attempts.get_mut(&id).expect("collected above");
                if outstanding || queued {
                    att.deadline_ns = now.saturating_add(att.rto_ns);
                    continue;
                }
                // Blame every rail the attempt used (with per-message acks
                // we cannot tell which rail lost the packet) — except
                // rails with positive evidence newer than the attempt: a
                // rail that delivered an ack since this attempt started is
                // almost certainly not the one that lost its packets.
                // Probes sort out any remaining innocents quickly.
                let started = att.started_ns;
                let blamed: Vec<usize> = att
                    .rails_used
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| **u)
                    .map(|(r, _)| r)
                    .filter(|&r| !self.health.ok_since(RailId(r), started))
                    .collect();
                att.rto_ns = (att.rto_ns * 2).min(self.config.health.max_rto_ns);
                self.stats.obs.rto_ns.record(att.rto_ns);
                let msg_id = self.send_key.get(&id).map_or(0, |&(_, m)| m);
                for r in blamed {
                    self.stats.rails[r].timeouts += 1;
                    self.obs
                        .record(Event::new(now, EventKind::TimeoutBlame).rail(r).seq(msg_id));
                    if !blamed_this_pass[r] {
                        blamed_this_pass[r] = true;
                        let t = self.health.on_timeout(RailId(r), now);
                        self.note_transition(t);
                    }
                }
                if self.retransmit(id) {
                    out.retransmitted.push(id);
                } else if let Some(att) = self.attempts.get_mut(&id) {
                    // Not retransmittable right now (e.g. already acked
                    // but not yet reaped): re-arm quietly.
                    att.deadline_ns = now.saturating_add(att.rto_ns);
                }
            }
        }
        // Probe management is independent of acked mode: any engine with a
        // connection can check its rails.
        if let Some(&conn) = self.conn_tx.keys().min() {
            for r in 0..self.rails.len() {
                if self.health.probe_due(RailId(r), now) {
                    let probe_id = PROBE_BIT | self.next_probe_id;
                    self.next_probe_id += 1;
                    self.control_q.push_back((
                        conn,
                        Packet::SamplePing(SamplePacket {
                            probe_id,
                            data: Bytes::new(),
                        }),
                        Some(RailId(r)),
                    ));
                    self.probe_sent.insert(probe_id, (r, now));
                    self.stats.rails[r].probes_sent += 1;
                    self.obs.record(
                        Event::new(now, EventKind::ProbeSent)
                            .rail(r)
                            .seq(probe_id & !PROBE_BIT),
                    );
                    let t = self.health.on_probe_sent(RailId(r), now);
                    self.note_transition(t);
                    out.control_enqueued = true;
                } else if self.health.probe_expired(RailId(r), now) {
                    self.stats.rails[r].timeouts += 1;
                    self.obs
                        .record(Event::new(now, EventKind::ProbeTimeout).rail(r));
                    let t = self.health.on_probe_timeout(RailId(r), now);
                    self.note_transition(t);
                }
            }
        }
        self.fold_telemetry();
        out
    }

    /// Earliest future instant at which [`Engine::progress`] has work to
    /// do (a retransmission deadline or a probe timer), if any. Runtimes
    /// use this to size their idle sleeps.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        let attempts = self.attempts.values().map(|a| a.deadline_ns);
        let probes = (0..self.rails.len()).filter_map(|r| self.health.next_event_ns(RailId(r)));
        attempts.chain(probes).min()
    }

    /// Rebuild the live split tables when the calibrator's cadence is due.
    /// Records one `Calibrate` event per rail carrying the rail's
    /// reference-size split share before (`size`) and after (`aux`) the
    /// rebuild, in permille. The next `next_tx` strategy call sees the new
    /// tables — `StrategyCtx` borrows them per decision.
    fn maybe_recalibrate(&mut self) {
        if !self.calibrator.as_ref().is_some_and(OnlineCalibrator::due) {
            return;
        }
        let reference = self.config.calibration.reference_size;
        let old = {
            let refs: Vec<&PerfTable> = self.tables.iter().collect();
            split_ratio_permille(&refs, reference)
        };
        let cal = self.calibrator.as_mut().expect("due implies present");
        let tables = cal.rebuild();
        let ordinal = cal.rebuilds();
        let new = {
            let refs: Vec<&PerfTable> = tables.iter().collect();
            split_ratio_permille(&refs, reference)
        };
        for r in 0..tables.len() {
            self.obs.record(
                Event::new(self.now_ns, EventKind::Calibrate)
                    .rail(r)
                    .seq(ordinal)
                    .size(u64::from(old[r]))
                    .aux(u64::from(new[r])),
            );
        }
        self.tables = tables;
    }

    /// Record a health transition in the stats and, when a rail went
    /// down, move its pending planned chunks to the surviving rails.
    fn note_transition(&mut self, t: Option<Transition>) {
        let Some(t) = t else { return };
        self.stats.rails[t.rail.0].state_transitions += 1;
        self.obs.record(
            Event::new(self.now_ns, EventKind::HealthTransition)
                .rail(t.rail.0)
                .aux(t.to.index() as u64),
        );
        if t.to == RailState::Down {
            if let Some(cal) = self.calibrator.as_mut() {
                // Decay the failed rail's table toward "slow": on
                // reinstatement it re-earns its byte share through fresh
                // samples instead of instantly reclaiming its pre-failure
                // split.
                cal.penalize(t.rail.0);
            }
            let survivors: Vec<usize> = (0..self.rails.len())
                .filter(|&r| self.health.usable(RailId(r)))
                .collect();
            if !survivors.is_empty() {
                self.backlog.reassign_rail(t.rail.0, &survivors);
                self.obs.record(
                    Event::new(self.now_ns, EventKind::Failover)
                        .rail(t.rail.0)
                        .aux(survivors.len() as u64),
                );
            }
        }
    }

    /// Per-rail health records.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Current state of every rail.
    pub fn rail_states(&self) -> Vec<RailState> {
        self.health.states()
    }

    /// Errors a retransmission attempt can legitimately provoke against
    /// leftover partial state from a lost earlier attempt.
    fn is_retry_conflict(e: &ReasmError) -> bool {
        matches!(
            e,
            ReasmError::DuplicateSegment { .. }
                | ReasmError::OverlappingChunk { .. }
                | ReasmError::MixedDelivery { .. }
                | ReasmError::LengthMismatch { .. }
        )
    }

    /// Insert a whole segment, tolerating conflicts with a previous
    /// delivery attempt in acked mode: the stale partial message state is
    /// aborted and the insert retried once on fresh state.
    fn insert_eager_tolerant(
        &mut self,
        conn: ConnId,
        msg_id: MsgId,
        seg_index: u16,
        total_segs: u16,
        data: Bytes,
    ) -> Result<Option<MessageAssembly>, EngineError> {
        let acked = self.config.acked;
        let rx = self.rx_conn(conn)?;
        match rx
            .reassembler
            .insert_eager(msg_id, seg_index, total_segs, data.clone())
        {
            Ok(done) => Ok(done),
            Err(e) if acked && Self::is_retry_conflict(&e) => {
                rx.reassembler.abort(msg_id);
                self.stats.duplicates_dropped += 1;
                self.rx_conn(conn)?
                    .reassembler
                    .insert_eager(msg_id, seg_index, total_segs, data)
                    .map_err(Into::into)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Chunk counterpart of [`Self::insert_eager_tolerant`]. Unlike the
    /// eager case, a conflicting chunk must NOT abort the partial message:
    /// retransmissions re-chunk the whole message, so their chunk
    /// boundaries routinely straddle data that survived the earlier
    /// attempt. The lenient insert trims the overlap and keeps everything
    /// already received.
    fn insert_chunk_tolerant(
        &mut self,
        conn: ConnId,
        p: &ChunkPacket,
    ) -> Result<Option<MessageAssembly>, EngineError> {
        let acked = self.config.acked;
        let rx = self.rx_conn(conn)?;
        if acked {
            let (done, new_bytes) = rx.reassembler.insert_chunk_lenient(
                p.msg_id,
                p.seg_index,
                p.total_segs,
                p.offset,
                p.total_len,
                &p.data,
            )?;
            if new_bytes == 0 {
                self.stats.duplicates_dropped += 1;
            }
            Ok(done)
        } else {
            rx.reassembler
                .insert_chunk(
                    p.msg_id,
                    p.seg_index,
                    p.total_segs,
                    p.offset,
                    p.total_len,
                    &p.data,
                )
                .map_err(Into::into)
        }
    }

    fn rx_conn(&mut self, conn: ConnId) -> Result<&mut ConnRx, EngineError> {
        self.conn_rx
            .get_mut(&conn)
            .ok_or(EngineError::UnknownConnection(conn))
    }

    fn settle_completion(
        &mut self,
        conn: ConnId,
        rail: RailId,
        done: Option<MessageAssembly>,
        out: &mut OnPacketOutcome,
    ) {
        let Some(assembly) = done else { return };
        self.stats.msgs_received += 1;
        if self.config.acked {
            // The ack rides the rail the completing packet arrived on — a
            // path the sender is actively using and watching.
            self.control_q.push_back((
                conn,
                Packet::Ack(AckPacket {
                    msg_id: assembly.msg_id,
                }),
                Some(rail),
            ));
            self.stats.acks_sent += 1;
            self.obs.record(
                Event::new(self.now_ns, EventKind::AckSent)
                    .rail(rail.0)
                    .seq(assembly.msg_id),
            );
            out.control_enqueued = true;
            if let Some(rx) = self.conn_rx.get_mut(&conn) {
                rx.delivered.insert(assembly.msg_id);
            }
        }
        let rx = self.conn_rx.get_mut(&conn).expect("validated");
        if let Some(recv_id) = rx.posted.remove(&assembly.msg_id) {
            rx.results.insert(recv_id, assembly);
            out.completed_recvs.push(recv_id);
        } else {
            rx.unexpected.insert(assembly.msg_id, assembly);
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Leak ledger: every pooled buffer taken must be either reclaimed
        // or in the custody of an in-flight frame. Anything else is a
        // buffer the engine lost track of — fail loudly in debug builds
        // (release builds keep drop infallible). Skipped when the thread
        // is already panicking: a second panic would abort.
        if std::thread::panicking() {
            return;
        }
        debug_assert_eq!(
            self.pool_leaks(),
            0,
            "BufferPool leak at engine drop: {} buffer(s) outstanding beyond in-flight custody \
             (outstanding={}, in_flight={})",
            self.pool_leaks(),
            self.pool.outstanding(),
            self.in_flight.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use nmad_model::platform;

    fn engine(kind: StrategyKind) -> Engine {
        let p = platform::paper_platform();
        Engine::new(EngineConfig::with_strategy(kind), p.rails, vec![])
    }

    /// Drive a sender/receiver engine pair until quiescent, with no timing:
    /// round-robin rails, deliver instantly. Returns wire packets seen.
    fn pump(tx: &mut Engine, rx: &mut Engine) -> usize {
        let mut delivered = 0;
        for _ in 0..10_000 {
            let mut progressed = false;
            for dir in 0..2 {
                let (a, b) = if dir == 0 {
                    (&mut *tx, &mut *rx)
                } else {
                    (&mut *rx, &mut *tx)
                };
                for r in 0..a.rails().len() {
                    let rail = RailId(r);
                    if let Some(d) = a.next_tx(rail).unwrap() {
                        progressed = true;
                        delivered += 1;
                        a.on_tx_done(rail, d.token).unwrap();
                        b.on_frame(rail, &d.frame).unwrap();
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        delivered
    }

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn eager_message_end_to_end() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        assert_eq!(c, rx.conn_open());
        let send = tx.submit_send(c, vec![payload(100, 0xAB)]);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        let msg = rx.try_recv(recv).expect("message delivered");
        assert_eq!(msg.segments.len(), 1);
        assert_eq!(msg.segments[0], payload(100, 0xAB));
        assert!(tx.is_quiescent());
    }

    #[test]
    fn large_message_rendezvous_end_to_end() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        let data = payload(256 * 1024, 0x5A);
        let send = tx.submit_send(c, vec![data.clone()]);
        let recv = rx.post_recv(c);
        assert!(!tx.send_complete(send), "nothing sent before pumping");
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        let msg = rx.try_recv(recv).unwrap();
        assert_eq!(msg.segments[0], data);
        assert_eq!(tx.stats().rdv_handshakes, 1);
        assert!(tx.stats().chunks_sent >= 1);
    }

    #[test]
    fn adaptive_split_uses_both_rails_for_large() {
        let mut tx = engine(StrategyKind::AdaptiveSplit);
        let mut rx = engine(StrategyKind::AdaptiveSplit);
        let c = tx.conn_open();
        rx.conn_open();
        let data = payload(8 << 20, 0x77);
        let send = tx.submit_send(c, vec![data.clone()]);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        assert_eq!(rx.try_recv(recv).unwrap().segments[0], data);
        let s = tx.stats();
        assert!(s.split_plans <= 1 || s.chunks_sent >= 2);
        assert!(
            s.rails[0].payload_bytes > 0 && s.rails[1].payload_bytes > 0,
            "both rails must carry payload: {:?}",
            s.rails
        );
        // Myri carries the major part (paper §3.4).
        assert!(s.rails[0].payload_bytes > s.rails[1].payload_bytes);
    }

    #[test]
    fn aggregation_merges_small_messages() {
        let mut tx = engine(StrategyKind::AggregateEager);
        let mut rx = engine(StrategyKind::AggregateEager);
        let c = tx.conn_open();
        rx.conn_open();
        // Multi-segment message: 4 small segments submitted at once.
        let segs: Vec<Bytes> = (0..4u8).map(|i| payload(256, i)).collect();
        let send = tx.submit_send(c, segs.clone());
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        let msg = rx.try_recv(recv).unwrap();
        assert_eq!(msg.segments, segs);
        let s = tx.stats();
        assert_eq!(s.aggregates_built, 1, "all four segments in one packet");
        assert_eq!(s.segments_aggregated, 4);
        // Aggregate goes out on the lowest-latency rail: Quadrics (rail 1).
        assert_eq!(s.rails[1].packets, 1);
        assert_eq!(s.rails[0].packets, 0);
    }

    #[test]
    fn rendezvous_waits_for_posted_recv() {
        // Flow control: a large message submitted with no matching recv
        // must not move its payload; posting the recv releases the grant.
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        let data = payload(256 * 1024, 0x42);
        let send = tx.submit_send(c, vec![data.clone()]);
        pump(&mut tx, &mut rx);
        assert!(
            !tx.send_complete(send),
            "payload must not move before the recv is posted"
        );
        assert_eq!(rx.stats().msgs_received, 0);
        // Posting the receive releases the parked grant.
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        assert_eq!(rx.try_recv(recv).unwrap().segments[0], data);
    }

    #[test]
    fn unexpected_message_then_recv() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(64, 1)]);
        pump(&mut tx, &mut rx);
        // Message arrived before any recv was posted.
        let recv = rx.post_recv(c);
        let msg = rx.try_recv(recv).expect("matched from unexpected queue");
        assert_eq!(msg.segments[0], payload(64, 1));
    }

    #[test]
    fn in_order_matching_across_messages() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(16, 1)]);
        tx.submit_send(c, vec![payload(16, 2)]);
        let r0 = rx.post_recv(c);
        let r1 = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert_eq!(rx.try_recv(r0).unwrap().segments[0], payload(16, 1));
        assert_eq!(rx.try_recv(r1).unwrap().segments[0], payload(16, 2));
    }

    #[test]
    fn multiple_connections_are_isolated() {
        let mut tx = engine(StrategyKind::AggregateEager);
        let mut rx = engine(StrategyKind::AggregateEager);
        let c0 = tx.conn_open();
        let c1 = tx.conn_open();
        rx.conn_open();
        rx.conn_open();
        // Two small messages on different logical channels — aggregation
        // may merge them into one physical packet (paper §4).
        tx.submit_send(c0, vec![payload(32, 0xC0)]);
        tx.submit_send(c1, vec![payload(32, 0xC1)]);
        let r0 = rx.post_recv(c0);
        let r1 = rx.post_recv(c1);
        pump(&mut tx, &mut rx);
        assert_eq!(rx.try_recv(r0).unwrap().segments[0], payload(32, 0xC0));
        assert_eq!(rx.try_recv(r1).unwrap().segments[0], payload(32, 0xC1));
        assert_eq!(
            tx.stats().aggregates_built,
            1,
            "cross-channel aggregation must kick in"
        );
    }

    #[test]
    fn next_tx_on_busy_rail_returns_none() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(64, 1), payload(64, 2)]);
        let d = tx.next_tx(RailId(0)).unwrap().expect("work available");
        assert!(tx.rail_busy(RailId(0)));
        assert!(tx.next_tx(RailId(0)).unwrap().is_none(), "rail is busy");
        // Other rail can still pull the second segment.
        assert!(tx.next_tx(RailId(1)).unwrap().is_some());
        tx.on_tx_done(RailId(0), d.token).unwrap();
        assert!(!tx.rail_busy(RailId(0)));
        let _ = rx;
    }

    #[test]
    fn bad_token_rejected() {
        let mut tx = engine(StrategyKind::Greedy);
        assert_eq!(
            tx.on_tx_done(RailId(0), TxToken(99)),
            Err(EngineError::BadToken(99))
        );
    }

    #[test]
    fn corrupt_packet_surfaces_wire_error() {
        let mut rx = engine(StrategyKind::Greedy);
        rx.conn_open();
        let err = rx.on_packet(RailId(0), &[0xFF; 10]).unwrap_err();
        assert!(matches!(err, EngineError::Wire(_)));
    }

    #[test]
    fn rdv_ack_for_unknown_segment_rejected() {
        let mut rx = engine(StrategyKind::Greedy);
        rx.conn_open();
        let ack = Packet::RdvAck(RdvAck {
            msg_id: 7,
            seg_index: 0,
        })
        .encode(0, 0, false);
        let err = rx.on_packet(RailId(0), &ack).unwrap_err();
        assert!(matches!(err, EngineError::UnknownRendezvous { .. }));
    }

    #[test]
    fn sample_ping_echoes_pong() {
        let mut a = engine(StrategyKind::Greedy);
        let mut b = engine(StrategyKind::Greedy);
        let c = a.conn_open();
        b.conn_open();
        let ping = Packet::SamplePing(SamplePacket {
            probe_id: 42,
            data: payload(128, 0),
        })
        .encode(c, 0, false);
        let out = b.on_packet(RailId(0), &ping).unwrap();
        assert!(out.control_enqueued);
        // B answers with a pong.
        let d = b.next_tx(RailId(0)).unwrap().expect("pong queued");
        b.on_tx_done(RailId(0), d.token).unwrap();
        // Deliver via the legacy flat path to keep it covered.
        let out = a.on_packet(RailId(0), &d.frame.to_bytes()).unwrap();
        assert_eq!(out.sample_pongs, vec![(42, 128)]);
    }

    #[test]
    fn zero_byte_segment_delivered() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![Bytes::new(), payload(8, 3)]);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        let msg = rx.try_recv(recv).unwrap();
        assert_eq!(msg.segments[0].len(), 0);
        assert_eq!(msg.segments[1], payload(8, 3));
    }

    #[test]
    fn retransmit_recovers_a_lost_eager_packet() {
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![payload(2000, 7)]);
        let recv = rx.post_recv(c);

        // "Lose" the data packet: take the decision but never deliver it.
        let d = tx.next_tx(RailId(0)).unwrap().expect("data packet");
        tx.on_tx_done(RailId(0), d.token).unwrap();
        assert!(tx.send_complete(send));
        assert!(!tx.send_acked(send));

        // Timeout path: retransmit, then deliver normally.
        assert!(tx.retransmit(send), "retransmit must be accepted");
        assert!(!tx.send_complete(send), "completion reset until re-sent");
        pump(&mut tx, &mut rx);
        assert!(tx.send_acked(send), "second attempt must be confirmed");
        assert_eq!(tx.stats().retransmits, 1);
        let msg = rx.try_recv(recv).expect("delivered");
        assert_eq!(msg.segments[0], payload(2000, 7));
    }

    #[test]
    fn retransmit_blames_the_lossy_rail_of_a_split_attempt() {
        // A two-rail attempt where rail 0 demonstrably delivered (a later
        // ack rode it) and rail 1 dropped its packet: the Retransmit event
        // must blame rail 1 — not rail 0 just because it was used first.
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        cfg.record_capacity = 256;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        tx.progress(1_000);
        rx.progress(1_000);

        // Message B: two eager segments, one per rail. Rail 0's frame is
        // delivered; rail 1's frame is lost.
        let send_b = tx.submit_send(c, vec![payload(2000, 1), payload(2000, 2)]);
        let recv_b = rx.post_recv(c);
        let d0 = tx.next_tx(RailId(0)).unwrap().expect("seg on rail 0");
        tx.on_tx_done(RailId(0), d0.token).unwrap();
        rx.on_frame(RailId(0), &d0.frame).unwrap();
        let d1 = tx.next_tx(RailId(1)).unwrap().expect("seg on rail 1");
        tx.on_tx_done(RailId(1), d1.token).unwrap();
        // (d1.frame dropped on the floor)
        assert!(tx.send_complete(send_b));
        assert!(!tx.send_acked(send_b));

        // Message A: delivered over rail 0 after B's attempt started, so
        // its ack is positive evidence exonerating rail 0.
        tx.progress(2_000);
        rx.progress(2_000);
        let send_a = tx.submit_send(c, vec![payload(64, 9)]);
        rx.post_recv(c);
        let da = tx.next_tx(RailId(0)).unwrap().expect("small on rail 0");
        tx.on_tx_done(RailId(0), da.token).unwrap();
        rx.on_frame(RailId(0), &da.frame).unwrap();
        let ack = rx.next_tx(RailId(0)).unwrap().expect("ack for A");
        rx.on_tx_done(RailId(0), ack.token).unwrap();
        tx.on_frame(RailId(0), &ack.frame).unwrap();
        assert!(tx.send_acked(send_a));

        // B's timer fires: the blame must land on rail 1 alone.
        tx.progress(3_000);
        assert!(tx.retransmit(send_b));
        let retx: Vec<Event> = tx
            .recorder()
            .iter()
            .filter(|e| e.kind == EventKind::Retransmit)
            .copied()
            .collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].rail, 1, "blame the rail that lost the packet");
        assert_eq!(retx[0].size, 0b10, "mask holds only rail 1");

        // And the message still recovers.
        pump(&mut tx, &mut rx);
        assert!(tx.send_acked(send_b));
        assert!(rx.try_recv(recv_b).is_some());
    }

    #[test]
    fn retransmit_after_lost_ack_is_deduplicated() {
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![payload(128, 3)]);
        let recv = rx.post_recv(c);

        // Deliver the data packet but "lose" the ack.
        let d = tx.next_tx(RailId(0)).unwrap().unwrap();
        tx.on_tx_done(RailId(0), d.token).unwrap();
        rx.on_frame(RailId(0), &d.frame).unwrap();
        let ack = rx.next_tx(RailId(0)).unwrap().expect("ack queued");
        rx.on_tx_done(RailId(0), ack.token).unwrap();
        // (ack.wire dropped on the floor)
        assert!(!tx.send_acked(send));
        assert!(rx.try_recv(recv).is_some(), "receiver has the message");

        // Sender retransmits; receiver must drop the duplicate and re-ack.
        assert!(tx.retransmit(send));
        pump(&mut tx, &mut rx);
        assert!(tx.send_acked(send));
        assert_eq!(rx.stats().duplicates_dropped, 1);
        assert_eq!(rx.stats().msgs_received, 1, "no double delivery");
    }

    #[test]
    fn retransmit_rejected_when_already_acked_or_in_flight() {
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![payload(64, 1)]);
        rx.post_recv(c);

        // In flight: decision taken but not yet tx-done.
        let d = tx.next_tx(RailId(1)).unwrap().unwrap();
        assert!(!tx.retransmit(send), "in-flight send must not retransmit");
        tx.on_tx_done(RailId(1), d.token).unwrap();
        rx.on_frame(RailId(1), &d.frame).unwrap();
        pump(&mut tx, &mut rx);
        assert!(tx.send_acked(send));
        assert!(!tx.retransmit(send), "acked send must not retransmit");
        assert_eq!(tx.stats().retransmits, 0);
    }

    #[test]
    fn retransmit_recovers_a_lost_rendezvous_request() {
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        let data = payload(100 * 1024, 9);
        let send = tx.submit_send(c, vec![data.clone()]);
        let recv = rx.post_recv(c);

        // Lose the rendezvous request (control packet).
        let d = tx.next_tx(RailId(0)).unwrap().expect("rdv request");
        assert!(d.control);
        tx.on_tx_done(RailId(0), d.token).unwrap();
        // Nothing further can happen: the grant never comes.
        assert!(tx.next_tx(RailId(0)).unwrap().is_none());
        assert!(!tx.send_complete(send));

        // Recovery: re-enqueue the whole message.
        assert!(tx.retransmit(send));
        pump(&mut tx, &mut rx);
        assert!(tx.send_acked(send));
        assert_eq!(rx.try_recv(recv).unwrap().segments[0], data);
    }

    #[test]
    fn acked_mode_confirms_delivery() {
        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.acked = true;
        let mut tx = Engine::new(cfg.clone(), p.rails.clone(), vec![]);
        let mut rx = Engine::new(cfg, p.rails, vec![]);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![payload(5000, 1)]);
        rx.post_recv(c);
        assert!(!tx.send_acked(send));
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        assert!(tx.send_acked(send), "peer must have confirmed delivery");
        assert_eq!(rx.stats().acks_sent, 1);
        assert_eq!(tx.stats().acks_received, 1);
    }

    #[test]
    fn unacked_mode_never_acks() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        let send = tx.submit_send(c, vec![payload(100, 1)]);
        rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        assert!(!tx.send_acked(send), "no acks without acked mode");
        assert_eq!(rx.stats().acks_sent, 0);
    }

    #[test]
    fn datapath_eager_payload_is_zero_copy() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(1000, 0x11)]);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(rx.try_recv(recv).is_some());
        let d = &tx.stats().datapath;
        assert_eq!(d.tx_staged_copy_bytes, 0, "eager path must not stage");
        assert!(d.tx_zero_copy_bytes >= 1000);
        // Frame delivery keeps the receive side copy-free too.
        let r = &rx.stats().datapath;
        assert_eq!(r.rx_copy_bytes, 0);
        assert!(r.rx_zero_copy_bytes >= 1000);
    }

    #[test]
    fn datapath_large_split_path_stages_nothing() {
        let mut tx = engine(StrategyKind::AdaptiveSplit);
        let mut rx = engine(StrategyKind::AdaptiveSplit);
        let c = tx.conn_open();
        rx.conn_open();
        let data = payload(1 << 20, 0x3C);
        tx.submit_send(c, vec![data.clone()]);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert_eq!(rx.try_recv(recv).unwrap().segments[0], data);
        let d = &tx.stats().datapath;
        assert_eq!(
            d.tx_staged_copy_bytes, 0,
            "chunked rendezvous transfers must not copy on tx"
        );
        assert!(d.tx_zero_copy_bytes >= (1 << 20));
    }

    #[test]
    fn datapath_aggregate_stages_only_sub_pio_entries() {
        let mut tx = engine(StrategyKind::AggregateEager);
        let mut rx = engine(StrategyKind::AggregateEager);
        let c = tx.conn_open();
        rx.conn_open();
        let segs: Vec<Bytes> = (0..4u8).map(|i| payload(256, i)).collect();
        tx.submit_send(c, segs);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(rx.try_recv(recv).is_some());
        let s = tx.stats();
        assert_eq!(s.aggregates_built, 1);
        // All four entries sit below the PIO threshold: staged in full,
        // and both legacy and datapath counters agree.
        assert_eq!(s.aggregation_copy_bytes, 4 * 256);
        assert_eq!(s.datapath.tx_staged_copy_bytes, 4 * 256);
    }

    #[test]
    fn head_buffers_are_pooled_and_reclaimed() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(64, 1)]);
        tx.submit_send(c, vec![payload(64, 2)]);
        // First decision: the runtime consumes and drops the frame before
        // reporting completion, so the head can be recycled.
        let d = tx.next_tx(RailId(0)).unwrap().expect("first packet");
        let token = d.token;
        drop(d);
        tx.on_tx_done(RailId(0), token).unwrap();
        let s = &tx.stats().datapath;
        assert!(s.pool_reclaims >= 1, "head must return to the pool");
        // Second decision reuses the reclaimed buffer.
        let d2 = tx.next_tx(RailId(0)).unwrap().expect("second packet");
        assert!(tx.stats().datapath.pool_hits >= 1, "pool must be hit");
        let token2 = d2.token;
        drop(d2);
        tx.on_tx_done(RailId(0), token2).unwrap();
        let _ = rx;
    }

    #[test]
    fn aggregate_slab_reclaimed_at_tx_done() {
        let mut tx = engine(StrategyKind::AggregateEager);
        let mut rx = engine(StrategyKind::AggregateEager);
        let c = tx.conn_open();
        rx.conn_open();
        let segs: Vec<Bytes> = (0..4u8).map(|i| payload(256, i)).collect();
        tx.submit_send(c, segs);
        let recv = rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(rx.try_recv(recv).is_some());
        assert_eq!(tx.stats().aggregates_built, 1);
        // The staging slab and the head both went back: nothing is
        // outstanding once the engine quiesces.
        assert!(tx.is_quiescent());
        assert_eq!(tx.pool_leaks(), 0, "slab must be reclaimed, not leaked");
        assert_eq!(tx.stats().datapath.pool_outstanding, 0);
    }

    #[test]
    fn leak_ledger_flags_a_held_buffer() {
        // A quiesced engine carries zero outstanding pool buffers...
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(64, 1)]);
        rx.post_recv(c);
        pump(&mut tx, &mut rx);
        assert!(tx.is_quiescent());
        assert_eq!(tx.pool_leaks(), 0);
        assert_eq!(tx.stats().datapath.pool_outstanding, 0);
        // ...and a deliberately-held frame shows up in the ledger, the
        // stats counter, and the drop assertion.
        let _held = tx.pool.take(64);
        tx.sync_pool_counters();
        assert_eq!(tx.pool_leaks(), 1, "held buffer must be flagged");
        assert_eq!(tx.stats().datapath.pool_outstanding, 1);
        if cfg!(debug_assertions) {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(tx)))
                .expect_err("drop must assert on a leaked buffer");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("BufferPool leak"), "unexpected panic: {msg}");
        }
    }

    #[test]
    fn legacy_flat_delivery_counts_rx_copy() {
        let mut tx = engine(StrategyKind::Greedy);
        let mut rx = engine(StrategyKind::Greedy);
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(512, 9)]);
        let recv = rx.post_recv(c);
        let d = tx.next_tx(RailId(0)).unwrap().expect("packet");
        tx.on_tx_done(RailId(0), d.token).unwrap();
        let flat = d.frame.to_bytes();
        rx.on_packet(RailId(0), &flat).unwrap();
        assert!(rx.try_recv(recv).is_some());
        assert_eq!(
            rx.stats().datapath.rx_copy_bytes,
            flat.len() as u64,
            "flat delivery charges the whole wire image"
        );
    }

    #[test]
    fn stats_account_pio_vs_dma() {
        let mut tx = engine(StrategyKind::SingleRail(0));
        let mut rx = engine(StrategyKind::SingleRail(0));
        let c = tx.conn_open();
        rx.conn_open();
        tx.submit_send(c, vec![payload(64, 1)]); // PIO-sized
        tx.submit_send(c, vec![payload(16 * 1024, 2)]); // DMA-sized eager
        rx.post_recv(c);
        rx.post_recv(c);
        pump(&mut tx, &mut rx);
        let s = &tx.stats().rails[0];
        assert_eq!(s.pio_packets, 1);
        assert_eq!(s.dma_packets, 1);
    }
}
